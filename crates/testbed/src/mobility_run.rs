//! The multi-gNB mobility harness: long-lived sessions under user mobility
//! with transparent flow handover.
//!
//! A [`MobilityTestbed`] assembles a [`MultiGnbTopology`] — N OpenFlow
//! ingress switches (gNBs), each fronting its own near-edge cluster zone,
//! one controller managing them all — and drives long-lived client sessions
//! through it in simulated time. A [`mobility::MobilityModel`] emits timed
//! cell-attachment changes; each change that crosses gNBs triggers the
//! controller's make-before-break handover
//! ([`Controller::handle_attachment_change`]) under the configured
//! [`HandoverPolicy`].
//!
//! Each client opens **one** TCP session to the registered service and then
//! pings it at a fixed interval over that session — the session outlives
//! every handover, which is exactly the continuity property under test. The
//! harness asserts, per ping, that nothing is dropped (every ping answered)
//! or double-answered, and that every byte the client sees still carries the
//! cloud service address (transparency across handovers).

use crate::harness::segments;
use crate::topology::MultiGnbTopology;
use desim::{Duration, Engine, FaultPlan, LogNormal, Sample, SimRng, SimTime};
use openflow::FlowEntry;
use edgectl::{
    annotate_deployment, Controller, ControllerConfig, DockerCluster, EdgeService,
    HandoverPolicy, IngressId, PortMap, RecoveryMode, RecoveryReport,
};
use containerd::ServiceProfile;
use dockersim::DockerEngine;
use mobility::{AttachmentEvent, MobilityModel};
use netsim::topo::{NodeId, PortNo};
use netsim::{Ipv4Addr, ServiceAddr, TcpFlags, TcpFrame};
use ovs::{Effect, Switch, SwitchConfig};
use std::collections::HashMap;
use telemetry::{MetricsRegistry, SpanLog, Telemetry};

/// Mobility harness configuration.
#[derive(Clone, Debug)]
pub struct MobilityConfig {
    /// Number of gNB ingress switches (= near-edge zones).
    pub n_gnbs: usize,
    /// Number of moving clients.
    pub n_clients: usize,
    /// Handover policy applied on every attachment change.
    pub policy: HandoverPolicy,
    /// Global Scheduler name (see [`edgectl::scheduler_by_name`]).
    pub scheduler: String,
    /// Controller configuration.
    pub controller: ControllerConfig,
    /// Record per-request span trees.
    pub telemetry: bool,
    /// Interval between pings on each client's session.
    pub ping_interval: Duration,
    /// Simulation seed.
    pub seed: u64,
    /// Fault plan; only the *runtime* faults (`crash_while_serving`,
    /// `zone_outage`, `channel_loss`) are injected by this harness. At the
    /// default all-zero rates the harness schedules nothing and runs are
    /// byte-identical to a fault-free build.
    pub faults: FaultPlan,
    /// Client retransmit timer: a session whose SYN or ping has been
    /// unanswered this long resends it. `None` (the default) disables
    /// retransmission — fine for fault-free runs where nothing is ever
    /// lost, required under runtime chaos where a single lost segment
    /// would otherwise stall its session forever.
    pub retransmit: Option<Duration>,
    /// Restart mode applied when a `controller_crash` fault fires: warm
    /// replays the write-ahead journal, cold starts from empty state and
    /// leans on reconciliation. Ignored unless the plan schedules a crash.
    pub recovery: RecoveryMode,
    /// Per-message controller service time: switch→controller messages
    /// queue behind each other and each occupies the controller this long
    /// before its handling runs. `ZERO` (the default) processes messages
    /// instantly with no extra events — byte-identical to the historical
    /// behaviour. Non-zero makes control-plane congestion client-visible,
    /// which is what separates a warm restart (tables intact, no storm)
    /// from a cold one (a re-dispatch storm serialized through the
    /// controller).
    pub ctrl_service_time: Duration,
}

impl Default for MobilityConfig {
    fn default() -> Self {
        MobilityConfig {
            n_gnbs: 3,
            n_clients: 6,
            policy: HandoverPolicy::Anchored,
            scheduler: "proximity".to_owned(),
            controller: ControllerConfig::default(),
            telemetry: false,
            ping_interval: Duration::from_millis(200),
            seed: 1,
            faults: FaultPlan::default(),
            retransmit: None,
            recovery: RecoveryMode::Warm,
            ctrl_service_time: Duration::ZERO,
        }
    }
}

/// One completed handover, as observed by the harness.
#[derive(Clone, Copy, Debug)]
pub struct HandoverRecord {
    /// The client that moved.
    pub client: usize,
    /// gNB left.
    pub from: usize,
    /// gNB joined.
    pub to: usize,
    /// When the attachment change was announced.
    pub at: SimTime,
    /// When the last new-switch flow install went out — `completed_at - at`
    /// is the control-plane interruption.
    pub completed_at: SimTime,
    /// FlowMemory entries migrated.
    pub flows_migrated: usize,
    /// Sessions re-placed through the Global Scheduler.
    pub redispatched: usize,
}

impl HandoverRecord {
    /// Control-plane interruption: announce → last install.
    pub fn interruption(&self) -> Duration {
        self.completed_at.saturating_since(self.at)
    }
}

/// Per-client session state (one long-lived connection each).
struct Session {
    service: ServiceAddr,
    src_port: u16,
    /// When the (latest) SYN went out; cleared once the handshake lands.
    syn_sent: Option<SimTime>,
    /// Reply template captured from the SYN-ACK (client → service).
    template: Option<TcpFrame>,
    /// Sent-at of the ping currently awaiting its response.
    outstanding: Option<SimTime>,
    /// Response bytes accumulated toward the outstanding ping.
    pending_bytes: usize,
    expected_bytes: usize,
    request_bytes: usize,
    pings_sent: u64,
    pings_done: u64,
    /// Per-ping round-trip times, in completion order.
    rtts: Vec<Duration>,
    /// First ping completed after a controller restart — the session's
    /// recovery instant.
    first_done_after_restart: Option<SimTime>,
}

enum Ev {
    StartSession { client: usize },
    Ping { client: usize },
    FrameAt { node: NodeId, in_port: u32, data: Vec<u8> },
    CtrlUp { gnb: usize, bytes: Vec<u8> },
    /// A queued switch→controller message finishes its service time and is
    /// actually handled. Only scheduled when `ctrl_service_time` is non-zero.
    CtrlProcess { gnb: usize, bytes: Vec<u8> },
    CtrlDown { gnb: usize, bytes: Vec<u8> },
    Attach(AttachmentEvent),
    Tick,
    /// A live migration's transfer (and warm start) lands: flip the flows.
    /// Never scheduled unless the controller's migration policy is live.
    MigrationTick,
    SwitchExpiry { gnb: usize },
    ServerSend { node: NodeId, port: PortNo, data: Vec<u8> },
    // Runtime-chaos events; none are scheduled unless the fault plan's
    // runtime rates are non-zero.
    CrashZone { zone: usize },
    OutageBegin { zone: usize, until: SimTime },
    OutageEnd { zone: usize },
    ChannelDown { gnb: usize, until: SimTime },
    ChannelUp { gnb: usize },
    /// The controller process dies: every control-plane interaction is a
    /// no-op until the restart; switches keep forwarding on installed rules.
    ControllerCrash { restart_at: SimTime },
    /// The controller comes back: crash-restart (warm journal replay or
    /// cold empty start), then reconcile every switch table.
    ControllerRestart,
    HealthTick,
    RetransmitCheck,
}

/// The assembled multi-gNB testbed.
pub struct MobilityTestbed {
    engine: Engine<Ev>,
    net: MultiGnbTopology,
    switches: Vec<Switch>,
    /// The controller under test (one, managing every gNB).
    pub controller: Controller,
    rng: SimRng,
    policy: HandoverPolicy,
    /// Current gNB per client.
    attachment: Vec<usize>,
    sessions: Vec<Session>,
    profile: Option<ServiceProfile>,
    service: Option<ServiceAddr>,
    server_rx: HashMap<(Ipv4Addr, u16, Ipv4Addr, u16), usize>,
    scheduled_tick: Option<SimTime>,
    scheduled_migration: Option<SimTime>,
    scheduled_expiry: Vec<Option<SimTime>>,
    ctrl_latency: Duration,
    accept_latency: LogNormal,
    ping_interval: Duration,
    /// Stop scheduling new pings after this instant (lets in-flight pings
    /// drain before the run deadline).
    ping_end: SimTime,
    /// Handovers performed, in order.
    pub handovers: Vec<HandoverRecord>,
    /// Frames dropped by the data plane (must stay 0 across handovers).
    pub drops: u64,
    /// RST replies seen by clients.
    pub resets: u64,
    /// Responses arriving with no ping outstanding.
    pub double_answered: u64,
    /// Frames reaching a client with a non-cloud source address.
    pub transparency_violations: u64,
    // -- runtime-chaos state (inert at zero fault rates) --------------------
    faults: FaultPlan,
    retransmit: Option<Duration>,
    /// While `Some(t)`, gNB g's control channel is down until `t`: control
    /// messages in either direction are dropped, not delayed.
    channel_down_until: Vec<Option<SimTime>>,
    /// Instance crashes injected.
    pub instance_crashes: u64,
    /// Zone outages injected.
    pub zone_outages: u64,
    /// Control-channel drops injected.
    pub channel_losses: u64,
    /// Control messages lost to a down channel.
    pub ctrl_dropped: u64,
    /// Client retransmissions (SYNs and pings).
    pub retransmits: u64,
    /// Restart mode applied when a controller crash fires.
    recovery: RecoveryMode,
    /// While `Some(t)`, the controller is dead until `t`: packet-ins go
    /// unanswered (clients retransmit), ticks and sweeps are skipped, but
    /// switches keep forwarding on the rules already installed.
    ctrl_blackout_until: Option<SimTime>,
    /// Controller crashes injected.
    pub controller_crashes: u64,
    /// Duration of the (last) control-plane blackout.
    pub blackout: Duration,
    /// When the controller (last) came back.
    pub restarted_at: Option<SimTime>,
    /// The last restart's recovery report.
    pub recovery_report: Option<RecoveryReport>,
    /// Attachment changes that happened while the controller was down —
    /// the physical move still happens; the controller only learns of it
    /// from post-restart traffic (the unannounced-move path).
    pub missed_handovers: u64,
    /// Per-message controller service time (see [`MobilityConfig`]).
    ctrl_service_time: Duration,
    /// The controller is busy serving queued messages until this instant.
    ctrl_busy_until: SimTime,
    /// Flow mods the restart-time reconcile issued — cold restarts tear
    /// down (and later re-install) every surviving rule, warm restarts
    /// find the tables already consistent with the replayed state.
    pub restart_fixes: u64,
}

impl MobilityTestbed {
    /// Builds the testbed: topology, one switch per gNB, one Docker zone
    /// cluster per gNB (every gNB can reach every zone), the controller with
    /// per-ingress port maps and distances.
    pub fn new(config: MobilityConfig) -> MobilityTestbed {
        let mut rng = SimRng::new(config.seed);
        let net = MultiGnbTopology::build(config.n_gnbs, config.n_clients);
        let switches: Vec<Switch> = (0..config.n_gnbs)
            .map(|g| {
                Switch::new(SwitchConfig {
                    datapath_id: 0xC300 + g as u64,
                    n_buffers: 1024,
                    miss_send_len: 0xffff,
                    ports: net.gnb_ports(g),
                })
            })
            .collect();
        let scheduler =
            edgectl::scheduler_by_name(&config.scheduler).unwrap_or_else(|e| panic!("{e}"));
        let mut controller = Controller::new(
            scheduler,
            PortMap {
                cluster_ports: HashMap::new(),
                cloud_port: net.cloud_ports[0].0,
            },
            config.controller.clone(),
        );
        if config.telemetry {
            controller.telemetry = Telemetry::recording();
        }
        for g in 1..config.n_gnbs {
            let id = controller.add_ingress(PortMap {
                cluster_ports: HashMap::new(),
                cloud_port: net.cloud_ports[g].0,
            });
            assert_eq!(id, IngressId(g as u32));
        }
        // One Docker zone cluster per gNB; every ingress maps a port to
        // every zone so anchored sessions stay reachable after a move.
        let zone_latency = Duration::from_micros(50);
        let metro = Duration::from_millis(2);
        for z in 0..config.n_gnbs {
            let mac = net.topo.node(net.zones[z]).mac;
            let ip = net.topo.node(net.zones[z]).ip;
            let name = format!("zone-{z}");
            controller.add_cluster(
                Box::new(DockerCluster::new(
                    &name,
                    DockerEngine::with_defaults(),
                    mac,
                    ip,
                    zone_latency,
                )),
                net.zone_ports[0][z].0,
            );
            for g in 0..config.n_gnbs {
                let ingress = IngressId(g as u32);
                controller.map_cluster_port(ingress, &name, net.zone_ports[g][z].0);
                // From gNB g, its own zone is a switch hop away; any other
                // zone sits across the metro aggregation link.
                let d = if g == z { zone_latency } else { metro + zone_latency };
                controller.set_ingress_distance(ingress, z, d);
            }
        }
        let n_clients = config.n_clients;
        MobilityTestbed {
            engine: Engine::new(),
            net,
            switches,
            controller,
            rng: rng.fork(0xbed),
            policy: config.policy,
            attachment: vec![0; n_clients],
            sessions: Vec::new(),
            profile: None,
            service: None,
            server_rx: HashMap::new(),
            scheduled_tick: None,
            scheduled_migration: None,
            scheduled_expiry: vec![None; config.n_gnbs],
            ctrl_latency: Duration::from_micros(200),
            accept_latency: LogNormal::from_median(0.0001, 0.3),
            ping_interval: config.ping_interval,
            ping_end: SimTime::MAX,
            handovers: Vec::new(),
            drops: 0,
            resets: 0,
            double_answered: 0,
            transparency_violations: 0,
            faults: config.faults,
            retransmit: config.retransmit,
            channel_down_until: vec![None; config.n_gnbs],
            instance_crashes: 0,
            zone_outages: 0,
            channel_losses: 0,
            ctrl_dropped: 0,
            retransmits: 0,
            recovery: config.recovery,
            ctrl_blackout_until: None,
            controller_crashes: 0,
            blackout: Duration::ZERO,
            restarted_at: None,
            recovery_report: None,
            missed_handovers: 0,
            ctrl_service_time: config.ctrl_service_time,
            ctrl_busy_until: SimTime::ZERO,
            restart_fixes: 0,
        }
    }

    /// Registers `profile` as the edge service every client sessions to.
    pub fn register_service(&mut self, profile: ServiceProfile, addr: ServiceAddr) -> EdgeService {
        let yaml = format!(
            "spec:\n  template:\n    spec:\n      containers:\n        - name: main\n          image: {}\n          ports:\n            - containerPort: {}\n",
            profile.manifests[0].reference, profile.listen_port
        );
        let annotated = annotate_deployment(&yaml, addr, None).expect("valid generated definition");
        let svc = EdgeService {
            addr,
            name: annotated.service_name.clone(),
            annotated,
            profile: profile.clone(),
        };
        self.controller.register_service(svc.clone());
        self.profile = Some(profile);
        self.service = Some(addr);
        svc
    }

    /// Fully pre-deploys the service on zone `z` (pull + create + scale-up):
    /// mobility experiments start from a warm home zone so handover effects
    /// are not drowned in cold-start noise.
    pub fn pre_deploy_on(&mut self, z: usize) {
        let addr = self.service.expect("service registered");
        let svc = self.controller.services().get(addr).cloned().unwrap();
        let now = self.engine.now();
        let rng = &mut self.rng;
        let cluster = self.controller.cluster_mut(z);
        let t = if cluster.state(&svc, now) == edgectl::InstanceState::NotDeployed {
            let t = cluster.pull(&svc, now, rng).expect("pre-deploy: pull");
            cluster.create(&svc, t, rng).expect("pre-deploy: create")
        } else {
            now
        };
        cluster.scale_up(&svc, t, rng).expect("pre-deploy: scale-up");
    }

    /// Pre-pulls + pre-creates the service on every zone (images cached
    /// everywhere; redispatch pays only the scale-up).
    pub fn warm_all_zones(&mut self) {
        let addr = self.service.expect("service registered");
        let svc = self.controller.services().get(addr).cloned().unwrap();
        let now = self.engine.now();
        for z in 0..self.net.zones.len() {
            let rng = &mut self.rng;
            let cluster = self.controller.cluster_mut(z);
            let t = cluster.pull(&svc, now, rng).expect("warm: pull");
            cluster.create(&svc, t, rng).expect("warm: create");
        }
    }

    /// The topology (addressing, stats).
    pub fn topology(&self) -> &MultiGnbTopology {
        &self.net
    }

    /// The gNB switches.
    pub fn switches(&self) -> &[Switch] {
        &self.switches
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// The recorded span log (telemetry runs only).
    pub fn span_log(&self) -> Option<&SpanLog> {
        self.controller.telemetry.span_log()
    }

    /// Metrics snapshot: controller registry plus per-switch gauges; under
    /// runtime chaos, also the per-zone breaker-state gauges.
    pub fn telemetry_snapshot(&self) -> MetricsRegistry {
        let mut m = self.controller.telemetry.metrics.clone();
        for (g, sw) in self.switches.iter().enumerate() {
            m.set_gauge(&format!("gnb.{g}.fast_path_packets"), sw.fast_path_packets as f64);
            m.set_gauge(&format!("gnb.{g}.table_misses"), sw.table_misses as f64);
        }
        if self.faults.runtime_enabled() {
            for z in 0..self.net.zones.len() {
                m.set_gauge(
                    &format!("cluster.{z}.breaker_state"),
                    self.controller.breaker_state(z).gauge(),
                );
            }
        }
        m
    }

    /// Total pings sent across all sessions.
    pub fn pings_sent(&self) -> u64 {
        self.sessions.iter().map(|s| s.pings_sent).sum()
    }

    /// Total pings answered across all sessions.
    pub fn pings_done(&self) -> u64 {
        self.sessions.iter().map(|s| s.pings_done).sum()
    }

    /// Every recorded ping round-trip time, in seconds.
    pub fn rtts_secs(&self) -> Vec<f64> {
        self.sessions
            .iter()
            .flat_map(|s| s.rtts.iter().map(|d| d.as_secs_f64()))
            .collect()
    }

    /// Runs the full scenario: seats every client at its model-given initial
    /// cell, starts one session per client at `start`, schedules the model's
    /// attachment changes, and drives the event loop until `deadline`.
    /// New pings stop two seconds before the deadline so in-flight ones
    /// drain. Returns the number of events processed.
    pub fn run(
        &mut self,
        model: &mut dyn MobilityModel,
        start: SimTime,
        deadline: SimTime,
    ) -> u64 {
        let n_clients = self.attachment.len();
        assert_eq!(
            model.n_clients(),
            n_clients,
            "model must cover every client"
        );
        let n_gnbs = self.switches.len();
        let addr = self.service.expect("service registered");
        let profile = self.profile.clone().expect("service registered");
        for c in 0..n_clients {
            self.attachment[c] = model.initial_cell(c) % n_gnbs;
            self.sessions.push(Session {
                service: addr,
                src_port: 49152 + c as u16,
                syn_sent: None,
                template: None,
                outstanding: None,
                pending_bytes: 0,
                expected_bytes: profile.response_bytes,
                request_bytes: profile.request_bytes,
                pings_sent: 0,
                pings_done: 0,
                rtts: Vec::new(),
                first_done_after_restart: None,
            });
            // Stagger session starts so the initial deployment burst is a
            // ramp, not a thundering herd.
            let at = start + Duration::from_millis(50) * c as u64;
            self.engine.schedule_at(at, Ev::StartSession { client: c });
        }
        // Last ping no later than two seconds before the deadline, so
        // whatever is in flight when we stop sending still drains.
        self.ping_end =
            SimTime::ZERO + deadline.saturating_since(SimTime::ZERO + Duration::from_secs(2));
        for ev in model.events(deadline.saturating_since(SimTime::ZERO)) {
            self.engine.schedule_at(ev.at, Ev::Attach(ev));
        }
        self.schedule_runtime_faults(start, deadline);
        let mut n = 0;
        while let Some((now, ev)) = self.engine.pop_until(deadline) {
            self.handle(now, ev);
            n += 1;
        }
        n
    }

    /// Continues the event loop past the run deadline without sending new
    /// pings: in-flight recovery (channel reconnects, health sweeps, client
    /// retransmits) settles, so "permanently stranded" is distinguishable
    /// from "still in flight". Returns the number of events processed.
    pub fn drain(&mut self, until: SimTime) -> u64 {
        let mut n = 0;
        while let Some((now, ev)) = self.engine.pop_until(until) {
            self.handle(now, ev);
            n += 1;
        }
        n
    }

    /// Sessions left permanently stranded: never connected, or still
    /// waiting on a ping answer. Zero after a drained chaos run is the
    /// self-healing acceptance bar.
    pub fn stranded(&self) -> u64 {
        self.sessions
            .iter()
            .filter(|s| s.template.is_none() || s.outstanding.is_some())
            .count() as u64
    }

    /// Draws the run's runtime faults from the plan and schedules them.
    /// With all runtime rates at zero this neither draws randomness nor
    /// schedules anything, so fault-free runs stay byte-identical.
    fn schedule_runtime_faults(&mut self, start: SimTime, deadline: SimTime) {
        if !self.faults.runtime_enabled() {
            return;
        }
        let window = deadline.saturating_since(start);
        let at_pos = |pos: f64| start + window.mul_f64(pos);
        for z in 0..self.net.zones.len() {
            if let Some(pos) = self.faults.injector(100 + z as u64).crashes_while_serving() {
                self.engine.schedule_at(at_pos(pos), Ev::CrashZone { zone: z });
            }
            if let Some((pos, dur)) = self.faults.injector(200 + z as u64).zone_outage() {
                let begin = at_pos(pos);
                self.engine.schedule_at(begin, Ev::OutageBegin { zone: z, until: begin + dur });
            }
        }
        for g in 0..self.switches.len() {
            if let Some((pos, delay)) = self.faults.injector(300 + g as u64).channel_drops() {
                let down = at_pos(pos);
                self.engine.schedule_at(down, Ev::ChannelDown { gnb: g, until: down + delay });
            }
        }
        // One controller process, one crash draw per run.
        if let Some((pos, delay)) = self.faults.injector(400).controller_crashes() {
            let down = at_pos(pos);
            self.engine.schedule_at(down, Ev::ControllerCrash { restart_at: down + delay });
        }
        // The detection loop and the client retransmit timer only run under
        // chaos; without faults they would fire, observe nothing, and change
        // the event interleaving for nothing.
        let detect = self.controller.health_config().detect_interval;
        self.engine.schedule_at(start + detect, Ev::HealthTick);
        if let Some(rto) = self.retransmit {
            self.engine.schedule_at(start + rto, Ev::RetransmitCheck);
        }
    }

    /// Whether gNB `g`'s control channel is up at `now`.
    fn channel_up(&self, gnb: usize, now: SimTime) -> bool {
        self.channel_down_until[gnb].is_none_or(|until| now >= until)
    }

    /// Whether the controller process is alive at `now` (not inside a
    /// crash blackout).
    fn controller_up(&self, now: SimTime) -> bool {
        self.ctrl_blackout_until.is_none_or(|until| now >= until)
    }

    /// Hands a switch→controller message to the controller and schedules
    /// whatever it sends back down. Called straight from `Ev::CtrlUp` when
    /// service time is zero, or from `Ev::CtrlProcess` once the message's
    /// turn in the controller queue comes up.
    fn process_ctrl_up(&mut self, now: SimTime, gnb: usize, bytes: &[u8]) {
        let ingress = IngressId(gnb as u32);
        match self
            .controller
            .handle_switch_message_from(ingress, now, bytes, &mut self.rng)
        {
            Ok(out) => {
                for m in out {
                    let at = m.at.max(now) + self.ctrl_latency;
                    self.engine.schedule_at(at, Ev::CtrlDown { gnb, bytes: m.data });
                }
            }
            Err(_) => self.drops += 1,
        }
        self.reschedule_tick();
    }

    /// Per-session recovery time after the (last) controller restart: the
    /// first ping completed after the restart, relative to the restart
    /// instant. Sessions with nothing completed afterwards are excluded
    /// (use [`Self::stranded`] for those). Sessions whose installed flows
    /// carried them straight through score near zero — that is the
    /// data-plane-continuity half of the recovery story.
    pub fn recovery_times_secs(&self) -> Vec<f64> {
        let Some(restart) = self.restarted_at else {
            return Vec::new();
        };
        self.sessions
            .iter()
            .filter_map(|s| s.first_done_after_restart)
            .map(|t| t.saturating_since(restart).as_secs_f64())
            .collect()
    }

    /// Reconciles every switch table against the controller's bookkeeping
    /// *now*, applying the fixes synchronously (no control latency), and
    /// returns the number of fix messages issued. A converged control plane
    /// returns 0; experiments call this twice after a chaos run to prove the
    /// tables diff clean.
    pub fn reconcile_now(&mut self) -> usize {
        let now = self.engine.now();
        let mut fixes = 0;
        for g in 0..self.switches.len() {
            let flows: Vec<FlowEntry> = self.switches[g].table().entries().cloned().collect();
            let out = self.controller.reconcile(IngressId(g as u32), &flows, now);
            fixes += out.len();
            for m in out {
                if let Ok(effects) = self.switches[g].handle_controller(now, &m.data) {
                    self.process_switch_effects(g, effects);
                }
            }
        }
        fixes
    }

    // -- internal plumbing --------------------------------------------------

    fn send_from(&mut self, node: NodeId, out_port: PortNo, data: Vec<u8>) {
        let Some((peer, peer_port)) = self.net.topo.peer_of(node, out_port) else {
            self.drops += 1;
            return;
        };
        let link = self.net.topo.link_at(node, out_port).expect("link exists");
        let delay = link.traversal_time(data.len(), &mut self.rng);
        self.engine.schedule_in(
            delay,
            Ev::FrameAt {
                node: peer,
                in_port: peer_port.0,
                data,
            },
        );
    }

    fn reschedule_tick(&mut self) {
        if let Some(t) = self.controller.next_tick_at() {
            let t = t.max(self.engine.now());
            if self.scheduled_tick.is_none_or(|s| s > t || s < self.engine.now()) {
                self.engine.schedule_at(t, Ev::Tick);
                self.scheduled_tick = Some(t);
            }
        }
    }

    fn reschedule_migration(&mut self) {
        if let Some(t) = self.controller.next_migration_at() {
            let t = t.max(self.engine.now());
            if self.scheduled_migration.is_none_or(|s| s > t || s < self.engine.now()) {
                self.engine.schedule_at(t, Ev::MigrationTick);
                self.scheduled_migration = Some(t);
            }
        }
    }

    fn reschedule_expiry(&mut self, gnb: usize) {
        if let Some(t) = self.switches[gnb].next_expiry() {
            let t = t.max(self.engine.now());
            if self.scheduled_expiry[gnb].is_none_or(|s| s > t || s < self.engine.now()) {
                self.engine.schedule_at(t, Ev::SwitchExpiry { gnb });
                self.scheduled_expiry[gnb] = Some(t);
            }
        }
    }

    fn process_switch_effects(&mut self, gnb: usize, effects: Vec<Effect>) {
        for e in effects {
            match e {
                Effect::Forward { port, data } => {
                    self.send_from(self.net.gnbs[gnb], PortNo(port), data);
                }
                Effect::ToController(bytes) => {
                    self.engine
                        .schedule_in(self.ctrl_latency, Ev::CtrlUp { gnb, bytes });
                }
                Effect::Drop => self.drops += 1,
            }
        }
        self.reschedule_expiry(gnb);
    }

    fn send_ping(&mut self, now: SimTime, client: usize) {
        let Some(template) = self.sessions[client].template.clone() else {
            return;
        };
        let request_bytes = self.sessions[client].request_bytes;
        self.sessions[client].pings_sent += 1;
        self.sessions[client].outstanding = Some(now);
        let node = self.net.clients[client];
        let uplink = self.net.uplink_ports[self.attachment[client]][client];
        for seg in segments(&template, request_bytes) {
            self.send_from(node, uplink, seg.encode());
        }
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::StartSession { client } => {
                self.sessions[client].syn_sent = Some(now);
                self.send_syn(client);
            }
            Ev::Ping { client } => self.send_ping(now, client),
            Ev::FrameAt { node, in_port, data } => {
                if let Some(g) = self.net.gnbs.iter().position(|&n| n == node) {
                    let effects = self.switches[g].handle_frame(now, in_port, &data);
                    self.process_switch_effects(g, effects);
                } else if self.net.zones.contains(&node) || node == self.net.cloud {
                    self.handle_server_frame(now, node, in_port, &data);
                } else if let Some(c) = self.net.clients.iter().position(|&n| n == node) {
                    self.handle_client_frame(now, c, &data);
                }
            }
            Ev::CtrlUp { gnb, bytes } => {
                if !self.channel_up(gnb, now) || !self.controller_up(now) {
                    self.ctrl_dropped += 1;
                    return;
                }
                if self.ctrl_service_time > Duration::ZERO {
                    // The controller is a single queue: this message waits
                    // behind whatever is already being served, then takes
                    // its own service time before the handling runs.
                    let done = self.ctrl_busy_until.max(now) + self.ctrl_service_time;
                    self.ctrl_busy_until = done;
                    self.engine.schedule_at(done, Ev::CtrlProcess { gnb, bytes });
                    return;
                }
                self.process_ctrl_up(now, gnb, &bytes);
            }
            Ev::CtrlProcess { gnb, bytes } => {
                // A crash may have landed between arrival and service.
                if !self.controller_up(now) {
                    self.ctrl_dropped += 1;
                    return;
                }
                self.process_ctrl_up(now, gnb, &bytes);
            }
            Ev::CtrlDown { gnb, bytes } => {
                if !self.channel_up(gnb, now) {
                    self.ctrl_dropped += 1;
                    return;
                }
                match self.switches[gnb].handle_controller(now, &bytes) {
                    Ok(effects) => self.process_switch_effects(gnb, effects),
                    Err(_) => self.drops += 1,
                }
            }
            Ev::Attach(ev) => self.handle_attach(now, ev),
            Ev::Tick => {
                self.scheduled_tick = None;
                if !self.controller_up(now) {
                    return; // rescheduled by the restart
                }
                self.controller.tick(now, &mut self.rng);
                self.reschedule_tick();
            }
            Ev::MigrationTick => {
                self.scheduled_migration = None;
                if !self.controller_up(now) {
                    return; // in-flight migrations are pinned until restart
                }
                for (ingress, m) in self.controller.migration_tick(now, &mut self.rng) {
                    let at = m.at.max(now) + self.ctrl_latency;
                    self.engine.schedule_at(
                        at,
                        Ev::CtrlDown { gnb: ingress.0 as usize, bytes: m.data },
                    );
                }
                self.reschedule_migration();
                // The flip repoints memorized flows; their next expiry moved.
                self.reschedule_tick();
            }
            Ev::SwitchExpiry { gnb } => {
                self.scheduled_expiry[gnb] = None;
                let effects = self.switches[gnb].expire_flows(now);
                self.process_switch_effects(gnb, effects);
            }
            Ev::ServerSend { node, port, data } => {
                self.send_from(node, port, data);
            }
            Ev::CrashZone { zone } => {
                // Silent death: nothing is announced; the health sweep has
                // to notice and repair.
                if let Some(addr) = self.service {
                    if self.controller.inject_instance_crash(zone, addr, now, &mut self.rng) {
                        self.instance_crashes += 1;
                    }
                }
            }
            Ev::OutageBegin { zone, until } => {
                self.zone_outages += 1;
                let repairs = self.controller.begin_zone_outage(zone, now, until, &mut self.rng);
                for (ingress, m) in repairs {
                    let at = m.at.max(now) + self.ctrl_latency;
                    self.engine.schedule_at(
                        at,
                        Ev::CtrlDown { gnb: ingress.0 as usize, bytes: m.data },
                    );
                }
                self.engine.schedule_at(until, Ev::OutageEnd { zone });
            }
            Ev::OutageEnd { zone } => self.controller.end_zone_outage(zone),
            Ev::ChannelDown { gnb, until } => {
                self.channel_losses += 1;
                self.channel_down_until[gnb] = Some(until);
                self.engine.schedule_at(until, Ev::ChannelUp { gnb });
            }
            Ev::ChannelUp { gnb } => {
                self.channel_down_until[gnb] = None;
                if !self.controller_up(now) {
                    return; // the restart reconciles every switch anyway
                }
                // Reconcile the switch's table against the controller's
                // bookkeeping: both drifted while the channel was down.
                let flows: Vec<FlowEntry> =
                    self.switches[gnb].table().entries().cloned().collect();
                let out = self.controller.reconcile(IngressId(gnb as u32), &flows, now);
                for m in out {
                    let at = m.at.max(now) + self.ctrl_latency;
                    self.engine.schedule_at(at, Ev::CtrlDown { gnb, bytes: m.data });
                }
            }
            Ev::ControllerCrash { restart_at } => {
                self.controller_crashes += 1;
                self.blackout = restart_at.saturating_since(now);
                self.ctrl_blackout_until = Some(restart_at);
                self.engine.schedule_at(restart_at, Ev::ControllerRestart);
            }
            Ev::ControllerRestart => {
                self.ctrl_blackout_until = None;
                // The old process's queue died with it.
                self.ctrl_busy_until = now;
                let report = self.controller.crash_restart(self.recovery, now);
                self.recovery_report = Some(report);
                self.restarted_at = Some(now);
                for s in &mut self.sessions {
                    s.first_done_after_restart = None;
                }
                // Replay (or cold start) done — diff every switch table
                // against the recovered bookkeeping and fix the drift. Each
                // fix occupies the controller for one service time, so a
                // cold restart (which tears down every surviving rule)
                // keeps post-restart packet-ins waiting behind the sweep;
                // a warm restart finds the tables consistent and serves
                // them immediately.
                for g in 0..self.switches.len() {
                    let flows: Vec<FlowEntry> =
                        self.switches[g].table().entries().cloned().collect();
                    let out = self.controller.reconcile(IngressId(g as u32), &flows, now);
                    self.restart_fixes += out.len() as u64;
                    for m in out {
                        let mut at = m.at.max(now);
                        if self.ctrl_service_time > Duration::ZERO {
                            self.ctrl_busy_until =
                                self.ctrl_busy_until.max(at) + self.ctrl_service_time;
                            at = self.ctrl_busy_until;
                        }
                        self.engine.schedule_at(
                            at + self.ctrl_latency,
                            Ev::CtrlDown { gnb: g, bytes: m.data },
                        );
                    }
                }
                self.reschedule_tick();
                self.reschedule_migration();
            }
            Ev::HealthTick => {
                if !self.controller_up(now) {
                    // The sweep keeps its cadence through the blackout so
                    // detection resumes immediately after the restart.
                    let detect = self.controller.health_config().detect_interval;
                    self.engine.schedule_at(now + detect, Ev::HealthTick);
                    return;
                }
                for (ingress, m) in self.controller.health_check(now) {
                    let at = m.at.max(now) + self.ctrl_latency;
                    self.engine.schedule_at(
                        at,
                        Ev::CtrlDown { gnb: ingress.0 as usize, bytes: m.data },
                    );
                }
                // A sweep that tripped a breaker open evacuates the zone:
                // every service still anchored there live-migrates to the
                // nearest serving cluster (a no-op unless policy is live).
                self.controller.migrate_on_breaker_open(now, &mut self.rng);
                self.reschedule_migration();
                let detect = self.controller.health_config().detect_interval;
                self.engine.schedule_at(now + detect, Ev::HealthTick);
            }
            Ev::RetransmitCheck => {
                let rto = self.retransmit.expect("scheduled only with a timer");
                for c in 0..self.sessions.len() {
                    let sess = &mut self.sessions[c];
                    if sess.template.is_none() {
                        // Handshake still pending: resend the SYN if stale.
                        if let Some(sent) = sess.syn_sent {
                            if now.saturating_since(sent) >= rto {
                                sess.syn_sent = Some(now);
                                self.retransmits += 1;
                                self.send_syn(c);
                            }
                        }
                    } else if let Some(sent) = self.sessions[c].outstanding {
                        if now.saturating_since(sent) >= rto {
                            // Resend the ping's segments; `outstanding`
                            // keeps the original send time so the RTT
                            // covers the loss.
                            self.retransmits += 1;
                            let template = self.sessions[c].template.clone().unwrap();
                            let request_bytes = self.sessions[c].request_bytes;
                            let node = self.net.clients[c];
                            let uplink = self.net.uplink_ports[self.attachment[c]][c];
                            for seg in segments(&template, request_bytes) {
                                self.send_from(node, uplink, seg.encode());
                            }
                        }
                    }
                }
                self.engine.schedule_at(now + rto, Ev::RetransmitCheck);
            }
        }
    }

    /// (Re)sends client `c`'s opening SYN through its current gNB.
    fn send_syn(&mut self, client: usize) {
        let node = self.net.clients[client];
        let frame = TcpFrame::syn(
            self.net.topo.node(node).mac,
            self.net.topo.node(self.net.cloud).mac, // perceived gateway
            self.net.topo.node(node).ip,
            self.sessions[client].src_port,
            self.sessions[client].service,
        );
        let uplink = self.net.uplink_ports[self.attachment[client]][client];
        self.send_from(node, uplink, frame.encode());
    }

    fn handle_attach(&mut self, now: SimTime, ev: AttachmentEvent) {
        let n_gnbs = self.switches.len();
        let to = ev.to_cell % n_gnbs;
        let from = self.attachment[ev.client];
        if to == from {
            return; // intra-gNB cell change: nothing to hand over
        }
        self.attachment[ev.client] = to;
        if !self.controller_up(now) {
            // The move happens physically but nobody hears the announcement;
            // post-restart traffic from the new gNB takes the unannounced-
            // move path (flush + re-dispatch).
            self.missed_handovers += 1;
            return;
        }
        let client_node = self.net.clients[ev.client];
        let outcome = self.controller.handle_attachment_change(
            now,
            self.net.topo.node(client_node).ip,
            self.net.topo.node(client_node).mac,
            self.net.topo.node(self.net.cloud).mac,
            IngressId(from as u32),
            IngressId(to as u32),
            self.net.client_ports[to][ev.client].0,
            self.policy,
            &mut self.rng,
        );
        self.handovers.push(HandoverRecord {
            client: ev.client,
            from,
            to,
            at: outcome.at,
            completed_at: outcome.completed_at,
            flows_migrated: outcome.flows_migrated,
            redispatched: outcome.redispatched,
        });
        for (ingress, m) in outcome.messages {
            let at = m.at.max(now) + self.ctrl_latency;
            self.engine.schedule_at(
                at,
                Ev::CtrlDown {
                    gnb: ingress.0 as usize,
                    bytes: m.data,
                },
            );
        }
        // A redispatch may have started an on-demand deployment.
        self.reschedule_tick();
        // The move may have started a mobility-triggered live migration.
        self.reschedule_migration();
    }

    /// Which instance (if any) listens at `(ip, port)` across the zones.
    fn listener(&self, ip: Ipv4Addr, port: u16, now: SimTime) -> Option<(ServiceProfile, bool)> {
        for svc in self.controller.services().iter() {
            for idx in 0..self.controller.cluster_count() {
                let cluster = self.controller.cluster(idx);
                if let Some(addr) = cluster.instance_addr(svc) {
                    if addr.ip == ip && addr.port == port {
                        let ready = cluster.state(svc, now).is_ready();
                        return Some((svc.profile.clone(), ready));
                    }
                }
            }
        }
        None
    }

    fn handle_server_frame(&mut self, now: SimTime, node: NodeId, in_port: u32, data: &[u8]) {
        let Ok(frame) = TcpFrame::decode(data) else {
            self.drops += 1;
            return;
        };
        let is_cloud = node == self.net.cloud;
        let (processing, response_bytes, listening) = if is_cloud {
            // The perceived cloud hosts the registered service too.
            match &self.profile {
                Some(p) if self.service == Some(frame.dst_service()) => {
                    (p.request_processing, p.response_bytes, true)
                }
                _ => (LogNormal::from_median(0.002, 0.3), 500, true),
            }
        } else {
            match self.listener(frame.dst_ip, frame.dst_port, now) {
                Some((p, ready)) => (p.request_processing, p.response_bytes, ready),
                None => (LogNormal::from_median(0.002, 0.3), 0, false),
            }
        };
        // Replies retrace the ingress they arrived through — the gNB whose
        // flows carried the request rewrites them back.
        let reply_port = PortNo(in_port);
        if frame.flags.contains(TcpFlags::SYN) {
            let reply = if listening {
                frame.reply(TcpFlags::SYN_ACK, Vec::new())
            } else {
                frame.reply(TcpFlags::RST, Vec::new())
            };
            let delay = self.accept_latency.sample_duration(&mut self.rng);
            self.engine.schedule_in(
                delay,
                Ev::ServerSend {
                    node,
                    port: reply_port,
                    data: reply.encode(),
                },
            );
            return;
        }
        if !frame.payload.is_empty() && listening {
            let expected = if is_cloud {
                self.profile.as_ref().map(|p| p.request_bytes).unwrap_or(1)
            } else {
                self.listener(frame.dst_ip, frame.dst_port, now)
                    .map(|(p, _)| p.request_bytes)
                    .unwrap_or(1)
            };
            let key = (frame.src_ip, frame.src_port, frame.dst_ip, frame.dst_port);
            let acc = self.server_rx.entry(key).or_insert(0);
            *acc += frame.payload.len();
            if *acc >= expected {
                self.server_rx.remove(&key);
                // An edge instance completed a request: its session state
                // grows by the configured per-request bytes (no-op while
                // migration is off or stateless).
                if !is_cloud {
                    if let (Some(addr), Some(z)) = (
                        self.service,
                        self.net.zones.iter().position(|&n| n == node),
                    ) {
                        self.controller.note_served(addr, z);
                    }
                }
                let delay = processing.sample_duration(&mut self.rng);
                let template = frame.reply(TcpFlags::PSH_ACK, Vec::new());
                for seg in segments(&template, response_bytes) {
                    self.engine.schedule_in(
                        delay,
                        Ev::ServerSend {
                            node,
                            port: reply_port,
                            data: seg.encode(),
                        },
                    );
                }
            }
        }
    }

    fn handle_client_frame(&mut self, now: SimTime, client: usize, data: &[u8]) {
        let Ok(frame) = TcpFrame::decode(data) else {
            self.drops += 1;
            return;
        };
        let sess = &mut self.sessions[client];
        if frame.dst_port != sess.src_port {
            return; // stray frame
        }
        // Transparency across handovers: every frame the client sees must
        // carry the registered cloud address, whichever zone answered.
        if frame.src_ip != sess.service.ip || frame.src_port != sess.service.port {
            self.transparency_violations += 1;
        }
        if frame.flags.contains(TcpFlags::RST) {
            self.resets += 1;
            return;
        }
        if frame.flags.contains(TcpFlags::SYN) && frame.flags.contains(TcpFlags::ACK) {
            if sess.template.is_none() {
                sess.syn_sent = None;
                sess.template = Some(frame.reply(TcpFlags::PSH_ACK, Vec::new()));
                self.send_ping(now, client);
            }
            return;
        }
        if !frame.payload.is_empty() {
            sess.pending_bytes += frame.payload.len();
            while sess.pending_bytes >= sess.expected_bytes {
                sess.pending_bytes -= sess.expected_bytes;
                match sess.outstanding.take() {
                    Some(sent_at) => {
                        sess.pings_done += 1;
                        sess.rtts.push(now.saturating_since(sent_at));
                        if self.restarted_at.is_some() && sess.first_done_after_restart.is_none() {
                            sess.first_done_after_restart = Some(now);
                        }
                        if now + self.ping_interval < self.ping_end {
                            self.engine
                                .schedule_at(now + self.ping_interval, Ev::Ping { client });
                        }
                    }
                    None => self.double_answered += 1,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::{CellHops, Static};

    fn setup(policy: HandoverPolicy, seed: u64) -> MobilityTestbed {
        let mut tb = MobilityTestbed::new(MobilityConfig {
            policy,
            n_gnbs: 3,
            n_clients: 3,
            seed,
            ..MobilityConfig::default()
        });
        let profile = containerd::ServiceSet::by_key("asm").unwrap();
        tb.register_service(profile, ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80));
        tb.warm_all_zones();
        tb.pre_deploy_on(0);
        tb
    }

    #[test]
    fn static_clients_never_hand_over_and_lose_nothing() {
        let mut tb = setup(HandoverPolicy::Anchored, 1);
        let mut model = Static::round_robin(3, 3);
        tb.run(&mut model, SimTime::from_secs(1), SimTime::from_secs(20));
        assert!(tb.handovers.is_empty());
        assert!(tb.pings_sent() > 50, "sessions ping steadily");
        assert_eq!(tb.pings_sent(), tb.pings_done(), "no ping lost");
        assert_eq!(tb.drops, 0);
        assert_eq!(tb.double_answered, 0);
        assert_eq!(tb.transparency_violations, 0);
    }

    fn hop_run(policy: HandoverPolicy) -> MobilityTestbed {
        let mut tb = setup(policy, 2);
        // Client 0 hops 0 → 1 → 2; the others stay put.
        let mut model = CellHops::new(
            vec![0, 1, 2],
            &[
                (SimTime::from_secs(6), 0, 1),
                (SimTime::from_secs(12), 0, 2),
            ],
        );
        tb.run(&mut model, SimTime::from_secs(1), SimTime::from_secs(20));
        tb
    }

    #[test]
    fn anchored_handover_keeps_every_ping() {
        let tb = hop_run(HandoverPolicy::Anchored);
        assert_eq!(tb.handovers.len(), 2);
        assert_eq!(tb.handovers[0].client, 0);
        assert_eq!((tb.handovers[0].from, tb.handovers[0].to), (0, 1));
        assert!(tb.handovers.iter().all(|h| h.redispatched == 0));
        assert!(tb.handovers.iter().all(|h| h.flows_migrated >= 1));
        assert_eq!(tb.pings_sent(), tb.pings_done(), "session continuity");
        assert_eq!(tb.drops, 0);
        assert_eq!(tb.double_answered, 0);
        assert_eq!(tb.transparency_violations, 0);
        assert_eq!(
            tb.controller.telemetry.metrics.counter("handovers_total"),
            2
        );
    }

    #[test]
    fn redispatch_handover_moves_the_session_to_the_new_zone() {
        let tb = hop_run(HandoverPolicy::Redispatch);
        assert_eq!(tb.handovers.len(), 2);
        assert!(tb.handovers.iter().all(|h| h.redispatched >= 1));
        assert_eq!(tb.pings_sent(), tb.pings_done(), "session continuity");
        assert_eq!(tb.drops, 0);
        assert_eq!(tb.double_answered, 0);
        assert_eq!(tb.transparency_violations, 0);
        // The session ended up served by a cluster other than zone 0.
        let ip = tb.topology().client_ip(0);
        let flows = tb.controller.memory().flows_of_client_at(ip, IngressId(2));
        assert_eq!(flows.len(), 1, "memory keyed to the final ingress");
        assert_ne!(flows[0].1.cluster, 0, "re-placed off the home zone");
    }

    #[test]
    fn anchored_steady_state_is_slower_than_redispatch_after_move() {
        // After moving away, an anchored session crosses the metro link on
        // every ping; a redispatched one is served by the local zone again.
        let anchored = hop_run(HandoverPolicy::Anchored);
        let redispatched = hop_run(HandoverPolicy::Redispatch);
        let tail = |tb: &MobilityTestbed| {
            let r = &tb.sessions[0].rtts;
            let last = &r[r.len().saturating_sub(5)..];
            last.iter().map(|d| d.as_secs_f64()).sum::<f64>() / last.len() as f64
        };
        assert!(
            tail(&anchored) > tail(&redispatched),
            "anchored {:.6}s vs redispatch {:.6}s",
            tail(&anchored),
            tail(&redispatched)
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = hop_run(HandoverPolicy::Anchored);
        let b = hop_run(HandoverPolicy::Anchored);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    fn fingerprint(tb: &MobilityTestbed) -> (u64, Vec<(u64, u64)>, Vec<f64>) {
        (
            tb.pings_done(),
            tb.handovers
                .iter()
                .map(|h| (h.at.as_nanos(), h.completed_at.as_nanos()))
                .collect::<Vec<_>>(),
            tb.rtts_secs(),
        )
    }

    fn chaos_run(faults: FaultPlan, retransmit: Option<Duration>) -> MobilityTestbed {
        let mut tb = MobilityTestbed::new(MobilityConfig {
            policy: HandoverPolicy::Anchored,
            n_gnbs: 3,
            n_clients: 3,
            seed: 2,
            faults,
            retransmit,
            ..MobilityConfig::default()
        });
        let profile = containerd::ServiceSet::by_key("asm").unwrap();
        tb.register_service(profile, ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80));
        tb.warm_all_zones();
        tb.pre_deploy_on(0);
        let mut model = CellHops::new(
            vec![0, 1, 2],
            &[
                (SimTime::from_secs(6), 0, 1),
                (SimTime::from_secs(12), 0, 2),
            ],
        );
        tb.run(&mut model, SimTime::from_secs(1), SimTime::from_secs(20));
        tb
    }

    /// Satellite 3b at the harness level: a runtime fault plan with every
    /// rate at zero draws no randomness and schedules nothing — the run is
    /// indistinguishable from one with no plan at all.
    #[test]
    fn zero_rate_runtime_plan_is_inert() {
        let plain = hop_run(HandoverPolicy::Anchored);
        let zeroed = chaos_run(FaultPlan::runtime(0.0, 0xDEAD_BEEF), None);
        assert_eq!(fingerprint(&plain), fingerprint(&zeroed));
        assert_eq!(zeroed.instance_crashes, 0);
        assert_eq!(zeroed.zone_outages, 0);
        assert_eq!(zeroed.channel_losses, 0);
        assert_eq!(zeroed.ctrl_dropped, 0);
        assert_eq!(zeroed.retransmits, 0);
        assert_eq!(zeroed.controller_crashes, 0);
        assert!(zeroed.recovery_report.is_none());
    }

    /// Full runtime chaos — crashes, zone outages, channel drops all firing
    /// — and every session still finishes: repairs + breaker + retransmits
    /// mean nothing is permanently stranded, and reconciliation converges.
    #[test]
    fn runtime_chaos_strands_no_session_and_reconciles_clean() {
        let mut tb = chaos_run(FaultPlan::runtime(1.0, 7), Some(Duration::from_secs(1)));
        // At rate 1 every zone outage and every channel loss fires.
        assert_eq!(tb.zone_outages, 3);
        assert_eq!(tb.channel_losses, 3);
        // Let recovery settle well past the last reconnect window.
        tb.drain(SimTime::from_secs(40));
        assert_eq!(tb.stranded(), 0, "no session permanently stranded");
        assert!(tb.pings_done() > 0);
        // Post-run the switch tables diff clean against the bookkeeping:
        // one pass applies any leftover fixes, the second finds none.
        tb.reconcile_now();
        assert_eq!(tb.reconcile_now(), 0, "tables converged to bookkeeping");
    }

    /// Failure during handover must not strand the moving session: crash
    /// the home instance right as its client hops gNBs.
    #[test]
    fn crash_during_handover_does_not_strand_the_flow() {
        let mut tb2 = MobilityTestbed::new(MobilityConfig {
            policy: HandoverPolicy::Anchored,
            n_gnbs: 3,
            n_clients: 3,
            seed: 2,
            retransmit: Some(Duration::from_secs(1)),
            ..MobilityConfig::default()
        });
        let profile = containerd::ServiceSet::by_key("asm").unwrap();
        let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80);
        tb2.register_service(profile, addr);
        tb2.warm_all_zones();
        tb2.pre_deploy_on(0);
        let mut model = CellHops::new(
            vec![0, 1, 2],
            &[(SimTime::from_secs(6), 0, 1)],
        );
        // Run up to just past the hop, crash the anchor zone's instance
        // exactly then, and keep running with the health loop active.
        tb2.engine.schedule_at(SimTime::from_secs(6), Ev::CrashZone { zone: 0 });
        tb2.engine.schedule_at(
            SimTime::from_secs(1) + tb2.controller.health_config().detect_interval,
            Ev::HealthTick,
        );
        tb2.engine.schedule_at(SimTime::from_secs(2), Ev::RetransmitCheck);
        tb2.run(&mut model, SimTime::from_secs(1), SimTime::from_secs(20));
        tb2.drain(SimTime::from_secs(30));
        assert_eq!(tb2.instance_crashes, 1, "the crash was injected");
        assert_eq!(tb2.stranded(), 0, "the moving session recovered");
        assert_eq!(tb2.transparency_violations, 0);
        tb2.reconcile_now();
        assert_eq!(tb2.reconcile_now(), 0);
    }

    /// Tentpole: the controller process crashes mid-run. Switches keep
    /// forwarding on installed rules through the blackout; on restart the
    /// controller recovers (warm journal replay or cold empty start),
    /// reconciles, and no session is permanently stranded in either mode.
    #[test]
    fn controller_crash_blackout_recovers_and_strands_no_session() {
        for (mode, journal_on) in [(RecoveryMode::Warm, true), (RecoveryMode::Cold, false)] {
            let controller = ControllerConfig {
                journal: edgectl::JournalConfig {
                    enabled: journal_on,
                    snapshot_every: 32,
                },
                ..ControllerConfig::default()
            };
            let mut tb = MobilityTestbed::new(MobilityConfig {
                policy: HandoverPolicy::Anchored,
                n_gnbs: 3,
                n_clients: 3,
                seed: 2,
                controller,
                faults: FaultPlan {
                    controller_crash: 1.0,
                    seed: 11,
                    ..FaultPlan::default()
                },
                retransmit: Some(Duration::from_secs(1)),
                recovery: mode,
                ..MobilityConfig::default()
            });
            let profile = containerd::ServiceSet::by_key("asm").unwrap();
            tb.register_service(profile, ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80));
            tb.warm_all_zones();
            tb.pre_deploy_on(0);
            let mut model = CellHops::new(
                vec![0, 1, 2],
                &[
                    (SimTime::from_secs(6), 0, 1),
                    (SimTime::from_secs(12), 0, 2),
                ],
            );
            tb.run(&mut model, SimTime::from_secs(1), SimTime::from_secs(20));
            tb.drain(SimTime::from_secs(40));
            assert_eq!(tb.controller_crashes, 1, "{mode:?}: the crash fired");
            assert!(tb.blackout > Duration::ZERO, "{mode:?}: a real blackout");
            let report = tb.recovery_report.expect("the controller restarted");
            assert_eq!(report.mode, mode);
            if journal_on {
                assert!(
                    report.replayed_events + report.snapshot_entries > 0,
                    "warm restart recovered state from the journal"
                );
            }
            assert_eq!(tb.stranded(), 0, "{mode:?}: no session permanently stranded");
            assert_eq!(tb.transparency_violations, 0);
            assert!(!tb.recovery_times_secs().is_empty(), "recovery was measured");
            tb.reconcile_now();
            assert_eq!(tb.reconcile_now(), 0, "{mode:?}: tables converged");
        }
    }

    fn live_setup(state_bytes: u64, bandwidth_bps: u64, seed: u64) -> MobilityTestbed {
        let controller = ControllerConfig {
            migration: edgectl::MigrationConfig {
                policy: edgectl::MigrationPolicy::Live,
                state_bytes_per_request: state_bytes,
                transfer_bandwidth_bps: bandwidth_bps,
                ..edgectl::MigrationConfig::default()
            },
            ..ControllerConfig::default()
        };
        let mut tb = MobilityTestbed::new(MobilityConfig {
            policy: HandoverPolicy::Anchored,
            n_gnbs: 3,
            n_clients: 3,
            seed,
            controller,
            ..MobilityConfig::default()
        });
        let profile = containerd::ServiceSet::by_key("asm").unwrap();
        tb.register_service(profile, ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80));
        tb.warm_all_zones();
        tb.pre_deploy_on(0);
        tb
    }

    /// Live migration follows the moving client: the mobility trigger
    /// fires after each hop, session state lands at the nearer zone, and
    /// the session never misses a ping.
    #[test]
    fn live_migration_follows_the_client_and_loses_nothing() {
        let mut tb = live_setup(512, 10_000_000_000, 2);
        let mut model = CellHops::new(
            vec![0, 1, 2],
            &[
                (SimTime::from_secs(6), 0, 1),
                (SimTime::from_secs(12), 0, 2),
            ],
        );
        tb.run(&mut model, SimTime::from_secs(1), SimTime::from_secs(20));
        let records = &tb.controller.migrate.records;
        assert!(!records.is_empty(), "the mobility trigger fired");
        assert!(records
            .iter()
            .all(|r| r.reason == edgectl::MigrationReason::Mobility));
        assert!(records[0].state_bytes > 0, "state accrued before the move");
        assert!(records[0].flows_flipped >= 1);
        // The session ended where the client is, not at the home zone.
        let ip = tb.topology().client_ip(0);
        let flows = tb.controller.memory().flows_of_client_at(ip, IngressId(2));
        assert_eq!(flows.len(), 1);
        assert_ne!(flows[0].1.cluster, 0, "state followed the client");
        // Make-before-break: session continuity is unconditional.
        assert_eq!(tb.pings_sent(), tb.pings_done(), "no ping lost");
        assert_eq!(tb.drops, 0);
        assert_eq!(tb.double_answered, 0);
        assert_eq!(tb.transparency_violations, 0);
        assert!(tb.controller.telemetry.metrics.counter("migrations_total") >= 1);
        assert_eq!(tb.controller.migrate.aborted, 0);
    }

    /// Satellite 3, degenerate case: at state size zero a live migration
    /// is pure flow flipping — the transfer is a bare propagation delay,
    /// zero bytes move, and the continuity guarantees are exactly the
    /// handover's (zero dropped pings).
    #[test]
    fn live_migration_at_state_zero_matches_handover_guarantees() {
        let mut tb = live_setup(0, 10_000_000_000, 2);
        let mut model = CellHops::new(
            vec![0, 1, 2],
            &[
                (SimTime::from_secs(6), 0, 1),
                (SimTime::from_secs(12), 0, 2),
            ],
        );
        tb.run(&mut model, SimTime::from_secs(1), SimTime::from_secs(20));
        let records = &tb.controller.migrate.records;
        assert!(!records.is_empty(), "migrations still run at state zero");
        for r in records {
            assert_eq!(r.state_bytes, 0);
            assert_eq!(
                r.transfer_time(),
                tb.controller.migrate.config().transfer_propagation,
                "zero bytes: the transfer is pure propagation"
            );
        }
        assert_eq!(tb.controller.migrate.ledger().total(), 0);
        assert_eq!(tb.pings_sent(), tb.pings_done(), "zero dropped pings");
        assert_eq!(tb.drops, 0);
        assert_eq!(tb.transparency_violations, 0);
    }

    /// Satellite 1: a crash injected *during* the state transfer must not
    /// leave the migration wedged or the session stranded — the health
    /// sweep aborts the migration first (lifting the pin), then repairs
    /// the dead instance, and the session re-dispatches cleanly.
    #[test]
    fn crash_during_migration_transfer_aborts_and_recovers() {
        // ~25 pings by the 6 s hop at 20 kB each ≈ 500 kB of state; at
        // 1 Mb/s the transfer takes ≈ 4 s, so a crash at 7 s lands mid-
        // transfer with certainty.
        let mut tb = live_setup(20_000, 1_000_000, 2);
        tb.retransmit = Some(Duration::from_secs(1));
        let mut model = CellHops::new(vec![0, 1, 2], &[(SimTime::from_secs(6), 0, 1)]);
        tb.engine.schedule_at(SimTime::from_secs(7), Ev::CrashZone { zone: 0 });
        tb.engine.schedule_at(
            SimTime::from_secs(1) + tb.controller.health_config().detect_interval,
            Ev::HealthTick,
        );
        tb.engine.schedule_at(SimTime::from_secs(2), Ev::RetransmitCheck);
        tb.run(&mut model, SimTime::from_secs(1), SimTime::from_secs(20));
        tb.drain(SimTime::from_secs(30));
        assert_eq!(tb.instance_crashes, 1, "the crash was injected");
        assert!(
            tb.controller.telemetry.metrics.counter("migrations_total") >= 1,
            "a migration was in flight"
        );
        assert!(tb.controller.migrate.aborted >= 1, "it was aborted, not wedged");
        assert!(tb.controller.migrate.active().is_empty(), "the pin lifted");
        assert_eq!(tb.stranded(), 0, "the session recovered via redispatch");
        assert_eq!(tb.transparency_violations, 0);
        tb.reconcile_now();
        assert_eq!(tb.reconcile_now(), 0, "tables converged to bookkeeping");
    }
}
