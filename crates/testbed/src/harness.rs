//! The end-to-end event-driven harness.
//!
//! One [`Testbed`] wires the whole stack together and runs it in simulated
//! time: emulated clients open TCP connections toward registered cloud
//! addresses; frames traverse the OVS data plane byte-for-byte; table misses
//! become OpenFlow `PACKET_IN`s to the transparent-edge controller, which
//! deploys services on demand into the configured cluster; responses flow
//! back through the reverse-rewrite flows; and every request's
//! `timecurl`-style `time_total` is recorded.

use crate::topology::C3Topology;
use desim::{Duration, Engine, FaultPlan, LogNormal, Sample, SimRng, SimTime};
use edgectl::{
    annotate_deployment, Controller, ControllerConfig, DockerCluster, EdgeService,
    K8sEdgeCluster, PortMap,
};
use containerd::ServiceProfile;
use dockersim::DockerEngine;
use k8ssim::K8sCluster;
use netsim::topo::{NodeId, PortNo};
use netsim::{Ipv4Addr, ServiceAddr, TcpFlags, TcpFrame};
use ovs::{Effect, Switch, SwitchConfig};
use std::collections::HashMap;
use telemetry::{MetricsRegistry, SpanLog, Telemetry};
use workload::RequestTiming;

/// Which cluster type backs the edge (the paper evaluates both).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterKind {
    /// Docker engine (lightweight, sub-second starts).
    Docker,
    /// Kubernetes (automated management, ≈3 s starts).
    K8s,
}

impl ClusterKind {
    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            ClusterKind::Docker => "Docker",
            ClusterKind::K8s => "K8s",
        }
    }
}

/// Harness configuration.
#[derive(Clone, Debug)]
pub struct TestbedConfig {
    /// Number of emulated Raspberry Pi clients.
    pub n_clients: usize,
    /// Edge cluster type.
    pub cluster: ClusterKind,
    /// Global Scheduler name (see [`edgectl::scheduler_by_name`]).
    pub scheduler: String,
    /// Controller configuration.
    pub controller: ControllerConfig,
    /// Use the private in-network registry instead of public ones.
    pub private_registry: bool,
    /// Proactive-deployment predictor name (see
    /// [`edgectl::predictor_by_name`]); `"none"` = pure reactive.
    pub predictor: String,
    /// Add a hierarchical *far edge* Docker cluster on the route to the
    /// cloud (Section IV-A-2).
    pub far_edge: bool,
    /// Fault-injection plan (all rates 0 = faults disabled, byte-identical
    /// behaviour to a build without the fault layer).
    pub faults: FaultPlan,
    /// Record per-request span trees ([`Telemetry::recording`]); disabled
    /// runs keep the no-op tracer and stay byte-identical.
    pub telemetry: bool,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            n_clients: 20,
            cluster: ClusterKind::Docker,
            scheduler: "proximity".to_owned(),
            controller: ControllerConfig::default(),
            private_registry: false,
            predictor: "none".to_owned(),
            far_edge: false,
            faults: FaultPlan::default(),
            telemetry: false,
            seed: 1,
        }
    }
}

/// A finished client request.
#[derive(Clone, Debug)]
pub struct CompletedRequest {
    /// The registered service address requested.
    pub service: ServiceAddr,
    /// Client index.
    pub client: usize,
    /// Timing milestones (`time_total` etc.).
    pub timing: RequestTiming,
}

struct ConnState {
    service: ServiceAddr,
    client: usize,
    timing: RequestTiming,
    bytes_received: usize,
    expected_bytes: usize,
    request_sent: bool,
}

/// TCP maximum segment size used when chunking request/response payloads
/// (1500 MTU − 20 IPv4 − 20 TCP − a little slack).
const MSS: usize = 1448;

enum Ev {
    StartRequest {
        client: usize,
        service: ServiceAddr,
    },
    FrameAt {
        node: NodeId,
        in_port: u32,
        data: Vec<u8>,
    },
    CtrlUp(Vec<u8>),
    CtrlDown(Vec<u8>),
    Tick,
    PredictTick,
    SwitchExpiry,
    ServerSend {
        node: NodeId,
        data: Vec<u8>,
    },
}

/// The assembled, runnable testbed.
pub struct Testbed {
    engine: Engine<Ev>,
    c3: C3Topology,
    switch: Switch,
    /// The transparent-edge controller under test.
    pub controller: Controller,
    rng: SimRng,
    profiles: HashMap<ServiceAddr, ServiceProfile>,
    conns: HashMap<(usize, u16), ConnState>,
    /// Server-side request reassembly: bytes received per connection 4-tuple.
    server_rx: HashMap<(Ipv4Addr, u16, Ipv4Addr, u16), usize>,
    next_src_port: Vec<u16>,
    scheduled_tick: Option<SimTime>,
    scheduled_expiry: Option<SimTime>,
    predictor: Box<dyn edgectl::DeploymentPredictor>,
    predict_interval: Duration,
    predict_scheduled: bool,
    last_request_at: SimTime,
    observed_records: usize,
    ctrl_latency: Duration,
    accept_latency: LogNormal,
    cloud_processing: LogNormal,
    /// Completed requests, in completion order.
    pub completed: Vec<CompletedRequest>,
    /// Connections refused (RST) — should stay zero thanks to port polling.
    pub resets: u64,
    /// Frames dropped by the data plane.
    pub drops: u64,
    /// Frames that reached a client exposing a non-cloud source address —
    /// transparency violations (must stay zero: the redirect must be
    /// invisible to clients).
    pub transparency_violations: u64,
    /// Deployments triggered by the predictor rather than a request.
    pub proactive_deployments: u64,
    capture: Option<netsim::PcapCapture>,
    faults: FaultPlan,
}

impl TestbedConfig {
    /// Maps a parsed controller configuration file ([`edgectl::EdgeConfig`])
    /// to a testbed configuration. The first declared cluster decides the
    /// primary cluster kind (default Docker); a declared second cluster of
    /// the other kind is reported back so callers can add it (hybrid setup).
    pub fn from_edge_config(cfg: &edgectl::EdgeConfig, seed: u64) -> (TestbedConfig, bool) {
        let primary = cfg
            .clusters
            .first()
            .map(|c| {
                if c.kind == "k8s" {
                    ClusterKind::K8s
                } else {
                    ClusterKind::Docker
                }
            })
            .unwrap_or(ClusterKind::Docker);
        let wants_hybrid = cfg.clusters.len() > 1
            && primary == ClusterKind::Docker
            && cfg.clusters[1].kind == "k8s";
        (
            TestbedConfig {
                cluster: primary,
                scheduler: cfg.scheduler.clone(),
                predictor: cfg.predictor.clone(),
                controller: cfg.controller.clone(),
                faults: cfg.faults.clone(),
                seed,
                ..TestbedConfig::default()
            },
            wants_hybrid,
        )
    }
}

impl Testbed {
    /// Builds a testbed straight from a controller configuration file.
    pub fn from_edge_config(cfg: &edgectl::EdgeConfig, seed: u64) -> Testbed {
        let (tc, hybrid) = TestbedConfig::from_edge_config(cfg, seed);
        let mut tb = Testbed::new(tc);
        if hybrid {
            tb.add_hybrid_k8s();
        }
        tb
    }

    /// Builds a testbed per `config`.
    pub fn new(config: TestbedConfig) -> Testbed {
        let mut rng = SimRng::new(config.seed);
        let c3 = C3Topology::build_with_far_edge(config.n_clients, config.far_edge);
        let switch = Switch::new(SwitchConfig {
            datapath_id: 0xC3,
            n_buffers: 1024,
            miss_send_len: 0xffff,
            ports: c3.ovs_ports(),
        });
        let scheduler =
            edgectl::scheduler_by_name(&config.scheduler).unwrap_or_else(|e| panic!("{e}"));
        let mut controller = Controller::new(
            scheduler,
            PortMap {
                cluster_ports: HashMap::new(),
                cloud_port: c3.cloud_port.0,
            },
            config.controller.clone(),
        );
        if config.telemetry {
            controller.telemetry = Telemetry::recording();
        }
        let egs_mac = c3.topo.node(c3.egs).mac;
        let egs_ip = c3.topo.node(c3.egs).ip;
        let edge_latency = Duration::from_micros(50);
        let store = if config.private_registry {
            containerd::ContentStore::with_mirror(registry::RegistryProfile::private_local())
        } else {
            containerd::ContentStore::new()
        };
        let mut node = containerd::ContainerdNode::new(store, containerd::RuntimeTimings::default());
        // Fault injectors get one label per site so their draw streams stay
        // independent; with all rates at zero nothing is wired at all,
        // keeping fault-free runs byte-identical.
        let chaos = config.faults.enabled();
        match config.cluster {
            ClusterKind::Docker => {
                if chaos {
                    node.store_mut().set_faults(config.faults.injector(0));
                    node.set_faults(config.faults.injector(1));
                }
                let engine = DockerEngine::new(node, dockersim::EngineTimings::default());
                controller.add_cluster(
                    Box::new(DockerCluster::new(
                        "egs-docker",
                        engine,
                        egs_mac,
                        egs_ip,
                        edge_latency,
                    )),
                    c3.egs_port.0,
                );
            }
            ClusterKind::K8s => {
                // Kubernetes faults (scale-up rejection, probe flaps) live on
                // the cluster; its worker containerd nodes stay fault-free.
                let mut cluster = K8sCluster::new(node, k8ssim::K8sTimings::default(), 110);
                if chaos {
                    cluster.set_faults(config.faults.injector(2));
                }
                controller.add_cluster(
                    Box::new(K8sEdgeCluster::new(
                        "egs-k8s",
                        cluster,
                        egs_mac,
                        edge_latency,
                        None,
                    )),
                    c3.egs_port.0,
                );
            }
        }
        if let Some((far_node, far_port)) = c3.far_edge {
            let far_mac = c3.topo.node(far_node).mac;
            let far_ip = c3.topo.node(far_node).ip;
            let mut engine = DockerEngine::with_defaults();
            if chaos {
                engine.node_mut().store_mut().set_faults(config.faults.injector(5));
                engine.node_mut().set_faults(config.faults.injector(3));
            }
            controller.add_cluster(
                Box::new(DockerCluster::new(
                    "far-edge",
                    engine,
                    far_mac,
                    far_ip,
                    Duration::from_millis(2),
                )),
                far_port.0,
            );
        }
        let n_clients = config.n_clients;
        Testbed {
            // Pre-size the event core from the population: each client keeps
            // a handful of in-flight events (frames, ticks, expiries), so
            // steady-state runs never re-grow event storage mid-simulation.
            engine: Engine::with_capacity(n_clients * 64 + 1024),
            c3,
            switch,
            controller,
            rng: rng.fork(0xbed),
            profiles: HashMap::new(),
            conns: HashMap::new(),
            server_rx: HashMap::new(),
            next_src_port: vec![49152; n_clients],
            scheduled_tick: None,
            scheduled_expiry: None,
            predictor: edgectl::predictor_by_name(&config.predictor)
                .unwrap_or_else(|e| panic!("{e}")),
            predict_interval: Duration::from_millis(500),
            predict_scheduled: false,
            last_request_at: SimTime::ZERO,
            ctrl_latency: Duration::from_micros(200),
            accept_latency: LogNormal::from_median(0.0001, 0.3),
            cloud_processing: LogNormal::from_median(0.002, 0.3),
            observed_records: 0,
            completed: Vec::new(),
            resets: 0,
            drops: 0,
            transparency_violations: 0,
            proactive_deployments: 0,
            capture: None,
            faults: config.faults,
        }
    }

    /// Adds a *second* edge cluster of the other kind on the same gateway —
    /// the Section VII hybrid setup (Docker answers first, Kubernetes takes
    /// over). The added cluster gets a marginally smaller distance so the
    /// nearest-ready rule hands steady-state traffic to it.
    pub fn add_hybrid_k8s(&mut self) {
        let egs_mac = self.c3.topo.node(self.c3.egs).mac;
        let mut cluster = K8sCluster::with_defaults();
        if self.faults.enabled() {
            cluster.set_faults(self.faults.injector(4));
        }
        self.controller.add_cluster(
            Box::new(K8sEdgeCluster::new(
                "egs-k8s",
                cluster,
                egs_mac,
                Duration::from_micros(45),
                None,
            )),
            self.c3.egs_port.0,
        );
    }

    /// Fully pre-deploys a service on cluster `idx` (pull + create +
    /// scale-up): the "already running in a farther edge" setup of Fig. 3.
    pub fn pre_deploy_on(&mut self, addr: ServiceAddr, idx: usize) {
        let svc = self
            .controller
            .services()
            .get(addr)
            .cloned()
            .expect("service registered");
        let now = self.engine.now();
        let rng = &mut self.rng;
        let cluster = self.controller.cluster_mut(idx);
        let t = cluster.pull(&svc, now, rng).expect("pre-deploy: pull");
        let t = cluster.create(&svc, t, rng).expect("pre-deploy: create");
        cluster
            .scale_up(&svc, t, rng)
            .expect("pre-deploy: scale-up");
    }

    /// Pre-pulls a service's images on cluster `idx` (hybrid setups).
    pub fn pre_pull_on(&mut self, addr: ServiceAddr, idx: usize) {
        let svc = self
            .controller
            .services()
            .get(addr)
            .cloned()
            .expect("service registered");
        let now = self.engine.now();
        self.controller
            .cluster_mut(idx)
            .pull(&svc, now, &mut self.rng)
            .expect("pre-pull");
    }

    /// Starts capturing every frame that traverses the OVS into a pcap
    /// recording (inspect runs with Wireshark/tcpdump).
    pub fn enable_capture(&mut self) {
        self.capture = Some(netsim::PcapCapture::new());
    }

    /// The capture recorded so far (if enabled).
    pub fn capture(&self) -> Option<&netsim::PcapCapture> {
        self.capture.as_ref()
    }

    /// The topology (addressing, stats).
    pub fn topology(&self) -> &C3Topology {
        &self.c3
    }

    /// The OVS switch (fast-path statistics).
    pub fn switch(&self) -> &Switch {
        &self.switch
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// A point-in-time metrics snapshot: the controller's registry plus
    /// gauges folded in from every subsystem counter — switch fast-path
    /// and microflow statistics, FlowMemory lookup accounting, and each
    /// cluster's engine operations, layer-cache hit rate, and load.
    pub fn telemetry_snapshot(&self) -> MetricsRegistry {
        let mut m = self.controller.telemetry.metrics.clone();
        let sw = &self.switch;
        m.set_gauge("switch.fast_path_packets", sw.fast_path_packets as f64);
        m.set_gauge("switch.table_misses", sw.table_misses as f64);
        m.set_gauge("switch.microflow_hits", sw.microflow_hits as f64);
        m.set_gauge("switch.microflow_misses", sw.microflow_misses as f64);
        let probes = sw.microflow_hits + sw.microflow_misses;
        if probes > 0 {
            m.set_gauge(
                "switch.microflow_hit_rate",
                sw.microflow_hits as f64 / probes as f64,
            );
        }
        let fm = self.controller.memory().stats;
        m.set_gauge("flowmemory.lookups", fm.lookups as f64);
        m.set_gauge("flowmemory.hits", fm.hits as f64);
        m.set_gauge("flowmemory.expired", fm.expired as f64);
        m.set_gauge("engine.processed", self.engine.processed() as f64);
        m.set_gauge("engine.peak_pending", self.engine.peak_pending() as f64);
        // Non-zero means some event asked for a past instant and was clamped
        // to `now` — intent silently reordered, worth seeing in every run.
        m.set_gauge("engine.clamped_events", self.engine.clamped_events() as f64);
        for idx in 0..self.controller.cluster_count() {
            let c = self.controller.cluster(idx);
            m.set_gauge(&format!("cluster.{}.load", c.name()), c.load() as f64);
            for (k, v) in c.telemetry_stats() {
                m.set_gauge(&format!("cluster.{}.{k}", c.name()), v);
            }
        }
        m
    }

    /// The recorded span log when the testbed was built with
    /// `telemetry: true`; `None` on disabled runs.
    pub fn span_log(&self) -> Option<&SpanLog> {
        self.controller.telemetry.span_log()
    }

    /// Registers `profile` as an edge service at `addr` and returns the
    /// created registration.
    pub fn register_service(&mut self, profile: ServiceProfile, addr: ServiceAddr) -> EdgeService {
        let containers: String = profile
            .manifests
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let ports = if i == 0 {
                    format!(
                        "\n          ports:\n            - containerPort: {}",
                        profile.listen_port
                    )
                } else {
                    String::new()
                };
                format!("        - name: c{i}\n          image: {}{}\n", m.reference, ports)
            })
            .collect();
        let yaml = format!("spec:\n  template:\n    spec:\n      containers:\n{containers}");
        let annotated = annotate_deployment(&yaml, addr, None).expect("valid generated definition");
        let svc = EdgeService {
            addr,
            name: annotated.service_name.clone(),
            annotated,
            profile: profile.clone(),
        };
        self.profiles.insert(addr, profile);
        self.controller.register_service(svc.clone());
        svc
    }

    /// Pre-pulls a service's images onto the edge cluster (experiment
    /// setup for the cached-image scenarios).
    pub fn pre_pull(&mut self, addr: ServiceAddr) {
        let svc = self
            .controller
            .services()
            .get(addr)
            .cloned()
            .expect("service registered");
        let now = self.engine.now();
        self.controller
            .cluster_mut(0)
            .pull(&svc, now, &mut self.rng)
            .expect("pre-pull");
    }

    /// Pre-creates a service (Create phase done ahead of time; scale-up
    /// remains on demand) — the Fig. 11 scenario.
    pub fn pre_create(&mut self, addr: ServiceAddr) {
        let svc = self
            .controller
            .services()
            .get(addr)
            .cloned()
            .expect("service registered");
        let now = self.engine.now();
        self.controller
            .cluster_mut(0)
            .create(&svc, now, &mut self.rng)
            .expect("pre-create");
    }

    /// Schedules a client request at `at`.
    pub fn request_at(&mut self, at: SimTime, client: usize, service: ServiceAddr) {
        assert!(client < self.c3.clients.len());
        self.last_request_at = self.last_request_at.max(at);
        self.engine
            .schedule_at(at, Ev::StartRequest { client, service });
        if !self.predict_scheduled && self.predictor.name() != "none" {
            self.predict_scheduled = true;
            self.engine.schedule_at(at, Ev::PredictTick);
        }
    }

    /// Runs until the event queue drains or `deadline` passes. Returns the
    /// number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        while let Some((now, ev)) = self.engine.pop_until(deadline) {
            self.handle(now, ev);
            n += 1;
        }
        n
    }

    // -- internal plumbing --------------------------------------------------

    fn send_from(&mut self, node: NodeId, out_port: PortNo, data: Vec<u8>) {
        let Some((peer, peer_port)) = self.c3.topo.peer_of(node, out_port) else {
            self.drops += 1;
            return;
        };
        let link = self.c3.topo.link_at(node, out_port).expect("link exists");
        let delay = link.traversal_time(data.len(), &mut self.rng);
        self.engine.schedule_in(
            delay,
            Ev::FrameAt {
                node: peer,
                in_port: peer_port.0,
                data,
            },
        );
    }

    fn reschedule_tick(&mut self) {
        if let Some(t) = self.controller.next_tick_at() {
            let t = t.max(self.engine.now());
            if self.scheduled_tick.is_none_or(|s| s > t || s < self.engine.now()) {
                self.engine.schedule_at(t, Ev::Tick);
                self.scheduled_tick = Some(t);
            }
        }
    }

    fn reschedule_expiry(&mut self) {
        if let Some(t) = self.switch.next_expiry() {
            let t = t.max(self.engine.now());
            if self.scheduled_expiry.is_none_or(|s| s > t || s < self.engine.now()) {
                self.engine.schedule_at(t, Ev::SwitchExpiry);
                self.scheduled_expiry = Some(t);
            }
        }
    }

    fn process_switch_effects(&mut self, effects: Vec<Effect>) {
        for e in effects {
            match e {
                Effect::Forward { port, data } => {
                    self.send_from(self.c3.ovs, PortNo(port), data);
                }
                Effect::ToController(bytes) => {
                    self.engine.schedule_in(self.ctrl_latency, Ev::CtrlUp(bytes));
                }
                Effect::Drop => self.drops += 1,
            }
        }
        self.reschedule_expiry();
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::StartRequest { client, service } => {
                let src_port = self.next_src_port[client];
                self.next_src_port[client] = src_port.wrapping_add(1).max(49152);
                let client_node = self.c3.clients[client];
                let frame = TcpFrame::syn(
                    self.c3.topo.node(client_node).mac,
                    self.c3.topo.node(self.c3.cloud).mac, // perceived cloud gateway
                    self.c3.topo.node(client_node).ip,
                    src_port,
                    service,
                );
                self.conns.insert(
                    (client, src_port),
                    ConnState {
                        service,
                        client,
                        timing: RequestTiming::started(now),
                        bytes_received: 0,
                        expected_bytes: self
                            .profiles
                            .get(&service)
                            .map(|p| p.response_bytes)
                            .unwrap_or(500),
                        request_sent: false,
                    },
                );
                self.send_from(client_node, PortNo(1), frame.encode());
            }
            Ev::FrameAt { node, in_port, data } => {
                if node == self.c3.ovs {
                    if let Some(cap) = &mut self.capture {
                        cap.record(now, &data);
                    }
                    let effects = self.switch.handle_frame(now, in_port, &data);
                    self.process_switch_effects(effects);
                } else if node == self.c3.egs
                    || self.c3.far_edge.is_some_and(|(n, _)| n == node)
                {
                    self.handle_server_frame(now, node, &data, false);
                } else if node == self.c3.cloud {
                    self.handle_server_frame(now, node, &data, true);
                } else if let Some(client) = self.c3.clients.iter().position(|&c| c == node) {
                    self.handle_client_frame(now, client, &data);
                }
            }
            Ev::CtrlUp(bytes) => {
                match self.controller.handle_switch_message(now, &bytes, &mut self.rng) {
                    Ok(out) => {
                        for m in out {
                            let at = m.at.max(now) + self.ctrl_latency;
                            self.engine.schedule_at(at, Ev::CtrlDown(m.data));
                        }
                    }
                    Err(_) => self.drops += 1,
                }
                self.reschedule_tick();
            }
            Ev::CtrlDown(bytes) => match self.switch.handle_controller(now, &bytes) {
                Ok(effects) => self.process_switch_effects(effects),
                Err(_) => self.drops += 1,
            },
            Ev::Tick => {
                self.scheduled_tick = None;
                self.controller.tick(now, &mut self.rng);
                self.reschedule_tick();
            }
            Ev::PredictTick => {
                // Feed new observations to the predictor, then act on its
                // nominations.
                while self.observed_records < self.controller.records.len() {
                    let rec = &self.controller.records[self.observed_records];
                    if rec.kind != edgectl::controller::RequestKind::Unregistered {
                        self.predictor.observe(rec.service, rec.at);
                    }
                    self.observed_records += 1;
                }
                for addr in self.predictor.predict(now) {
                    if self
                        .controller
                        .proactive_deploy(addr, now, &mut self.rng)
                        .is_some()
                    {
                        self.proactive_deployments += 1;
                    }
                }
                if now < self.last_request_at {
                    self.engine.schedule_in(self.predict_interval, Ev::PredictTick);
                } else {
                    self.predict_scheduled = false;
                }
            }
            Ev::SwitchExpiry => {
                self.scheduled_expiry = None;
                let effects = self.switch.expire_flows(now);
                self.process_switch_effects(effects);
            }
            Ev::ServerSend { node, data } => {
                self.send_from(node, PortNo(1), data);
            }
        }
    }

    /// Which service instance (if any) listens at `(ip, port)` on the EGS.
    /// Returns only `Copy` scalars from the profile — `(request_processing,
    /// request_bytes, response_bytes, ready)` — so the per-frame server path
    /// never clones a `ServiceProfile` (manifest strings and all).
    fn egs_listener(
        &self,
        ip: Ipv4Addr,
        port: u16,
        now: SimTime,
    ) -> Option<(LogNormal, usize, usize, bool)> {
        for svc in self.controller.services().iter() {
            for idx in 0..self.controller.cluster_count() {
                let cluster = self.controller.cluster(idx);
                if let Some(addr) = cluster.instance_addr(svc) {
                    if addr.ip == ip && addr.port == port {
                        let ready = cluster.state(svc, now).is_ready();
                        let p = &svc.profile;
                        return Some((
                            p.request_processing,
                            p.request_bytes,
                            p.response_bytes,
                            ready,
                        ));
                    }
                }
            }
        }
        None
    }

    fn handle_server_frame(&mut self, now: SimTime, node: NodeId, data: &[u8], is_cloud: bool) {
        let Ok(frame) = TcpFrame::decode(data) else {
            self.drops += 1;
            return;
        };
        // What serves here? One listener lookup covers the whole frame —
        // both the SYN/response branch and the request-reassembly branch.
        let edge = if is_cloud {
            None
        } else {
            self.egs_listener(frame.dst_ip, frame.dst_port, now)
        };
        let (processing, response_bytes, listening) = if is_cloud {
            // The real cloud hosts every registered service (and a generic
            // web server for everything else) — the "perceived cloud".
            match self.profiles.get(&frame.dst_service()) {
                Some(p) => (p.request_processing, p.response_bytes, true),
                None => (self.cloud_processing, 500, true),
            }
        } else {
            match edge {
                Some((processing, _, response_bytes, ready)) => {
                    (processing, response_bytes, ready)
                }
                None => (self.cloud_processing, 0, false),
            }
        };

        if frame.flags.contains(TcpFlags::SYN) {
            let reply = if listening {
                frame.reply(TcpFlags::SYN_ACK, Vec::new())
            } else {
                // Port closed: the OS answers RST (why the controller polls
                // before releasing the client's packet).
                frame.reply(TcpFlags::RST, Vec::new())
            };
            let delay = self.accept_latency.sample_duration(&mut self.rng);
            self.engine.schedule_in(
                delay,
                Ev::ServerSend {
                    node,
                    data: reply.encode(),
                },
            );
            return;
        }
        if !frame.payload.is_empty() && listening {
            // Reassemble the (possibly segmented) HTTP request; respond once
            // all of it arrived.
            let expected = if is_cloud {
                self.profiles
                    .get(&frame.dst_service())
                    .map(|p| p.request_bytes)
                    .unwrap_or(1)
            } else {
                edge.map(|(_, request_bytes, _, _)| request_bytes).unwrap_or(1)
            };
            let key = (frame.src_ip, frame.src_port, frame.dst_ip, frame.dst_port);
            let acc = self.server_rx.entry(key).or_insert(0);
            *acc += frame.payload.len();
            if *acc >= expected {
                self.server_rx.remove(&key);
                let delay = processing.sample_duration(&mut self.rng);
                let template = frame.reply(TcpFlags::PSH_ACK, Vec::new());
                for seg in segments(&template, response_bytes) {
                    self.engine.schedule_in(
                        delay,
                        Ev::ServerSend {
                            node,
                            data: seg.encode(),
                        },
                    );
                }
            }
        }
        let _ = now;
    }

    fn handle_client_frame(&mut self, now: SimTime, client: usize, data: &[u8]) {
        let Ok(frame) = TcpFrame::decode(data) else {
            self.drops += 1;
            return;
        };
        let key = (client, frame.dst_port);
        let Some(conn) = self.conns.get_mut(&key) else {
            return; // stray frame for a finished connection
        };
        // Transparency invariant: everything the client receives must look
        // like it came from the registered cloud address.
        if frame.src_ip != conn.service.ip || frame.src_port != conn.service.port {
            self.transparency_violations += 1;
        }
        if frame.flags.contains(TcpFlags::RST) {
            self.resets += 1;
            self.conns.remove(&key);
            return;
        }
        if frame.flags.contains(TcpFlags::SYN) && frame.flags.contains(TcpFlags::ACK) {
            conn.timing.connected = Some(now);
            if !conn.request_sent {
                conn.request_sent = true;
                let request_bytes = self
                    .profiles
                    .get(&conn.service)
                    .map(|p| p.request_bytes)
                    .unwrap_or(120);
                // ACK + HTTP request, segmented at the MSS (curl pipelines
                // the ACK with the first data segment).
                let template = frame.reply(TcpFlags::PSH_ACK, Vec::new());
                let client_node = self.c3.clients[client];
                for seg in segments(&template, request_bytes) {
                    self.send_from(client_node, PortNo(1), seg.encode());
                }
            }
            return;
        }
        if !frame.payload.is_empty() {
            if conn.timing.first_byte.is_none() {
                conn.timing.first_byte = Some(now);
            }
            conn.bytes_received += frame.payload.len();
            if conn.bytes_received >= conn.expected_bytes {
                conn.timing.complete = Some(now);
                let done = CompletedRequest {
                    service: conn.service,
                    client: conn.client,
                    timing: conn.timing,
                };
                self.completed.push(done);
                self.conns.remove(&key);
            }
        }
    }
}

impl Drop for Testbed {
    /// Every finished testbed run contributes its metrics snapshot to the
    /// process-global collection point when one was enabled
    /// ([`telemetry::global`], `repro --telemetry`). With collection off —
    /// the default — this is a single atomic load.
    fn drop(&mut self) {
        if telemetry::global::enabled() {
            telemetry::global::merge(&self.telemetry_snapshot());
        }
    }
}

/// Splits `total_bytes` of application payload into MSS-sized TCP segments
/// patterned on `template` (endpoints/flags copied, payload replaced).
pub(crate) fn segments(template: &TcpFrame, total_bytes: usize) -> Vec<TcpFrame> {
    let n = total_bytes.div_ceil(MSS).max(1);
    let mut out = Vec::with_capacity(n);
    let mut remaining = total_bytes;
    let mut seq = template.seq;
    for _ in 0..n {
        let chunk = remaining.min(MSS);
        let mut f = template.clone();
        f.flags = TcpFlags::PSH_ACK;
        f.seq = seq;
        f.payload = vec![0x42; chunk.max(1)];
        seq = seq.wrapping_add(f.payload.len() as u32);
        remaining = remaining.saturating_sub(chunk);
        out.push(f);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Summary;

    fn svc_addr(i: u8) -> ServiceAddr {
        ServiceAddr::new(Ipv4Addr::new(203, 0, 113, i), 80)
    }

    fn run_one(kind: ClusterKind, profile_key: &str, pre_pull: bool, pre_create: bool, seed: u64) -> (Testbed, Duration) {
        let mut tb = Testbed::new(TestbedConfig {
            cluster: kind,
            seed,
            ..TestbedConfig::default()
        });
        let profile = containerd::ServiceSet::by_key(profile_key).unwrap();
        let addr = svc_addr(10);
        tb.register_service(profile, addr);
        if pre_pull {
            tb.pre_pull(addr);
        }
        if pre_create {
            tb.pre_create(addr);
        }
        tb.request_at(SimTime::from_secs(1), 0, addr);
        tb.run_until(SimTime::from_secs(120));
        assert_eq!(tb.completed.len(), 1, "request completed (resets={})", tb.resets);
        let total = tb.completed[0].timing.time_total().unwrap();
        (tb, total)
    }

    #[test]
    fn docker_scale_up_first_request_is_sub_second() {
        // The headline result: nginx on Docker, image cached & created —
        // first-request time_total ≈ 0.5 s, well under a second.
        let mut totals = Vec::new();
        for seed in 0..10 {
            let (_, total) = run_one(ClusterKind::Docker, "nginx", true, true, seed);
            totals.push(total.as_secs_f64());
        }
        let med = Summary::new(totals).median().unwrap();
        assert!((0.3..1.0).contains(&med), "docker median {med:.3}s");
    }

    #[test]
    fn k8s_scale_up_first_request_is_about_three_seconds() {
        let mut totals = Vec::new();
        for seed in 0..10 {
            let (_, total) = run_one(ClusterKind::K8s, "nginx", true, true, seed);
            totals.push(total.as_secs_f64());
        }
        let med = Summary::new(totals).median().unwrap();
        assert!((2.0..4.5).contains(&med), "k8s median {med:.3}s");
    }

    #[test]
    fn no_resets_thanks_to_port_polling() {
        for seed in [1, 7, 42] {
            let (tb, _) = run_one(ClusterKind::Docker, "resnet", true, true, seed);
            assert_eq!(tb.resets, 0, "client never hits a closed port");
        }
    }

    #[test]
    fn cold_pull_dominates_when_not_cached() {
        let (tb, total) = run_one(ClusterKind::Docker, "nginx", false, false, 3);
        assert!(total > Duration::from_secs(2), "cold total {total}");
        let rec = &tb.controller.records[0];
        assert!(rec.phases.pull_done.is_some());
    }

    #[test]
    fn second_request_is_milliseconds() {
        let mut tb = Testbed::new(TestbedConfig::default());
        let profile = containerd::ServiceSet::by_key("nginx").unwrap();
        let addr = svc_addr(10);
        tb.register_service(profile, addr);
        tb.pre_pull(addr);
        tb.pre_create(addr);
        tb.request_at(SimTime::from_secs(1), 0, addr);
        tb.request_at(SimTime::from_secs(10), 1, addr);
        tb.run_until(SimTime::from_secs(120));
        assert_eq!(tb.completed.len(), 2);
        let warm = tb.completed[1].timing.time_total().unwrap();
        // Fig. 16: ~1 ms for static services once running.
        assert!(warm < Duration::from_millis(10), "warm total {warm}");
        // And the switch served it without a second dispatch round:
        // the first request already installed per-connection flows, but a
        // new connection needs one more packet-in → memory hit.
        assert!(tb.controller.records.len() == 2);
    }

    #[test]
    fn unregistered_traffic_reaches_cloud_with_wan_latency() {
        let mut tb = Testbed::new(TestbedConfig::default());
        // No registration at all: everything flows to the cloud.
        let addr = svc_addr(99);
        tb.request_at(SimTime::from_secs(1), 0, addr);
        tb.run_until(SimTime::from_secs(30));
        assert_eq!(tb.completed.len(), 1);
        let total = tb.completed[0].timing.time_total().unwrap();
        // ≥ 4 WAN traversals (SYN, SYN-ACK, request, response) ≈ ≥60 ms.
        assert!(total > Duration::from_millis(50), "cloud total {total}");
    }

    #[test]
    fn resnet_is_much_slower_warm_than_nginx() {
        let mut tb = Testbed::new(TestbedConfig::default());
        let nginx = svc_addr(10);
        let resnet = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 11), 8501);
        tb.register_service(containerd::ServiceSet::by_key("nginx").unwrap(), nginx);
        tb.register_service(containerd::ServiceSet::by_key("resnet").unwrap(), resnet);
        for a in [nginx, resnet] {
            tb.pre_pull(a);
            tb.pre_create(a);
        }
        tb.request_at(SimTime::from_secs(1), 0, nginx);
        tb.request_at(SimTime::from_secs(1), 1, resnet);
        // Warm round after both deployed.
        tb.request_at(SimTime::from_secs(30), 2, nginx);
        tb.request_at(SimTime::from_secs(30), 3, resnet);
        tb.run_until(SimTime::from_secs(60));
        assert_eq!(tb.completed.len(), 4);
        let warm_nginx = tb
            .completed
            .iter()
            .find(|c| c.client == 2)
            .unwrap()
            .timing
            .time_total()
            .unwrap();
        let warm_resnet = tb
            .completed
            .iter()
            .find(|c| c.client == 3)
            .unwrap()
            .timing
            .time_total()
            .unwrap();
        assert!(
            warm_resnet > warm_nginx * 20,
            "resnet {warm_resnet} vs nginx {warm_nginx}"
        );
    }

    #[test]
    fn pcap_capture_records_decodable_traffic() {
        let mut tb = Testbed::new(TestbedConfig::default());
        tb.enable_capture();
        let addr = svc_addr(10);
        tb.register_service(containerd::ServiceSet::by_key("asm").unwrap(), addr);
        tb.pre_pull(addr);
        tb.pre_create(addr);
        tb.request_at(SimTime::from_secs(1), 0, addr);
        tb.run_until(SimTime::from_secs(30));
        let cap = tb.capture().unwrap();
        // SYN, SYN-ACK, request, response at minimum.
        assert!(cap.len() >= 4, "captured {}", cap.len());
        for (at, data) in cap.records() {
            assert!(*at >= SimTime::from_secs(1));
            TcpFrame::decode(data).expect("every captured frame decodes");
        }
        // The serialized capture round-trips.
        let bytes = cap.to_bytes();
        let back = netsim::PcapCapture::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), cap.len());
    }

    #[test]
    fn telemetry_records_spans_and_metrics_without_changing_results() {
        let run = |telemetry: bool| {
            let mut tb = Testbed::new(TestbedConfig {
                telemetry,
                seed: 5,
                ..TestbedConfig::default()
            });
            let addr = svc_addr(10);
            tb.register_service(containerd::ServiceSet::by_key("nginx").unwrap(), addr);
            tb.pre_pull(addr);
            tb.request_at(SimTime::from_secs(1), 0, addr);
            tb.request_at(SimTime::from_secs(5), 1, addr);
            tb.run_until(SimTime::from_secs(60));
            tb
        };
        let plain = run(false);
        let traced = run(true);
        // Telemetry is observation only: identical timings either way.
        let totals = |tb: &Testbed| {
            tb.completed
                .iter()
                .map(|c| (c.client, c.timing.time_total()))
                .collect::<Vec<_>>()
        };
        assert_eq!(totals(&plain), totals(&traced));
        assert!(plain.span_log().is_none(), "disabled runs record nothing");
        let log = traced.span_log().unwrap();
        assert!(log.check().ok(), "span log consistent: {:?}", log.check());
        assert_eq!(log.request_ids(), vec![1, 2]);
        // The snapshot folds every subsystem counter into one registry.
        let m = traced.telemetry_snapshot();
        assert_eq!(m.counter("requests_total"), 2);
        assert!(m.gauge("switch.microflow_hit_rate").is_some());
        assert!(m.gauge("flowmemory.lookups").unwrap() >= 2.0);
        assert!(m.gauge("cluster.egs-docker.ops_pulls").unwrap() >= 1.0);
        assert!(m.gauge("cluster.egs-docker.layer_cache_hit_rate").is_some());
        assert!(m.gauge("cluster.egs-docker.load").is_some());
        assert!(m.histogram("answer_delay_ns").is_some());
    }

    #[test]
    fn idle_service_scales_down_and_redeploys() {
        let mut tb = Testbed::new(TestbedConfig {
            controller: ControllerConfig {
                memory_idle: Duration::from_secs(20),
                ..ControllerConfig::default()
            },
            ..TestbedConfig::default()
        });
        let addr = svc_addr(10);
        tb.register_service(containerd::ServiceSet::by_key("asm").unwrap(), addr);
        tb.pre_pull(addr);
        tb.pre_create(addr);
        tb.request_at(SimTime::from_secs(1), 0, addr);
        // Long idle gap, then a second request.
        tb.request_at(SimTime::from_secs(60), 1, addr);
        tb.run_until(SimTime::from_secs(120));
        assert_eq!(tb.completed.len(), 2);
        let kinds: Vec<_> = tb.controller.records.iter().map(|r| r.kind).collect();
        use edgectl::controller::RequestKind;
        assert_eq!(kinds[0], RequestKind::Waited);
        // After idle scale-down the service had to be scaled up again.
        assert_eq!(kinds[1], RequestKind::Waited, "kinds: {kinds:?}");
    }
}
