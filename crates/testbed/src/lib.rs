//! `testbed` — the emulated Carinthian Computing Continuum (C³) and the
//! experiment harness.
//!
//! The paper evaluates on a real edge/fog testbed: an Edge Gateway Server
//! (EGS) running the SDN controller, a virtual OVS switch, Docker and
//! Kubernetes; 20 Raspberry Pi clients; and a WAN uplink toward the cloud
//! (Fig. 8). This crate assembles the simulated equivalent from the substrate
//! crates and drives complete experiments through it:
//!
//! * [`topology`] — the virtual network of Fig. 8, plus the multi-cell
//!   [`topology::MultiGnbTopology`] used by the mobility experiments;
//! * [`mobility_run`] — the multi-gNB harness: long-lived sessions under
//!   user mobility with transparent make-before-break flow handover;
//! * [`harness`] — the event-driven end-to-end simulator: client TCP
//!   connections traverse the OVS data plane as real frames, table misses
//!   travel to the controller as real OpenFlow bytes, deployments run
//!   against the simulated Docker/Kubernetes clusters, and `timecurl`-style
//!   `time_total` is recorded per request;
//! * [`experiments`] — one entry point per table/figure of the paper
//!   (Table I, Figs. 9–16) plus the ablations discussed in Sections V/VII;
//! * [`report`] — text rendering: aligned tables, ASCII bar charts, CSV.

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod mobility_run;
pub mod report;
pub mod topology;

pub use harness::{ClusterKind, CompletedRequest, Testbed, TestbedConfig};
pub use mobility_run::{HandoverRecord, MobilityConfig, MobilityTestbed};
pub use topology::{client_ip_for, fleet_client_ip, C3Topology, MultiGnbTopology};
