//! Sim-time tracing: spans and events keyed by request id.
//!
//! A [`Span`] covers an interval of simulated time (packet-in handling, a
//! deploy phase, a port poll); an [`Event`] is a point annotation inside a
//! span (a retry attempt, an injected fault, a scheduler decision). Spans
//! form a per-request tree through their `parent` links; the whole forest
//! lives in a [`SpanLog`] that exports to JSON and is validated by
//! [`SpanLog::check`] (every span closed, no orphan parents).
//!
//! Span *end* timestamps may lie in the simulated future of the instant the
//! span was closed at — the controller knows at dispatch time when a held
//! request will be released, and closes the span with that instant. What is
//! guaranteed is that every span is closed exactly once.

use desim::{fmt_duration, SimTime};

/// Identifier of one span within one tracer. `NONE` (zero) means "no span"
/// — the parent of a root span, or any span handed out by [`NoopTracer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanId(pub u32);

impl SpanId {
    /// The absent span.
    pub const NONE: SpanId = SpanId(0);

    /// `true` if this is a real span id.
    #[inline]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// A point annotation inside a span.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// When the event happened.
    pub at: SimTime,
    /// Short machine-friendly name (`"retry"`, `"fault"`, `"decision"`).
    pub name: String,
    /// Free-form human-readable detail.
    pub detail: String,
}

/// One recorded span: an interval of simulated time attributed to a request.
#[derive(Clone, Debug)]
pub struct Span {
    /// This span's id (position + 1 in the log).
    pub id: SpanId,
    /// Parent span, or [`SpanId::NONE`] for a request root.
    pub parent: SpanId,
    /// The request this span belongs to.
    pub request: u64,
    /// Span name (`"request"`, `"deploy-pull"`, `"schedule"`, ...).
    pub name: String,
    /// When the span opened.
    pub start: SimTime,
    /// When the span closed; `None` while still open.
    pub end: Option<SimTime>,
    /// Point events recorded inside the span.
    pub events: Vec<Event>,
}

/// The result of validating a [`SpanLog`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanCheck {
    /// Total spans in the log.
    pub spans: usize,
    /// Spans never closed.
    pub unclosed: usize,
    /// Spans whose parent id does not exist or belongs to another request.
    pub orphans: usize,
}

impl SpanCheck {
    /// `true` if the log is well-formed.
    pub fn ok(&self) -> bool {
        self.unclosed == 0 && self.orphans == 0
    }

    /// The machine-readable one-line form CI greps
    /// (`span-check {"spans":N,"unclosed":0,"orphans":0}`).
    pub fn to_json_line(&self) -> String {
        format!(
            "span-check {{\"spans\":{},\"unclosed\":{},\"orphans\":{}}}",
            self.spans, self.unclosed, self.orphans
        )
    }
}

/// An append-only forest of spans, ordered by creation.
#[derive(Clone, Debug, Default)]
pub struct SpanLog {
    spans: Vec<Span>,
}

impl SpanLog {
    /// An empty log.
    pub fn new() -> Self {
        SpanLog::default()
    }

    /// Number of spans recorded.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// All spans, in creation order.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter()
    }

    /// The spans of one request, in creation order.
    pub fn spans_for_request(&self, request: u64) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.request == request)
    }

    /// Request ids present in the log, ascending and deduplicated.
    pub fn request_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.spans.iter().map(|s| s.request).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    fn open(&mut self, request: u64, parent: SpanId, name: &str, at: SimTime) -> SpanId {
        let id = SpanId(self.spans.len() as u32 + 1);
        self.spans.push(Span {
            id,
            parent,
            request,
            name: name.to_owned(),
            start: at,
            end: None,
            events: Vec::new(),
        });
        id
    }

    fn close(&mut self, span: SpanId, at: SimTime) {
        if !span.is_some() {
            return;
        }
        let s = &mut self.spans[span.0 as usize - 1];
        debug_assert!(s.end.is_none(), "span {} ({}) closed twice", s.id.0, s.name);
        s.end = Some(at);
    }

    fn push_event(&mut self, span: SpanId, name: &str, at: SimTime, detail: String) {
        if !span.is_some() {
            return;
        }
        self.spans[span.0 as usize - 1].events.push(Event {
            at,
            name: name.to_owned(),
            detail,
        });
    }

    /// Validates the log: every span closed, every parent existing and on
    /// the same request.
    pub fn check(&self) -> SpanCheck {
        let mut unclosed = 0;
        let mut orphans = 0;
        for s in &self.spans {
            if s.end.is_none() {
                unclosed += 1;
            }
            if s.parent.is_some() {
                match self.spans.get(s.parent.0 as usize - 1) {
                    Some(p) if p.request == s.request => {}
                    _ => orphans += 1,
                }
            }
        }
        SpanCheck {
            spans: self.spans.len(),
            unclosed,
            orphans,
        }
    }

    /// Appends every span of `other`, remapping span ids to stay
    /// consecutive, offsetting request ids by `request_offset`, and tagging
    /// span names with `label` (`"docker/request"`). Used to combine the
    /// logs of several runs (e.g. the chaos experiment's Docker and
    /// Kubernetes testbeds) into one exportable log.
    pub fn absorb(&mut self, other: &SpanLog, label: &str, request_offset: u64) {
        let base = self.spans.len() as u32;
        for s in &other.spans {
            let mut ns = s.clone();
            ns.id = SpanId(s.id.0 + base);
            if ns.parent.is_some() {
                ns.parent = SpanId(ns.parent.0 + base);
            }
            ns.request = s.request + request_offset;
            if !label.is_empty() {
                ns.name = format!("{label}/{}", s.name);
            }
            self.spans.push(ns);
        }
    }

    /// Exports the whole log as a JSON array (one object per span), on a
    /// single line so it can be grepped out of mixed output. Times are raw
    /// nanoseconds; an open span's `end_ns` is `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"parent\":{},\"request\":{},\"name\":\"{}\",\"start_ns\":{},\"end_ns\":{}",
                s.id.0,
                s.parent.0,
                s.request,
                json_escape(&s.name),
                s.start.as_nanos(),
                match s.end {
                    Some(e) => e.as_nanos().to_string(),
                    None => "null".to_owned(),
                }
            ));
            out.push_str(",\"events\":[");
            for (j, e) in s.events.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"at_ns\":{},\"name\":\"{}\",\"detail\":\"{}\"}}",
                    e.at.as_nanos(),
                    json_escape(&e.name),
                    json_escape(&e.detail)
                ));
            }
            out.push_str("]}");
        }
        out.push(']');
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The tracing interface the instrumented code talks to. Implementations
/// must not draw randomness or alter timing — tracing is observational.
pub trait Tracer: Send {
    /// `true` if spans are recorded. Call sites use this to skip building
    /// detail strings on the disabled path.
    fn enabled(&self) -> bool;

    /// Opens a span; returns its id ([`SpanId::NONE`] when disabled).
    fn span_start(&mut self, request: u64, parent: SpanId, name: &str, at: SimTime) -> SpanId;

    /// Closes a span. Must be a no-op for [`SpanId::NONE`].
    fn span_end(&mut self, span: SpanId, at: SimTime);

    /// Records a point event on a span.
    fn event(&mut self, span: SpanId, name: &str, at: SimTime, detail: String);

    /// The recorded log, if this tracer keeps one.
    fn log(&self) -> Option<&SpanLog> {
        None
    }

    /// Consumes the tracer, returning the log if one was recorded.
    fn into_log(self: Box<Self>) -> Option<SpanLog> {
        None
    }
}

/// The disabled tracer: every method is a no-op and every span id is
/// [`SpanId::NONE`]. This is what production (and every default-configured
/// test/experiment) runs with — the whole tracing layer reduces to a
/// never-taken branch.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn span_start(&mut self, _: u64, _: SpanId, _: &str, _: SimTime) -> SpanId {
        SpanId::NONE
    }

    #[inline]
    fn span_end(&mut self, _: SpanId, _: SimTime) {}

    #[inline]
    fn event(&mut self, _: SpanId, _: &str, _: SimTime, _: String) {}
}

/// The recording tracer: appends to an in-memory [`SpanLog`].
#[derive(Clone, Debug, Default)]
pub struct SimTracer {
    log: SpanLog,
}

impl SimTracer {
    /// A tracer with an empty log.
    pub fn new() -> Self {
        SimTracer::default()
    }
}

impl Tracer for SimTracer {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn span_start(&mut self, request: u64, parent: SpanId, name: &str, at: SimTime) -> SpanId {
        self.log.open(request, parent, name, at)
    }

    fn span_end(&mut self, span: SpanId, at: SimTime) {
        self.log.close(span, at);
    }

    fn event(&mut self, span: SpanId, name: &str, at: SimTime, detail: String) {
        self.log.push_event(span, name, at, detail);
    }

    fn log(&self) -> Option<&SpanLog> {
        Some(&self.log)
    }

    fn into_log(self: Box<Self>) -> Option<SpanLog> {
        Some(self.log)
    }
}

/// Renders one span line for timelines: `name start +duration`.
/// (The full per-request timeline renderer lives in `testbed::report`,
/// which owns all ASCII layout; this helper keeps the duration formatting
/// shared with tables and errors via [`desim::fmt_duration`].)
pub fn span_label(s: &Span) -> String {
    match s.end {
        Some(end) => format!(
            "{} @{} +{}",
            s.name,
            fmt_duration(s.start.saturating_since(SimTime::ZERO)),
            fmt_duration(end.saturating_since(s.start)),
        ),
        None => format!(
            "{} @{} (open)",
            s.name,
            fmt_duration(s.start.saturating_since(SimTime::ZERO)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> SpanLog {
        let mut t = SimTracer::new();
        let r0 = t.span_start(0, SpanId::NONE, "request", SimTime::from_secs(1));
        let d = t.span_start(0, r0, "deploy-pull", SimTime::from_secs(1));
        t.event(d, "retry", SimTime::from_millis(1200), "pull: fault".into());
        t.span_end(d, SimTime::from_secs(2));
        t.span_end(r0, SimTime::from_secs(2));
        let r1 = t.span_start(1, SpanId::NONE, "request", SimTime::from_secs(3));
        t.span_end(r1, SimTime::from_secs(3));
        t.log.clone()
    }

    #[test]
    fn check_passes_on_well_formed_log() {
        let log = sample_log();
        let c = log.check();
        assert!(c.ok());
        assert_eq!(c.spans, 3);
        assert_eq!(log.request_ids(), vec![0, 1]);
        assert_eq!(log.spans_for_request(0).count(), 2);
        assert_eq!(
            c.to_json_line(),
            "span-check {\"spans\":3,\"unclosed\":0,\"orphans\":0}"
        );
    }

    #[test]
    fn check_flags_unclosed_and_orphans() {
        let mut t = SimTracer::new();
        let r = t.span_start(0, SpanId::NONE, "request", SimTime::ZERO);
        // Parent id 99 does not exist.
        t.span_start(0, SpanId(99), "deploy", SimTime::ZERO);
        // Parent exists but belongs to another request.
        let cross = t.span_start(1, r, "deploy", SimTime::ZERO);
        t.span_end(cross, SimTime::ZERO);
        let c = t.log().unwrap().check();
        assert!(!c.ok());
        assert_eq!(c.unclosed, 2); // r and the orphan are still open
        assert_eq!(c.orphans, 2);
    }

    #[test]
    fn json_export_is_one_line_and_escaped() {
        let mut t = SimTracer::new();
        let s = t.span_start(0, SpanId::NONE, "request", SimTime::from_millis(5));
        t.event(s, "fault", SimTime::from_millis(6), "say \"no\"\n".into());
        t.span_end(s, SimTime::from_millis(7));
        let json = t.log().unwrap().to_json();
        assert!(!json.contains('\n'));
        assert!(json.contains("\"start_ns\":5000000"));
        assert!(json.contains("say \\\"no\\\"\\n"));
        // An open span exports end_ns:null.
        let mut t2 = SimTracer::new();
        t2.span_start(0, SpanId::NONE, "request", SimTime::ZERO);
        assert!(t2.log().unwrap().to_json().contains("\"end_ns\":null"));
    }

    #[test]
    fn absorb_remaps_ids_and_requests() {
        let mut a = sample_log();
        let b = sample_log();
        let before = a.len();
        a.absorb(&b, "k8s", 100);
        assert_eq!(a.len(), before + b.len());
        assert!(a.check().ok());
        assert_eq!(a.request_ids(), vec![0, 1, 100, 101]);
        let absorbed: Vec<_> = a.spans_for_request(100).collect();
        assert_eq!(absorbed[0].name, "k8s/request");
        assert_eq!(absorbed[1].parent, absorbed[0].id);
    }

    #[test]
    fn span_label_uses_shared_duration_formatting() {
        let log = sample_log();
        let spans: Vec<_> = log.spans().collect();
        assert_eq!(span_label(spans[0]), "request @1.000s +1.000s");
        let mut open = spans[2].clone();
        open.end = None;
        assert_eq!(span_label(&open), "request @3.000s (open)");
    }
}
