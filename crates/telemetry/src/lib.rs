//! `telemetry` — sim-time observability for the transparent-edge stack.
//!
//! Two halves, both deterministic and both zero-cost when disabled:
//!
//! * **Tracing** ([`Tracer`], [`Span`], [`Event`]): lightweight spans keyed
//!   by request id that record the full causal chain of one request —
//!   packet-in → FlowMemory lookup → scheduler decision → deploy phases
//!   (with retry attempts and injected faults) → flow install → response.
//!   The recording [`SimTracer`] keeps a [`SpanLog`] exportable as JSON;
//!   [`NoopTracer`] sits behind the same trait and does nothing, so the
//!   instrumented code paths stay byte-identical when telemetry is off.
//! * **Metrics** ([`MetricsRegistry`]): named counters, gauges, and
//!   log-scale histograms (p50/p95/p99/max via [`desim::LogHistogram`])
//!   with point-in-time JSON snapshots — the `metrics:` block the `repro`
//!   binary emits.
//!
//! Timestamps are [`desim::SimTime`]: everything here observes the
//! simulation clock, never the wall clock, so traces are reproducible
//! run-to-run. Nothing in this crate draws randomness or influences
//! control flow — recording with telemetry on produces the exact same
//! simulation as running with it off.

#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::MetricsRegistry;
pub use trace::{span_label, Event, NoopTracer, SimTracer, Span, SpanCheck, SpanId, SpanLog, Tracer};

use desim::SimTime;

/// One telemetry endpoint: a tracer (noop or recording) plus a metrics
/// registry. Controllers own one and thread it through dispatch.
pub struct Telemetry {
    /// Cached `tracer.enabled()`, sampled at construction. Every span and
    /// event call checks this plain bool first so the disabled path never
    /// pays the virtual call through the tracer box.
    enabled: bool,
    tracer: Box<dyn Tracer>,
    /// The always-on metrics registry. Recording a counter has no
    /// observable effect until a snapshot is printed, so metrics do not
    /// break the byte-identical-when-disabled guarantee.
    pub metrics: MetricsRegistry,
}

impl Telemetry {
    /// Telemetry with tracing disabled ([`NoopTracer`]) — the default.
    pub fn disabled() -> Self {
        Telemetry {
            enabled: false,
            tracer: Box::new(NoopTracer),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Telemetry with a recording [`SimTracer`].
    pub fn recording() -> Self {
        Telemetry {
            enabled: true,
            tracer: Box::new(SimTracer::new()),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Telemetry with a custom tracer implementation. Whether the tracer
    /// records is sampled once here, not per call.
    pub fn with_tracer(tracer: Box<dyn Tracer>) -> Self {
        Telemetry {
            enabled: tracer.enabled(),
            tracer,
            metrics: MetricsRegistry::new(),
        }
    }

    /// `true` if the tracer records spans.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span. Returns [`SpanId::NONE`] when tracing is disabled.
    #[inline]
    pub fn span(&mut self, request: u64, parent: SpanId, name: &str, at: SimTime) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        self.tracer.span_start(request, parent, name, at)
    }

    /// Closes a span. No-op for [`SpanId::NONE`].
    #[inline]
    pub fn end_span(&mut self, span: SpanId, at: SimTime) {
        if self.enabled {
            self.tracer.span_end(span, at);
        }
    }

    /// Records an event on a span. The `detail` closure only runs when
    /// tracing is enabled, so format strings cost nothing when disabled.
    #[inline]
    pub fn event(&mut self, span: SpanId, name: &str, at: SimTime, detail: impl FnOnce() -> String) {
        if self.enabled {
            self.tracer.event(span, name, at, detail());
        }
    }

    /// The recorded span log, if the tracer keeps one.
    pub fn span_log(&self) -> Option<&SpanLog> {
        self.tracer.log()
    }

    /// Consumes the endpoint, returning the span log if one was recorded.
    pub fn into_span_log(self) -> Option<SpanLog> {
        self.tracer.into_log()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .field("metrics", &self.metrics)
            .finish()
    }
}

/// Process-global metrics collection, used by `repro --telemetry`: every
/// finished testbed run merges its local registry here when collection is
/// enabled, and the binary prints one combined snapshot at the end.
pub mod global {
    use super::MetricsRegistry;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static REGISTRY: Mutex<Option<MetricsRegistry>> = Mutex::new(None);

    /// Turns global collection on (idempotent).
    pub fn enable() {
        ENABLED.store(true, Ordering::SeqCst);
    }

    /// `true` if global collection is on.
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::SeqCst)
    }

    /// Merges a local registry into the global one. No-op unless
    /// [`enable`] was called.
    pub fn merge(local: &MetricsRegistry) {
        if !enabled() {
            return;
        }
        let mut guard = REGISTRY.lock().expect("global metrics poisoned");
        guard.get_or_insert_with(MetricsRegistry::new).merge(local);
    }

    /// JSON snapshot of everything merged so far (an empty registry if
    /// nothing was).
    pub fn snapshot_json() -> String {
        let guard = REGISTRY.lock().expect("global metrics poisoned");
        match guard.as_ref() {
            Some(r) => r.to_json(),
            None => MetricsRegistry::new().to_json(),
        }
    }

    /// Clears collected metrics and disables collection (test helper).
    pub fn reset() {
        ENABLED.store(false, Ordering::SeqCst);
        *REGISTRY.lock().expect("global metrics poisoned") = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Duration;

    #[test]
    fn disabled_endpoint_records_nothing() {
        let mut t = Telemetry::disabled();
        assert!(!t.enabled());
        let s = t.span(0, SpanId::NONE, "request", SimTime::ZERO);
        assert_eq!(s, SpanId::NONE);
        let mut ran = false;
        t.event(s, "x", SimTime::ZERO, || {
            ran = true;
            String::new()
        });
        assert!(!ran, "detail closure must not run when disabled");
        t.end_span(s, SimTime::from_secs(1));
        assert!(t.span_log().is_none());
    }

    #[test]
    fn recording_endpoint_keeps_the_causal_chain() {
        let mut t = Telemetry::recording();
        assert!(t.enabled());
        let root = t.span(7, SpanId::NONE, "request", SimTime::from_secs(1));
        let child = t.span(7, root, "deploy", SimTime::from_secs(1));
        t.event(child, "retry", SimTime::from_millis(1500), || "pull failed".into());
        t.end_span(child, SimTime::from_secs(2));
        t.end_span(root, SimTime::from_secs(2));
        let log = t.span_log().unwrap();
        let check = log.check();
        assert_eq!((check.spans, check.unclosed, check.orphans), (2, 0, 0));
        let spans: Vec<_> = log.spans().collect();
        assert_eq!(spans[1].parent, spans[0].id);
        assert_eq!(spans[1].events[0].detail, "pull failed");
    }

    #[test]
    fn global_merge_is_gated_on_enable() {
        global::reset();
        let mut m = MetricsRegistry::new();
        m.inc("requests_total");
        m.observe("response_ns", Duration::from_millis(3));
        global::merge(&m); // disabled: dropped
        assert!(!global::snapshot_json().contains("requests_total"));
        global::enable();
        global::merge(&m);
        global::merge(&m);
        let json = global::snapshot_json();
        assert!(json.contains("\"requests_total\": 2"), "{json}");
        global::reset();
    }
}
