//! The metrics registry: named counters, gauges, and log-scale histograms.
//!
//! Names are dot-separated lowercase with a `_total` suffix for counters
//! and a `_ns` suffix for duration histograms (`deploy_pull_ns`,
//! `cluster_load.edge-docker`). The registry is always on — recording is a
//! hash-map bump with no observable output — and a point-in-time snapshot
//! renders as the deterministic JSON `metrics:` block `repro` emits
//! (BTreeMap iteration keeps key order stable run-to-run).

use desim::{Duration, LogHistogram};
use std::collections::BTreeMap;

/// A registry of counters, gauges, and histograms.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, LogHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increments counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increments counter `name` by `n` (creating it at zero first).
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += n;
    }

    /// Current value of counter `name` (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records `d` into histogram `name`.
    pub fn observe(&mut self, name: &str, d: Duration) {
        self.hists
            .entry(name.to_owned())
            .or_default()
            .record_duration(d);
    }

    /// The histogram behind `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.hists.get(name)
    }

    /// `true` if nothing was recorded at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Merges another registry: counters add, histograms combine, gauges
    /// take the other side's value (point-in-time semantics — the merged
    /// snapshot reflects the most recently finished run).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.hists {
            self.hists
                .entry(k.clone())
                .or_default()
                .merge(h);
        }
    }

    /// Renders the snapshot as pretty-printed JSON: counters and gauges as
    /// flat maps, each histogram as `{count, p50_ms, p95_ms, p99_ms,
    /// max_ms, mean_ms}` (milliseconds with microsecond precision, the
    /// natural unit for deploy phases and response times).
    pub fn to_json(&self) -> String {
        fn ms(ns: u64) -> f64 {
            ns as f64 / 1e6
        }
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!("    \"{k}\": {v}"));
        }
        if !self.counters.is_empty() {
            out.push('\n');
        }
        out.push_str("  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!("    \"{k}\": {v:.6}"));
        }
        if !self.gauges.is_empty() {
            out.push('\n');
        }
        out.push_str("  },\n  \"histograms\": {");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    \"{k}\": {{\"count\": {}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
                 \"p99_ms\": {:.3}, \"max_ms\": {:.3}, \"mean_ms\": {:.3}}}",
                h.count(),
                ms(h.percentile(50.0).unwrap_or(0)),
                ms(h.percentile(95.0).unwrap_or(0)),
                ms(h.percentile(99.0).unwrap_or(0)),
                ms(h.max().unwrap_or(0)),
                h.mean().unwrap_or(0.0) / 1e6,
            ));
        }
        if !self.hists.is_empty() {
            out.push('\n');
        }
        out.push_str("  }\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let mut m = MetricsRegistry::new();
        assert!(m.is_empty());
        m.inc("requests_total");
        m.add("requests_total", 2);
        m.set_gauge("microflow_hit_rate", 0.75);
        m.observe("deploy_pull_ns", Duration::from_millis(120));
        m.observe("deploy_pull_ns", Duration::from_millis(480));
        assert_eq!(m.counter("requests_total"), 3);
        assert_eq!(m.counter("never_touched"), 0);
        assert_eq!(m.gauge("microflow_hit_rate"), Some(0.75));
        assert_eq!(m.histogram("deploy_pull_ns").unwrap().count(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn merge_adds_counters_and_combines_histograms() {
        let mut a = MetricsRegistry::new();
        a.add("x_total", 5);
        a.set_gauge("g", 1.0);
        a.observe("h_ns", Duration::from_millis(10));
        let mut b = MetricsRegistry::new();
        b.add("x_total", 7);
        b.add("y_total", 1);
        b.set_gauge("g", 2.0);
        b.observe("h_ns", Duration::from_millis(30));
        a.merge(&b);
        assert_eq!(a.counter("x_total"), 12);
        assert_eq!(a.counter("y_total"), 1);
        assert_eq!(a.gauge("g"), Some(2.0));
        assert_eq!(a.histogram("h_ns").unwrap().count(), 2);
        assert_eq!(a.histogram("h_ns").unwrap().max(), Some(30_000_000));
    }

    #[test]
    fn json_snapshot_is_deterministic_and_sorted() {
        let mut m = MetricsRegistry::new();
        m.inc("z_total");
        m.inc("a_total");
        m.set_gauge("rate", 0.5);
        m.observe("lat_ns", Duration::from_micros(250));
        let j1 = m.to_json();
        let j2 = m.to_json();
        assert_eq!(j1, j2);
        let a = j1.find("\"a_total\"").unwrap();
        let z = j1.find("\"z_total\"").unwrap();
        assert!(a < z, "keys must be sorted");
        assert!(j1.contains("\"rate\": 0.500000"));
        assert!(j1.contains("\"count\": 1"));
        assert!(j1.contains("\"p50_ms\": 0.2"));
        // Empty registry still renders a valid skeleton.
        assert_eq!(
            MetricsRegistry::new().to_json(),
            "{\n  \"counters\": {  },\n  \"gauges\": {  },\n  \"histograms\": {  }\n}"
        );
    }
}
