//! Differential testing of the indexed flow table against the naive one.
//!
//! [`crate::table::FlowTable`] re-implements the seed's linear-scan table
//! ([`crate::naive::NaiveFlowTable`]) with a hash index and a timer wheel.
//! The optimization is only admissible if it is *observably identical*, so
//! this module replays randomized operation sequences — add / modify /
//! modify-strict / delete / lookup / peek / expire over a monotonic clock —
//! against both implementations and asserts, after every step:
//!
//! * identical lookup results (cookie + instructions) and peek results,
//! * identical removal records (entry, final counters, reason, order) from
//!   delete and expiry sweeps,
//! * identical table contents via [`FlowTable::entries`] (same order:
//!   priority descending, first-added first),
//! * consistent `next_expiry`: equal emptiness, and the indexed value never
//!   later than the naive (exact) one — the wheel's documented lower-bound
//!   contract.
//!
//! The harness is driven two ways: a deterministic in-crate test sweeping
//! 1100 fixed seeds (runs in offline builds), and a `proptest` integration
//! test (`tests/table_diff.rs`) that shrinks failing seeds.

use crate::actions::{Action, Instruction};
use crate::oxm::{Match, MatchView, OxmField};
use crate::table::{entry, FlowTable, Removed};
use crate::NaiveFlowTable;
use desim::{Duration, SimRng, SimTime};

/// Small value pools so random operations collide on matches, priorities and
/// views often enough to exercise replace/modify/tie-break paths.
const IPS: [[u8; 4]; 4] = [[10, 0, 0, 1], [10, 0, 0, 2], [203, 0, 113, 10], [203, 0, 113, 11]];
const PORTS: [u16; 3] = [80, 443, 8080];
const SRC_PORTS: [u16; 3] = [50000, 50001, 50002];

fn random_ip(rng: &mut SimRng) -> [u8; 4] {
    IPS[rng.below(IPS.len() as u64) as usize]
}

fn random_port(rng: &mut SimRng) -> u16 {
    PORTS[rng.below(PORTS.len() as u64) as usize]
}

fn random_match(rng: &mut SimRng) -> Match {
    match rng.below(6) {
        0 => Match::any(),
        1 | 2 => Match::service(random_ip(rng), random_port(rng)),
        3 => {
            let sp = SRC_PORTS[rng.below(3) as usize];
            Match::connection(random_ip(rng), sp, random_ip(rng), random_port(rng))
        }
        4 => Match::any().with(OxmField::TcpDst(random_port(rng))),
        _ => Match::any().with(OxmField::Ipv4Dst(random_ip(rng))),
    }
}

fn random_view(rng: &mut SimRng) -> MatchView {
    MatchView {
        in_port: 1 + rng.below(2) as u32,
        eth_dst: [2, 0, 0, 0, 0, 9],
        eth_src: [2, 0, 0, 0, 0, 1],
        eth_type: if rng.below(10) == 0 { 0x0806 } else { 0x0800 },
        ip_proto: if rng.below(10) == 0 { 17 } else { 6 },
        ipv4_src: random_ip(rng),
        ipv4_dst: random_ip(rng),
        tcp_src: SRC_PORTS[rng.below(3) as usize],
        tcp_dst: random_port(rng),
    }
}

fn random_timeout(rng: &mut SimRng) -> Duration {
    match rng.below(4) {
        0 => Duration::ZERO,
        1 => Duration::from_secs(1),
        2 => Duration::from_secs(3),
        _ => Duration::from_secs(7),
    }
}

fn fwd(port: u32) -> Vec<Instruction> {
    vec![Instruction::ApplyActions(vec![Action::output(port)])]
}

/// The observable fields of a removal record, for exact comparison.
fn removed_key(r: &Removed) -> (u16, u64, Vec<OxmField>, u64, u64, SimTime, SimTime, u8, SimTime) {
    (
        r.entry.priority,
        r.entry.cookie,
        r.entry.match_.fields().to_vec(),
        r.entry.packet_count,
        r.entry.byte_count,
        r.entry.installed_at,
        r.entry.last_hit,
        r.reason as u8,
        r.at,
    )
}

fn assert_removed_eq(naive: &[Removed], indexed: &[Removed], ctx: &str) {
    assert_eq!(
        naive.iter().map(removed_key).collect::<Vec<_>>(),
        indexed.iter().map(removed_key).collect::<Vec<_>>(),
        "{ctx}: removal records diverge"
    );
}

fn assert_tables_eq(naive: &NaiveFlowTable, indexed: &FlowTable, ctx: &str) {
    assert_eq!(naive.len(), indexed.len(), "{ctx}: lengths diverge");
    let n: Vec<_> = naive
        .entries()
        .map(|e| {
            (
                e.priority,
                e.cookie,
                e.match_.fields().to_vec(),
                e.instructions.clone(),
                e.packet_count,
                e.byte_count,
                e.installed_at,
                e.last_hit,
            )
        })
        .collect();
    let i: Vec<_> = indexed
        .entries()
        .map(|e| {
            (
                e.priority,
                e.cookie,
                e.match_.fields().to_vec(),
                e.instructions.clone(),
                e.packet_count,
                e.byte_count,
                e.installed_at,
                e.last_hit,
            )
        })
        .collect();
    assert_eq!(n, i, "{ctx}: entries diverge");
    match (naive.next_expiry(), indexed.next_expiry()) {
        (None, None) => {}
        (Some(exact), Some(bound)) => assert!(
            bound <= exact,
            "{ctx}: wheel bound {bound} later than exact next expiry {exact}"
        ),
        (n, i) => panic!("{ctx}: next_expiry emptiness diverges: naive {n:?}, indexed {i:?}"),
    }
}

/// Replays one random sequence of `ops` operations (derived from `seed`)
/// against both table implementations, panicking on any observable
/// divergence. Returns the number of operations that found at least one
/// matching flow, as a coverage signal for the caller.
pub fn check_seed(seed: u64, ops: usize) -> usize {
    let mut rng = SimRng::new(seed);
    let mut naive = NaiveFlowTable::new();
    let mut indexed = FlowTable::new();
    let mut now = SimTime::ZERO;
    let mut cookie = 0u64;
    let mut hits = 0usize;
    for step in 0..ops {
        now += Duration::from_nanos(rng.below(1_500_000_000));
        let ctx = format!("seed {seed} step {step}");
        match rng.below(10) {
            0..=2 => {
                cookie += 1;
                let e = entry(
                    random_match(&mut rng),
                    (rng.below(4) * 5) as u16,
                    cookie,
                    fwd(rng.below(8) as u32),
                    random_timeout(&mut rng),
                    random_timeout(&mut rng),
                    0,
                );
                naive.add(e.clone(), now);
                indexed.add(e, now);
            }
            3 => {
                let m = random_match(&mut rng);
                let instr = fwd(100 + rng.below(8) as u32);
                let a = naive.modify(&m, &instr);
                let b = indexed.modify(&m, &instr);
                assert_eq!(a, b, "{ctx}: modify counts diverge");
                hits += (a > 0) as usize;
            }
            4 => {
                let m = random_match(&mut rng);
                let p = (rng.below(4) * 5) as u16;
                let instr = fwd(200 + rng.below(8) as u32);
                let a = naive.modify_strict(&m, p, &instr);
                let b = indexed.modify_strict(&m, p, &instr);
                assert_eq!(a, b, "{ctx}: modify_strict counts diverge");
                hits += (a > 0) as usize;
            }
            5 => {
                let m = random_match(&mut rng);
                let a = naive.delete(&m, now);
                let b = indexed.delete(&m, now);
                assert_removed_eq(&a, &b, &ctx);
                hits += (!a.is_empty()) as usize;
            }
            6 | 7 => {
                let v = random_view(&mut rng);
                let len = 64 + rng.below(1400) as usize;
                let a = naive.lookup(&v, len, now);
                let b = indexed.lookup(&v, len, now);
                assert_eq!(a, b, "{ctx}: lookup results diverge");
                hits += a.is_some() as usize;
            }
            8 => {
                let a = naive.expire(now);
                let b = indexed.expire(now);
                assert_removed_eq(&a, &b, &ctx);
                hits += (!a.is_empty()) as usize;
            }
            _ => {
                let v = random_view(&mut rng);
                let a = naive.peek(&v).map(|e| (e.priority, e.cookie));
                let b = indexed.peek(&v).map(|e| (e.priority, e.cookie));
                assert_eq!(a, b, "{ctx}: peek results diverge");
                hits += a.is_some() as usize;
            }
        }
        assert_tables_eq(&naive, &indexed, &ctx);
    }
    // Final drain: everything must expire identically far in the future.
    let end = now + Duration::from_secs(3600);
    assert_removed_eq(&naive.expire(end), &indexed.expire(end), "final drain");
    assert_tables_eq(&naive, &indexed, "after final drain");
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The deterministic differential sweep: 1100 seeded random sequences,
    /// each 40 operations, replayed against both implementations. Any
    /// observable divergence (lookup result, removal record, entry order,
    /// counter, expiry emptiness) panics with the seed and step.
    #[test]
    fn indexed_table_matches_naive_on_1100_random_sequences() {
        let mut total_hits = 0;
        for seed in 0..1100 {
            total_hits += check_seed(seed, 40);
        }
        // Coverage sanity: the pools are tight enough that a healthy share
        // of operations actually touch installed flows.
        assert!(
            total_hits > 5000,
            "suspiciously low coverage: {total_hits} effective ops"
        );
    }

    /// Longer sequences stress wheel cascades and repeated expiry.
    #[test]
    fn indexed_table_matches_naive_on_long_sequences() {
        for seed in [7, 1234, 987654] {
            check_seed(seed, 400);
        }
    }
}
