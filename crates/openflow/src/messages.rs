//! OpenFlow control-channel messages.
//!
//! The subset the transparent-edge controller exchanges with its switches:
//! session setup (`HELLO`, `FEATURES`), liveness (`ECHO`), the reactive path
//! (`PACKET_IN` → `FLOW_MOD` + `PACKET_OUT`), expiry notifications
//! (`FLOW_REMOVED`, which drive FlowMemory cleanup and idle scale-down) and
//! `BARRIER` for ordering.

use crate::actions::{Action, Instruction};
use crate::oxm::Match;
use crate::{OfError, OFP_VERSION};
use desim::Duration;

/// Converts a timeout [`Duration`] to the `u16` whole-seconds wire field of
/// `FLOW_MOD` / `FLOW_REMOVED` / flow stats.
///
/// The wire value `0` means *no timeout* ("never expire"), so a flooring
/// division would silently turn any sub-second timeout into an immortal
/// flow, and a plain `as u16` cast wraps timeouts above `u16::MAX` seconds
/// (18.2 h) around to arbitrary small values. Instead: `Duration::ZERO`
/// stays `0` (genuinely no timeout), and every non-zero duration clamps to
/// `[1, u16::MAX]` seconds.
pub fn timeout_secs(d: Duration) -> u16 {
    if d == Duration::ZERO {
        0
    } else {
        (d.as_nanos() / 1_000_000_000).clamp(1, u16::MAX as u64) as u16
    }
}

const T_HELLO: u8 = 0;
const T_ECHO_REQUEST: u8 = 2;
const T_ECHO_REPLY: u8 = 3;
const T_FEATURES_REQUEST: u8 = 5;
const T_FEATURES_REPLY: u8 = 6;
const T_PACKET_IN: u8 = 10;
const T_FLOW_REMOVED: u8 = 11;
const T_PACKET_OUT: u8 = 13;
const T_FLOW_MOD: u8 = 14;
const T_ERROR: u8 = 1;
const T_MULTIPART_REQUEST: u8 = 18;
const T_MULTIPART_REPLY: u8 = 19;
const T_BARRIER_REQUEST: u8 = 20;

/// Multipart type for flow statistics.
const OFPMP_FLOW: u16 = 1;
const T_BARRIER_REPLY: u8 = 21;

/// Why a packet was sent to the controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketInReason {
    /// No matching flow (table-miss).
    NoMatch,
    /// Explicit output-to-controller action.
    Action,
    /// TTL invalid.
    InvalidTtl,
}

impl PacketInReason {
    fn to_u8(self) -> u8 {
        match self {
            PacketInReason::NoMatch => 0,
            PacketInReason::Action => 1,
            PacketInReason::InvalidTtl => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, OfError> {
        match v {
            0 => Ok(PacketInReason::NoMatch),
            1 => Ok(PacketInReason::Action),
            2 => Ok(PacketInReason::InvalidTtl),
            other => Err(OfError::BadType(other)),
        }
    }
}

/// Why a flow entry was removed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemovedReason {
    /// Idle timeout expired.
    IdleTimeout,
    /// Hard timeout expired.
    HardTimeout,
    /// Deleted by a `FLOW_MOD`.
    Delete,
}

impl RemovedReason {
    fn to_u8(self) -> u8 {
        match self {
            RemovedReason::IdleTimeout => 0,
            RemovedReason::HardTimeout => 1,
            RemovedReason::Delete => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, OfError> {
        match v {
            0 => Ok(RemovedReason::IdleTimeout),
            1 => Ok(RemovedReason::HardTimeout),
            2 => Ok(RemovedReason::Delete),
            other => Err(OfError::BadType(other)),
        }
    }
}

/// High-level error categories (a condensed `ofp_error_type`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorType {
    /// Request could not be parsed.
    BadRequest,
    /// An action was malformed or unsupported.
    BadAction,
    /// A flow modification failed.
    FlowModFailed,
}

impl ErrorType {
    fn to_u16(self) -> u16 {
        match self {
            ErrorType::BadRequest => 1,
            ErrorType::BadAction => 2,
            ErrorType::FlowModFailed => 5,
        }
    }

    fn from_u16(v: u16) -> Result<Self, OfError> {
        match v {
            1 => Ok(ErrorType::BadRequest),
            2 => Ok(ErrorType::BadAction),
            5 => Ok(ErrorType::FlowModFailed),
            other => Err(OfError::BadType(other as u8)),
        }
    }
}

/// One entry of a flow-statistics multipart reply.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowStatsEntry {
    /// Table the flow lives in.
    pub table_id: u8,
    /// Seconds the flow has been installed.
    pub duration_sec: u32,
    /// Flow priority.
    pub priority: u16,
    /// Idle timeout (seconds).
    pub idle_timeout: u16,
    /// Hard timeout (seconds).
    pub hard_timeout: u16,
    /// Controller cookie.
    pub cookie: u64,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
    /// The match.
    pub match_: Match,
}

impl FlowStatsEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        let mut body = Vec::new();
        body.push(self.table_id);
        body.push(0); // pad
        body.extend_from_slice(&self.duration_sec.to_be_bytes());
        body.extend_from_slice(&0u32.to_be_bytes()); // duration_nsec
        body.extend_from_slice(&self.priority.to_be_bytes());
        body.extend_from_slice(&self.idle_timeout.to_be_bytes());
        body.extend_from_slice(&self.hard_timeout.to_be_bytes());
        body.extend_from_slice(&[0u8; 6]); // flags + pad
        body.extend_from_slice(&self.cookie.to_be_bytes());
        body.extend_from_slice(&self.packet_count.to_be_bytes());
        body.extend_from_slice(&self.byte_count.to_be_bytes());
        self.match_.encode(&mut body);
        // length prefix covers the whole entry including itself.
        out.extend_from_slice(&((body.len() + 2) as u16).to_be_bytes());
        out.extend_from_slice(&body);
    }

    fn decode(buf: &[u8]) -> Result<(FlowStatsEntry, usize), OfError> {
        if buf.len() < 2 {
            return Err(OfError::Truncated { what: "flow stats length", need: 2, have: buf.len() });
        }
        let len = u16::from_be_bytes([buf[0], buf[1]]) as usize;
        if len < 48 || buf.len() < len {
            return Err(OfError::Truncated { what: "flow stats entry", need: len.max(48), have: buf.len() });
        }
        let b = &buf[2..len];
        let (match_, _) = Match::decode(&b[46..])?;
        Ok((
            FlowStatsEntry {
                table_id: b[0],
                duration_sec: u32::from_be_bytes(b[2..6].try_into().expect("len checked")),
                priority: u16::from_be_bytes([b[10], b[11]]),
                idle_timeout: u16::from_be_bytes([b[12], b[13]]),
                hard_timeout: u16::from_be_bytes([b[14], b[15]]),
                cookie: u64::from_be_bytes(b[22..30].try_into().expect("len checked")),
                packet_count: u64::from_be_bytes(b[30..38].try_into().expect("len checked")),
                byte_count: u64::from_be_bytes(b[38..46].try_into().expect("len checked")),
                match_,
            },
            len,
        ))
    }
}

/// `FLOW_MOD` commands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowModCommand {
    /// Add a new flow.
    Add,
    /// Modify matching flows.
    Modify,
    /// Delete matching flows.
    Delete,
}

impl FlowModCommand {
    fn to_u8(self) -> u8 {
        match self {
            FlowModCommand::Add => 0,
            FlowModCommand::Modify => 1,
            FlowModCommand::Delete => 3, // OFPFC_DELETE
        }
    }

    fn from_u8(v: u8) -> Result<Self, OfError> {
        match v {
            0 => Ok(FlowModCommand::Add),
            1 | 2 => Ok(FlowModCommand::Modify),
            3 | 4 => Ok(FlowModCommand::Delete),
            other => Err(OfError::BadType(other)),
        }
    }
}

/// Flag bit: send a `FLOW_REMOVED` when this flow expires.
pub const OFPFF_SEND_FLOW_REM: u16 = 1;

/// A decoded OpenFlow message (without the xid, which travels separately).
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Version negotiation.
    Hello,
    /// Liveness probe.
    EchoRequest(Vec<u8>),
    /// Liveness response (echoes the request payload).
    EchoReply(Vec<u8>),
    /// Ask the switch for its identity.
    FeaturesRequest,
    /// Switch identity.
    FeaturesReply {
        /// Datapath id (unique switch identity).
        datapath_id: u64,
        /// Packet buffer slots available for packet-in buffering.
        n_buffers: u32,
        /// Number of flow tables.
        n_tables: u8,
    },
    /// Packet sent to the controller.
    PacketIn {
        /// Switch buffer slot holding the full packet, or
        /// [`crate::OFP_NO_BUFFER`].
        buffer_id: u32,
        /// Full length of the original packet.
        total_len: u16,
        /// Why it was sent.
        reason: PacketInReason,
        /// Table that produced it.
        table_id: u8,
        /// Cookie of the flow that produced it (0 for table-miss).
        cookie: u64,
        /// Packet metadata (carries `IN_PORT`).
        match_: Match,
        /// The (possibly truncated) packet bytes.
        data: Vec<u8>,
    },
    /// Packet injected by the controller.
    PacketOut {
        /// Buffer to release, or [`crate::OFP_NO_BUFFER`] when `data` is
        /// carried inline.
        buffer_id: u32,
        /// Ingress port context.
        in_port: u32,
        /// Actions to apply.
        actions: Vec<Action>,
        /// Inline packet bytes (empty when `buffer_id` is used).
        data: Vec<u8>,
    },
    /// Flow table modification.
    FlowMod {
        /// Opaque controller cookie.
        cookie: u64,
        /// Target table.
        table_id: u8,
        /// Add/modify/delete.
        command: FlowModCommand,
        /// Idle timeout in seconds (0 = none).
        idle_timeout: u16,
        /// Hard timeout in seconds (0 = none).
        hard_timeout: u16,
        /// Priority (higher wins).
        priority: u16,
        /// Buffered packet to run through the new flow, or
        /// [`crate::OFP_NO_BUFFER`].
        buffer_id: u32,
        /// Flags ([`OFPFF_SEND_FLOW_REM`]).
        flags: u16,
        /// The match.
        match_: Match,
        /// The instructions.
        instructions: Vec<Instruction>,
    },
    /// Notification that a flow expired or was deleted.
    FlowRemoved {
        /// Cookie of the removed flow.
        cookie: u64,
        /// Its priority.
        priority: u16,
        /// Why it was removed.
        reason: RemovedReason,
        /// Table it lived in.
        table_id: u8,
        /// Lifetime seconds.
        duration_sec: u32,
        /// Lifetime nanoseconds remainder.
        duration_nsec: u32,
        /// Its idle timeout.
        idle_timeout: u16,
        /// Its hard timeout.
        hard_timeout: u16,
        /// Packets it matched.
        packet_count: u64,
        /// Bytes it matched.
        byte_count: u64,
        /// The match.
        match_: Match,
    },
    /// Ordering fence request.
    BarrierRequest,
    /// Ordering fence acknowledgement.
    BarrierReply,
    /// An error notification (the offending message's first bytes attached).
    Error {
        /// Error category.
        error_type: ErrorType,
        /// Category-specific code.
        code: u16,
        /// Up to 64 bytes of the offending message.
        data: Vec<u8>,
    },
    /// Flow statistics request (multipart, `OFPMP_FLOW`); the match filters
    /// which flows are reported (wildcard = all).
    FlowStatsRequest {
        /// Table to query (0xff = all).
        table_id: u8,
        /// Filter match.
        match_: Match,
    },
    /// Flow statistics reply.
    FlowStatsReply {
        /// The matching flows' statistics.
        flows: Vec<FlowStatsEntry>,
    },
}

impl Message {
    fn type_byte(&self) -> u8 {
        match self {
            Message::Hello => T_HELLO,
            Message::EchoRequest(_) => T_ECHO_REQUEST,
            Message::EchoReply(_) => T_ECHO_REPLY,
            Message::FeaturesRequest => T_FEATURES_REQUEST,
            Message::FeaturesReply { .. } => T_FEATURES_REPLY,
            Message::PacketIn { .. } => T_PACKET_IN,
            Message::FlowRemoved { .. } => T_FLOW_REMOVED,
            Message::PacketOut { .. } => T_PACKET_OUT,
            Message::FlowMod { .. } => T_FLOW_MOD,
            Message::BarrierRequest => T_BARRIER_REQUEST,
            Message::BarrierReply => T_BARRIER_REPLY,
            Message::Error { .. } => T_ERROR,
            Message::FlowStatsRequest { .. } => T_MULTIPART_REQUEST,
            Message::FlowStatsReply { .. } => T_MULTIPART_REPLY,
        }
    }

    /// Encodes the message with the given transaction id.
    pub fn encode(&self, xid: u32) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            Message::Hello
            | Message::FeaturesRequest
            | Message::BarrierRequest
            | Message::BarrierReply => {}
            Message::EchoRequest(data) | Message::EchoReply(data) => {
                body.extend_from_slice(data);
            }
            Message::FeaturesReply {
                datapath_id,
                n_buffers,
                n_tables,
            } => {
                body.extend_from_slice(&datapath_id.to_be_bytes());
                body.extend_from_slice(&n_buffers.to_be_bytes());
                body.push(*n_tables);
                body.push(0); // auxiliary_id
                body.extend_from_slice(&[0u8; 2]); // pad
                body.extend_from_slice(&0u32.to_be_bytes()); // capabilities
                body.extend_from_slice(&0u32.to_be_bytes()); // reserved
            }
            Message::PacketIn {
                buffer_id,
                total_len,
                reason,
                table_id,
                cookie,
                match_,
                data,
            } => {
                body.extend_from_slice(&buffer_id.to_be_bytes());
                body.extend_from_slice(&total_len.to_be_bytes());
                body.push(reason.to_u8());
                body.push(*table_id);
                body.extend_from_slice(&cookie.to_be_bytes());
                match_.encode(&mut body);
                body.extend_from_slice(&[0u8; 2]); // pad before data
                body.extend_from_slice(data);
            }
            Message::PacketOut {
                buffer_id,
                in_port,
                actions,
                data,
            } => {
                let mut abuf = Vec::new();
                Action::encode_list(actions, &mut abuf);
                body.extend_from_slice(&buffer_id.to_be_bytes());
                body.extend_from_slice(&in_port.to_be_bytes());
                body.extend_from_slice(&(abuf.len() as u16).to_be_bytes());
                body.extend_from_slice(&[0u8; 6]); // pad
                body.extend_from_slice(&abuf);
                body.extend_from_slice(data);
            }
            Message::FlowMod {
                cookie,
                table_id,
                command,
                idle_timeout,
                hard_timeout,
                priority,
                buffer_id,
                flags,
                match_,
                instructions,
            } => {
                body.extend_from_slice(&cookie.to_be_bytes());
                body.extend_from_slice(&u64::MAX.to_be_bytes()); // cookie_mask
                body.push(*table_id);
                body.push(command.to_u8());
                body.extend_from_slice(&idle_timeout.to_be_bytes());
                body.extend_from_slice(&hard_timeout.to_be_bytes());
                body.extend_from_slice(&priority.to_be_bytes());
                body.extend_from_slice(&buffer_id.to_be_bytes());
                body.extend_from_slice(&0xffff_ffffu32.to_be_bytes()); // out_port ANY
                body.extend_from_slice(&0xffff_ffffu32.to_be_bytes()); // out_group ANY
                body.extend_from_slice(&flags.to_be_bytes());
                body.extend_from_slice(&[0u8; 2]); // pad
                match_.encode(&mut body);
                Instruction::encode_list(instructions, &mut body);
            }
            Message::Error { error_type, code, data } => {
                body.extend_from_slice(&error_type.to_u16().to_be_bytes());
                body.extend_from_slice(&code.to_be_bytes());
                body.extend_from_slice(&data[..data.len().min(64)]);
            }
            Message::FlowStatsRequest { table_id, match_ } => {
                body.extend_from_slice(&OFPMP_FLOW.to_be_bytes());
                body.extend_from_slice(&[0u8; 6]); // flags + pad
                body.push(*table_id);
                body.extend_from_slice(&[0u8; 3]); // pad
                body.extend_from_slice(&0xffff_ffffu32.to_be_bytes()); // out_port ANY
                body.extend_from_slice(&0xffff_ffffu32.to_be_bytes()); // out_group ANY
                body.extend_from_slice(&[0u8; 4]); // pad
                body.extend_from_slice(&0u64.to_be_bytes()); // cookie
                body.extend_from_slice(&0u64.to_be_bytes()); // cookie mask
                match_.encode(&mut body);
            }
            Message::FlowStatsReply { flows } => {
                body.extend_from_slice(&OFPMP_FLOW.to_be_bytes());
                body.extend_from_slice(&[0u8; 6]); // flags + pad
                for f in flows {
                    f.encode(&mut body);
                }
            }
            Message::FlowRemoved {
                cookie,
                priority,
                reason,
                table_id,
                duration_sec,
                duration_nsec,
                idle_timeout,
                hard_timeout,
                packet_count,
                byte_count,
                match_,
            } => {
                body.extend_from_slice(&cookie.to_be_bytes());
                body.extend_from_slice(&priority.to_be_bytes());
                body.push(reason.to_u8());
                body.push(*table_id);
                body.extend_from_slice(&duration_sec.to_be_bytes());
                body.extend_from_slice(&duration_nsec.to_be_bytes());
                body.extend_from_slice(&idle_timeout.to_be_bytes());
                body.extend_from_slice(&hard_timeout.to_be_bytes());
                body.extend_from_slice(&packet_count.to_be_bytes());
                body.extend_from_slice(&byte_count.to_be_bytes());
                match_.encode(&mut body);
            }
        }
        let mut out = Vec::with_capacity(8 + body.len());
        out.push(OFP_VERSION);
        out.push(self.type_byte());
        out.extend_from_slice(&((8 + body.len()) as u16).to_be_bytes());
        out.extend_from_slice(&xid.to_be_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes one message from the front of `buf`, returning `(xid, message,
    /// bytes consumed)`. Extra bytes after the declared length are left
    /// untouched (the control channel is a byte stream).
    pub fn decode(buf: &[u8]) -> Result<(u32, Message, usize), OfError> {
        if buf.len() < 8 {
            return Err(OfError::Truncated {
                what: "message header",
                need: 8,
                have: buf.len(),
            });
        }
        if buf[0] != OFP_VERSION {
            return Err(OfError::BadVersion(buf[0]));
        }
        let mtype = buf[1];
        let length = u16::from_be_bytes([buf[2], buf[3]]) as usize;
        if length < 8 {
            return Err(OfError::BadLength {
                declared: length,
                actual: buf.len(),
            });
        }
        if buf.len() < length {
            return Err(OfError::Truncated {
                what: "message body",
                need: length,
                have: buf.len(),
            });
        }
        let xid = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]);
        let b = &buf[8..length];
        let need = |want: usize| -> Result<(), OfError> {
            if b.len() < want {
                Err(OfError::Truncated {
                    what: "message fields",
                    need: want,
                    have: b.len(),
                })
            } else {
                Ok(())
            }
        };
        let msg = match mtype {
            T_HELLO => Message::Hello,
            T_ECHO_REQUEST => Message::EchoRequest(b.to_vec()),
            T_ECHO_REPLY => Message::EchoReply(b.to_vec()),
            T_FEATURES_REQUEST => Message::FeaturesRequest,
            T_FEATURES_REPLY => {
                need(24)?;
                Message::FeaturesReply {
                    datapath_id: u64::from_be_bytes(b[0..8].try_into().expect("len checked")),
                    n_buffers: u32::from_be_bytes(b[8..12].try_into().expect("len checked")),
                    n_tables: b[12],
                }
            }
            T_PACKET_IN => {
                need(16)?;
                let buffer_id = u32::from_be_bytes(b[0..4].try_into().expect("len checked"));
                let total_len = u16::from_be_bytes([b[4], b[5]]);
                let reason = PacketInReason::from_u8(b[6])?;
                let table_id = b[7];
                let cookie = u64::from_be_bytes(b[8..16].try_into().expect("len checked"));
                let (match_, used) = Match::decode(&b[16..])?;
                let rest = &b[16 + used..];
                if rest.len() < 2 {
                    return Err(OfError::Truncated {
                        what: "packet-in pad",
                        need: 2,
                        have: rest.len(),
                    });
                }
                Message::PacketIn {
                    buffer_id,
                    total_len,
                    reason,
                    table_id,
                    cookie,
                    match_,
                    data: rest[2..].to_vec(),
                }
            }
            T_PACKET_OUT => {
                need(16)?;
                let buffer_id = u32::from_be_bytes(b[0..4].try_into().expect("len checked"));
                let in_port = u32::from_be_bytes(b[4..8].try_into().expect("len checked"));
                let actions_len = u16::from_be_bytes([b[8], b[9]]) as usize;
                need(16 + actions_len)?;
                let actions = Action::decode_list(&b[16..16 + actions_len], actions_len)?;
                Message::PacketOut {
                    buffer_id,
                    in_port,
                    actions,
                    data: b[16 + actions_len..].to_vec(),
                }
            }
            T_FLOW_MOD => {
                need(40)?;
                let cookie = u64::from_be_bytes(b[0..8].try_into().expect("len checked"));
                let table_id = b[16];
                let command = FlowModCommand::from_u8(b[17])?;
                let idle_timeout = u16::from_be_bytes([b[18], b[19]]);
                let hard_timeout = u16::from_be_bytes([b[20], b[21]]);
                let priority = u16::from_be_bytes([b[22], b[23]]);
                let buffer_id = u32::from_be_bytes(b[24..28].try_into().expect("len checked"));
                let flags = u16::from_be_bytes([b[36], b[37]]);
                let (match_, used) = Match::decode(&b[40..])?;
                let instructions = Instruction::decode_all(&b[40 + used..])?;
                Message::FlowMod {
                    cookie,
                    table_id,
                    command,
                    idle_timeout,
                    hard_timeout,
                    priority,
                    buffer_id,
                    flags,
                    match_,
                    instructions,
                }
            }
            T_FLOW_REMOVED => {
                need(40)?;
                let cookie = u64::from_be_bytes(b[0..8].try_into().expect("len checked"));
                let priority = u16::from_be_bytes([b[8], b[9]]);
                let reason = RemovedReason::from_u8(b[10])?;
                let table_id = b[11];
                let duration_sec = u32::from_be_bytes(b[12..16].try_into().expect("len checked"));
                let duration_nsec = u32::from_be_bytes(b[16..20].try_into().expect("len checked"));
                let idle_timeout = u16::from_be_bytes([b[20], b[21]]);
                let hard_timeout = u16::from_be_bytes([b[22], b[23]]);
                let packet_count = u64::from_be_bytes(b[24..32].try_into().expect("len checked"));
                let byte_count = u64::from_be_bytes(b[32..40].try_into().expect("len checked"));
                let (match_, _) = Match::decode(&b[40..])?;
                Message::FlowRemoved {
                    cookie,
                    priority,
                    reason,
                    table_id,
                    duration_sec,
                    duration_nsec,
                    idle_timeout,
                    hard_timeout,
                    packet_count,
                    byte_count,
                    match_,
                }
            }
            T_BARRIER_REQUEST => Message::BarrierRequest,
            T_BARRIER_REPLY => Message::BarrierReply,
            T_ERROR => {
                need(4)?;
                Message::Error {
                    error_type: ErrorType::from_u16(u16::from_be_bytes([b[0], b[1]]))?,
                    code: u16::from_be_bytes([b[2], b[3]]),
                    data: b[4..].to_vec(),
                }
            }
            T_MULTIPART_REQUEST => {
                need(40)?;
                let mp_type = u16::from_be_bytes([b[0], b[1]]);
                if mp_type != OFPMP_FLOW {
                    return Err(OfError::BadType(mp_type as u8));
                }
                let table_id = b[8];
                let (match_, _) = Match::decode(&b[40..])?;
                Message::FlowStatsRequest { table_id, match_ }
            }
            T_MULTIPART_REPLY => {
                need(8)?;
                let mp_type = u16::from_be_bytes([b[0], b[1]]);
                if mp_type != OFPMP_FLOW {
                    return Err(OfError::BadType(mp_type as u8));
                }
                let mut flows = Vec::new();
                let mut off = 8;
                while off < b.len() {
                    let (f, used) = FlowStatsEntry::decode(&b[off..])?;
                    flows.push(f);
                    off += used;
                }
                Message::FlowStatsReply { flows }
            }
            other => return Err(OfError::BadType(other)),
        };
        Ok((xid, msg, length))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oxm::OxmField;

    fn roundtrip(msg: Message) {
        let xid = 0xdeadbeef;
        let bytes = msg.encode(xid);
        // Declared length equals actual.
        let declared = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        assert_eq!(declared, bytes.len());
        let (x, back, used) = Message::decode(&bytes).unwrap();
        assert_eq!(x, xid);
        assert_eq!(used, bytes.len());
        assert_eq!(back, msg);
    }

    #[test]
    fn simple_messages_roundtrip() {
        roundtrip(Message::Hello);
        roundtrip(Message::FeaturesRequest);
        roundtrip(Message::BarrierRequest);
        roundtrip(Message::BarrierReply);
        roundtrip(Message::EchoRequest(b"ping".to_vec()));
        roundtrip(Message::EchoReply(vec![]));
    }

    #[test]
    fn features_reply_roundtrip() {
        roundtrip(Message::FeaturesReply {
            datapath_id: 0x0102030405060708,
            n_buffers: 256,
            n_tables: 4,
        });
    }

    #[test]
    fn packet_in_roundtrip() {
        roundtrip(Message::PacketIn {
            buffer_id: 42,
            total_len: 74,
            reason: PacketInReason::NoMatch,
            table_id: 0,
            cookie: 0,
            match_: Match::any().with(OxmField::InPort(3)),
            data: vec![0xaa; 74],
        });
    }

    #[test]
    fn packet_out_roundtrip() {
        roundtrip(Message::PacketOut {
            buffer_id: crate::OFP_NO_BUFFER,
            in_port: 3,
            actions: vec![
                Action::SetField(OxmField::Ipv4Dst([10, 0, 0, 5])),
                Action::SetField(OxmField::TcpDst(31080)),
                Action::output(7),
            ],
            data: b"raw frame bytes".to_vec(),
        });
    }

    #[test]
    fn flow_mod_roundtrip() {
        roundtrip(Message::FlowMod {
            cookie: 0xc00c1e,
            table_id: 0,
            command: FlowModCommand::Add,
            idle_timeout: 10,
            hard_timeout: 0,
            priority: 100,
            buffer_id: crate::OFP_NO_BUFFER,
            flags: OFPFF_SEND_FLOW_REM,
            match_: Match::connection([192, 168, 1, 20], 50000, [203, 0, 113, 10], 80),
            instructions: vec![Instruction::ApplyActions(vec![
                Action::SetField(OxmField::EthDst([2, 0, 0, 0, 0, 9])),
                Action::SetField(OxmField::Ipv4Dst([10, 0, 0, 5])),
                Action::SetField(OxmField::TcpDst(31080)),
                Action::output(7),
            ])],
        });
    }

    #[test]
    fn flow_removed_roundtrip() {
        roundtrip(Message::FlowRemoved {
            cookie: 7,
            priority: 100,
            reason: RemovedReason::IdleTimeout,
            table_id: 0,
            duration_sec: 12,
            duration_nsec: 345,
            idle_timeout: 10,
            hard_timeout: 0,
            packet_count: 55,
            byte_count: 12345,
            match_: Match::service([203, 0, 113, 10], 80),
        });
    }

    #[test]
    fn error_roundtrip() {
        roundtrip(Message::Error {
            error_type: ErrorType::FlowModFailed,
            code: 3,
            data: vec![0xde, 0xad, 0xbe, 0xef],
        });
        roundtrip(Message::Error {
            error_type: ErrorType::BadRequest,
            code: 0,
            data: vec![],
        });
    }

    #[test]
    fn flow_stats_roundtrip() {
        roundtrip(Message::FlowStatsRequest {
            table_id: 0xff,
            match_: Match::any(),
        });
        roundtrip(Message::FlowStatsRequest {
            table_id: 0,
            match_: Match::service([203, 0, 113, 10], 80),
        });
        roundtrip(Message::FlowStatsReply { flows: vec![] });
        roundtrip(Message::FlowStatsReply {
            flows: vec![
                FlowStatsEntry {
                    table_id: 0,
                    duration_sec: 12,
                    priority: 100,
                    idle_timeout: 10,
                    hard_timeout: 0,
                    cookie: 7,
                    packet_count: 55,
                    byte_count: 12345,
                    match_: Match::connection([192, 168, 1, 20], 50000, [203, 0, 113, 10], 80),
                },
                FlowStatsEntry {
                    table_id: 0,
                    duration_sec: 1,
                    priority: 0,
                    idle_timeout: 0,
                    hard_timeout: 0,
                    cookie: 0,
                    packet_count: 0,
                    byte_count: 0,
                    match_: Match::any(),
                },
            ],
        });
    }

    #[test]
    fn stream_decoding_leaves_tail() {
        let a = Message::Hello.encode(1);
        let b = Message::BarrierRequest.encode(2);
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        let (x1, m1, used1) = Message::decode(&stream).unwrap();
        assert_eq!((x1, m1), (1, Message::Hello));
        let (x2, m2, used2) = Message::decode(&stream[used1..]).unwrap();
        assert_eq!((x2, m2), (2, Message::BarrierRequest));
        assert_eq!(used1 + used2, stream.len());
    }

    #[test]
    fn rejects_bad_version_and_type() {
        let mut bytes = Message::Hello.encode(1);
        bytes[0] = 0x01;
        assert_eq!(Message::decode(&bytes), Err(OfError::BadVersion(0x01)));
        let mut bytes = Message::Hello.encode(1);
        bytes[1] = 99;
        assert_eq!(Message::decode(&bytes), Err(OfError::BadType(99)));
    }

    #[test]
    fn rejects_truncation_at_every_boundary() {
        let bytes = Message::FlowMod {
            cookie: 1,
            table_id: 0,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 1,
            buffer_id: crate::OFP_NO_BUFFER,
            flags: 0,
            match_: Match::service([1, 2, 3, 4], 80),
            instructions: vec![Instruction::ApplyActions(vec![Action::output(1)])],
        }
        .encode(9);
        for cut in [0, 4, 8, 20, 47, bytes.len() - 1] {
            assert!(Message::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn packet_in_preserves_frame_bytes_exactly() {
        let frame: Vec<u8> = (0..=255u8).collect();
        let msg = Message::PacketIn {
            buffer_id: crate::OFP_NO_BUFFER,
            total_len: frame.len() as u16,
            reason: PacketInReason::NoMatch,
            table_id: 0,
            cookie: 0,
            match_: Match::any().with(OxmField::InPort(1)),
            data: frame.clone(),
        };
        let bytes = msg.encode(5);
        let (_, back, _) = Message::decode(&bytes).unwrap();
        match back {
            Message::PacketIn { data, .. } => assert_eq!(data, frame),
            other => panic!("wrong message {other:?}"),
        }
    }

    #[test]
    fn timeout_secs_clamps_to_expressible_nonzero_seconds() {
        // Zero is the wire encoding for "no timeout" and must survive.
        assert_eq!(timeout_secs(Duration::ZERO), 0);
        // Sub-second timeouts round *up* to 1 s: flooring them to 0 would
        // silently install immortal flows.
        assert_eq!(timeout_secs(Duration::from_millis(500)), 1);
        assert_eq!(timeout_secs(Duration::from_nanos(1)), 1);
        // Whole seconds pass through unchanged.
        assert_eq!(timeout_secs(Duration::from_secs(10)), 10);
        assert_eq!(timeout_secs(Duration::from_secs(65_535)), u16::MAX);
        // A 20-hour timeout saturates instead of wrapping (72 000 s would
        // truncate to 6 464 s as a plain cast).
        assert_eq!(timeout_secs(Duration::from_secs(20 * 3600)), u16::MAX);
    }
}
