//! `openflow` — an OpenFlow protocol subset implemented from scratch.
//!
//! The transparent-access approach of the paper rests on OpenFlow's packet
//! filtering and rewriting: the ingress switch matches packets destined for a
//! *registered service address* (IPv4 dst + TCP dst port), rewrites them
//! toward the chosen edge service instance, and rewrites the reverse path so
//! that, to the client, every response appears to come from the cloud.
//!
//! This crate provides:
//!
//! * [`oxm`] — OXM match fields (`IN_PORT`, `ETH_SRC/DST`, `ETH_TYPE`,
//!   `IP_PROTO`, `IPV4_SRC/DST`, `TCP_SRC/DST`) with byte-exact TLV
//!   encoding, plus the [`oxm::Match`] set and its packet-matching semantics,
//! * [`actions`] — `OUTPUT` and `SET_FIELD` actions and the
//!   `APPLY_ACTIONS` instruction,
//! * [`messages`] — the control-channel messages the controller uses
//!   (`HELLO`, `ECHO`, `FEATURES`, `PACKET_IN`, `PACKET_OUT`, `FLOW_MOD`,
//!   `FLOW_REMOVED`, `BARRIER`) with binary encode/decode,
//! * [`table`] — flow-table semantics: priority lookup, counters, and
//!   idle/hard timeout expiry (the mechanism behind the controller's
//!   `FlowMemory` and automatic scale-down). Classification is indexed
//!   (tuple-space hashing over exact-match shapes) and expiry runs on a
//!   timer wheel, so per-packet and per-sweep cost is independent of table
//!   size,
//! * [`naive`] — the seed's linear-scan table, kept as the semantic
//!   reference, and [`diff`] — a differential harness that replays random
//!   operation sequences against both tables and asserts identical
//!   observable behavior.
//!
//! The wire format follows OpenFlow 1.3; the message subset used here is
//! layout-identical in 1.5 (which the paper cites). No I/O happens in this
//! crate — byte slices in, byte vectors out.
//!
//! ```
//! use openflow::{Match, Message};
//!
//! // The transparent-access service match: TCP to a registered ip:port.
//! let m = Match::service([203, 0, 113, 10], 80);
//! let msg = Message::FlowStatsRequest { table_id: 0xff, match_: m };
//! let bytes = msg.encode(42);
//! let (xid, decoded, used) = Message::decode(&bytes).unwrap();
//! assert_eq!((xid, used), (42, bytes.len()));
//! assert_eq!(decoded, msg);
//! ```

#![warn(missing_docs)]

pub mod actions;
pub mod diff;
pub mod messages;
pub mod naive;
pub mod oxm;
pub mod table;

pub use actions::{Action, Instruction};
pub use messages::{timeout_secs, FlowModCommand, Message, PacketInReason, RemovedReason};
pub use naive::NaiveFlowTable;
pub use oxm::{Match, MatchView};
pub use table::{FlowEntry, FlowId, FlowTable};

/// Wire protocol version byte (OpenFlow 1.3).
pub const OFP_VERSION: u8 = 0x04;

/// Reserved port: send to controller.
pub const OFPP_CONTROLLER: u32 = 0xffff_fffd;
/// Reserved port: flood.
pub const OFPP_FLOOD: u32 = 0xffff_fffb;
/// Reserved port: packet-in "no buffer" marker.
pub const OFP_NO_BUFFER: u32 = 0xffff_ffff;

/// Errors from decoding OpenFlow bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OfError {
    /// Buffer ended early.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Bytes needed.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// Unsupported protocol version byte.
    BadVersion(u8),
    /// Unknown or unsupported message type byte.
    BadType(u8),
    /// Malformed or unsupported OXM TLV.
    BadOxm(String),
    /// Malformed action or instruction.
    BadAction(String),
    /// Header length field disagrees with the content.
    BadLength {
        /// Length claimed by the header.
        declared: usize,
        /// Actual length available/consumed.
        actual: usize,
    },
}

impl std::fmt::Display for OfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OfError::Truncated { what, need, have } => {
                write!(f, "truncated {what}: need {need}, have {have}")
            }
            OfError::BadVersion(v) => write!(f, "unsupported OpenFlow version {v:#04x}"),
            OfError::BadType(t) => write!(f, "unsupported message type {t}"),
            OfError::BadOxm(m) => write!(f, "bad OXM: {m}"),
            OfError::BadAction(m) => write!(f, "bad action: {m}"),
            OfError::BadLength { declared, actual } => {
                write!(f, "length mismatch: declared {declared}, actual {actual}")
            }
        }
    }
}

impl std::error::Error for OfError {}
