//! OXM (OpenFlow Extensible Match) fields and match sets.
//!
//! Only the fields the transparent-edge data plane needs are implemented —
//! exactly the set the paper's controller matches and rewrites on: ingress
//! port, Ethernet addresses/type, IP protocol, IPv4 addresses and TCP ports.

use crate::OfError;

/// The ONF "openflow basic" OXM class.
pub const OXM_CLASS_OPENFLOW_BASIC: u16 = 0x8000;

// OFPXMT_OFB_* field codes.
const F_IN_PORT: u8 = 0;
const F_ETH_DST: u8 = 3;
const F_ETH_SRC: u8 = 4;
const F_ETH_TYPE: u8 = 5;
const F_IP_PROTO: u8 = 10;
const F_IPV4_SRC: u8 = 11;
const F_IPV4_DST: u8 = 12;
const F_TCP_SRC: u8 = 13;
const F_TCP_DST: u8 = 14;

/// One concrete match field (no masks — the controller installs exact flows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OxmField {
    /// Ingress port.
    InPort(u32),
    /// Ethernet destination.
    EthDst([u8; 6]),
    /// Ethernet source.
    EthSrc([u8; 6]),
    /// EtherType.
    EthType(u16),
    /// IP protocol number.
    IpProto(u8),
    /// IPv4 source address.
    Ipv4Src([u8; 4]),
    /// IPv4 destination address.
    Ipv4Dst([u8; 4]),
    /// TCP source port.
    TcpSrc(u16),
    /// TCP destination port.
    TcpDst(u16),
}

impl OxmField {
    fn code(&self) -> u8 {
        match self {
            OxmField::InPort(_) => F_IN_PORT,
            OxmField::EthDst(_) => F_ETH_DST,
            OxmField::EthSrc(_) => F_ETH_SRC,
            OxmField::EthType(_) => F_ETH_TYPE,
            OxmField::IpProto(_) => F_IP_PROTO,
            OxmField::Ipv4Src(_) => F_IPV4_SRC,
            OxmField::Ipv4Dst(_) => F_IPV4_DST,
            OxmField::TcpSrc(_) => F_TCP_SRC,
            OxmField::TcpDst(_) => F_TCP_DST,
        }
    }

    fn payload_len(&self) -> usize {
        match self {
            OxmField::InPort(_) => 4,
            OxmField::EthDst(_) | OxmField::EthSrc(_) => 6,
            OxmField::EthType(_) | OxmField::TcpSrc(_) | OxmField::TcpDst(_) => 2,
            OxmField::IpProto(_) => 1,
            OxmField::Ipv4Src(_) | OxmField::Ipv4Dst(_) => 4,
        }
    }

    /// Encodes the TLV: class(2) | field<<1|hasmask(1) | length(1) | value.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&OXM_CLASS_OPENFLOW_BASIC.to_be_bytes());
        out.push(self.code() << 1); // hasmask = 0
        out.push(self.payload_len() as u8);
        match self {
            OxmField::InPort(p) => out.extend_from_slice(&p.to_be_bytes()),
            OxmField::EthDst(m) | OxmField::EthSrc(m) => out.extend_from_slice(m),
            OxmField::EthType(v) | OxmField::TcpSrc(v) | OxmField::TcpDst(v) => {
                out.extend_from_slice(&v.to_be_bytes())
            }
            OxmField::IpProto(v) => out.push(*v),
            OxmField::Ipv4Src(a) | OxmField::Ipv4Dst(a) => out.extend_from_slice(a),
        }
    }

    /// Decodes one TLV, returning the field and bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(OxmField, usize), OfError> {
        if buf.len() < 4 {
            return Err(OfError::Truncated {
                what: "oxm header",
                need: 4,
                have: buf.len(),
            });
        }
        let class = u16::from_be_bytes([buf[0], buf[1]]);
        if class != OXM_CLASS_OPENFLOW_BASIC {
            return Err(OfError::BadOxm(format!("unsupported class {class:#06x}")));
        }
        let hasmask = buf[2] & 1 != 0;
        if hasmask {
            return Err(OfError::BadOxm("masked fields unsupported".into()));
        }
        let code = buf[2] >> 1;
        let len = buf[3] as usize;
        if buf.len() < 4 + len {
            return Err(OfError::Truncated {
                what: "oxm payload",
                need: 4 + len,
                have: buf.len(),
            });
        }
        let v = &buf[4..4 + len];
        let expect = |want: usize| -> Result<(), OfError> {
            if len != want {
                Err(OfError::BadOxm(format!(
                    "field {code}: expected len {want}, got {len}"
                )))
            } else {
                Ok(())
            }
        };
        let field = match code {
            F_IN_PORT => {
                expect(4)?;
                OxmField::InPort(u32::from_be_bytes([v[0], v[1], v[2], v[3]]))
            }
            F_ETH_DST => {
                expect(6)?;
                OxmField::EthDst([v[0], v[1], v[2], v[3], v[4], v[5]])
            }
            F_ETH_SRC => {
                expect(6)?;
                OxmField::EthSrc([v[0], v[1], v[2], v[3], v[4], v[5]])
            }
            F_ETH_TYPE => {
                expect(2)?;
                OxmField::EthType(u16::from_be_bytes([v[0], v[1]]))
            }
            F_IP_PROTO => {
                expect(1)?;
                OxmField::IpProto(v[0])
            }
            F_IPV4_SRC => {
                expect(4)?;
                OxmField::Ipv4Src([v[0], v[1], v[2], v[3]])
            }
            F_IPV4_DST => {
                expect(4)?;
                OxmField::Ipv4Dst([v[0], v[1], v[2], v[3]])
            }
            F_TCP_SRC => {
                expect(2)?;
                OxmField::TcpSrc(u16::from_be_bytes([v[0], v[1]]))
            }
            F_TCP_DST => {
                expect(2)?;
                OxmField::TcpDst(u16::from_be_bytes([v[0], v[1]]))
            }
            other => return Err(OfError::BadOxm(format!("unsupported field {other}"))),
        };
        Ok((field, 4 + len))
    }
}

/// The fields of a concrete packet that matching runs against. Built by the
/// switch from the frame under evaluation. `Hash` lets exact-match caches
/// (the switch's microflow cache) key directly on the view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MatchView {
    /// Ingress port the packet arrived on.
    pub in_port: u32,
    /// Ethernet destination.
    pub eth_dst: [u8; 6],
    /// Ethernet source.
    pub eth_src: [u8; 6],
    /// EtherType.
    pub eth_type: u16,
    /// IP protocol number.
    pub ip_proto: u8,
    /// IPv4 source.
    pub ipv4_src: [u8; 4],
    /// IPv4 destination.
    pub ipv4_dst: [u8; 4],
    /// TCP source port.
    pub tcp_src: u16,
    /// TCP destination port.
    pub tcp_dst: u16,
}

/// An OpenFlow match: a conjunction of exact-match fields. An empty match is
/// the table-miss wildcard that matches everything.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Match {
    fields: Vec<OxmField>,
}

impl Match {
    /// The wildcard match.
    pub fn any() -> Match {
        Match::default()
    }

    /// Builder: adds one field (replacing an existing field of the same kind).
    pub fn with(mut self, field: OxmField) -> Match {
        self.fields.retain(|f| f.code() != field.code());
        self.fields.push(field);
        self
    }

    /// Convenience: match TCP/IPv4 packets toward `dst_ip:dst_port` — the
    /// registered-service match of the paper.
    pub fn service(dst_ip: [u8; 4], dst_port: u16) -> Match {
        Match::any()
            .with(OxmField::EthType(0x0800))
            .with(OxmField::IpProto(6))
            .with(OxmField::Ipv4Dst(dst_ip))
            .with(OxmField::TcpDst(dst_port))
    }

    /// Convenience: exact per-connection match (the redirect flows installed
    /// after scheduling).
    pub fn connection(
        src_ip: [u8; 4],
        src_port: u16,
        dst_ip: [u8; 4],
        dst_port: u16,
    ) -> Match {
        Match::service(dst_ip, dst_port)
            .with(OxmField::Ipv4Src(src_ip))
            .with(OxmField::TcpSrc(src_port))
    }

    /// The fields of this match.
    pub fn fields(&self) -> &[OxmField] {
        &self.fields
    }

    /// Number of fields (used as a specificity tiebreaker in tests).
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` if this is the wildcard match.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// `true` if `view` satisfies every field.
    pub fn matches(&self, view: &MatchView) -> bool {
        self.fields.iter().all(|f| match f {
            OxmField::InPort(p) => view.in_port == *p,
            OxmField::EthDst(m) => view.eth_dst == *m,
            OxmField::EthSrc(m) => view.eth_src == *m,
            OxmField::EthType(t) => view.eth_type == *t,
            OxmField::IpProto(p) => view.ip_proto == *p,
            OxmField::Ipv4Src(a) => view.ipv4_src == *a,
            OxmField::Ipv4Dst(a) => view.ipv4_dst == *a,
            OxmField::TcpSrc(p) => view.tcp_src == *p,
            OxmField::TcpDst(p) => view.tcp_dst == *p,
        })
    }

    /// Encodes as an `ofp_match`: type=1 (OXM), length, fields, zero-padded
    /// to a multiple of 8.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let mut body = Vec::new();
        for f in &self.fields {
            f.encode(&mut body);
        }
        let length = 4 + body.len(); // length covers type+length+fields, not padding
        out.extend_from_slice(&1u16.to_be_bytes());
        out.extend_from_slice(&(length as u16).to_be_bytes());
        out.extend_from_slice(&body);
        let pad = (8 - length % 8) % 8;
        out.extend(std::iter::repeat_n(0u8, pad));
    }

    /// Decodes an `ofp_match`, returning the match and total bytes consumed
    /// (including padding).
    pub fn decode(buf: &[u8]) -> Result<(Match, usize), OfError> {
        if buf.len() < 4 {
            return Err(OfError::Truncated {
                what: "match header",
                need: 4,
                have: buf.len(),
            });
        }
        let mtype = u16::from_be_bytes([buf[0], buf[1]]);
        if mtype != 1 {
            return Err(OfError::BadOxm(format!("unsupported match type {mtype}")));
        }
        let length = u16::from_be_bytes([buf[2], buf[3]]) as usize;
        if length < 4 || buf.len() < length {
            return Err(OfError::Truncated {
                what: "match body",
                need: length,
                have: buf.len(),
            });
        }
        let mut fields = Vec::new();
        let mut off = 4;
        while off < length {
            let (f, used) = OxmField::decode(&buf[off..length])?;
            fields.push(f);
            off += used;
        }
        let padded = length + (8 - length % 8) % 8;
        if buf.len() < padded {
            return Err(OfError::Truncated {
                what: "match padding",
                need: padded,
                have: buf.len(),
            });
        }
        Ok((Match { fields }, padded))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_view() -> MatchView {
        MatchView {
            in_port: 3,
            eth_dst: [2, 0, 0, 0, 0, 9],
            eth_src: [2, 0, 0, 0, 0, 1],
            eth_type: 0x0800,
            ip_proto: 6,
            ipv4_src: [192, 168, 1, 20],
            ipv4_dst: [203, 0, 113, 10],
            tcp_src: 50000,
            tcp_dst: 80,
        }
    }

    #[test]
    fn field_tlv_roundtrip() {
        let fields = [
            OxmField::InPort(42),
            OxmField::EthDst([1, 2, 3, 4, 5, 6]),
            OxmField::EthSrc([9, 8, 7, 6, 5, 4]),
            OxmField::EthType(0x0800),
            OxmField::IpProto(6),
            OxmField::Ipv4Src([10, 0, 0, 1]),
            OxmField::Ipv4Dst([10, 0, 0, 2]),
            OxmField::TcpSrc(1234),
            OxmField::TcpDst(80),
        ];
        for f in fields {
            let mut buf = Vec::new();
            f.encode(&mut buf);
            let (back, used) = OxmField::decode(&buf).unwrap();
            assert_eq!(back, f);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn match_encode_is_8_byte_aligned() {
        let m = Match::service([203, 0, 113, 10], 80);
        let mut buf = Vec::new();
        m.encode(&mut buf);
        assert_eq!(buf.len() % 8, 0);
        let (back, used) = Match::decode(&buf).unwrap();
        assert_eq!(back, m);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn wildcard_matches_everything() {
        assert!(Match::any().matches(&sample_view()));
        assert!(Match::any().is_empty());
    }

    #[test]
    fn service_match_semantics() {
        let m = Match::service([203, 0, 113, 10], 80);
        let mut v = sample_view();
        assert!(m.matches(&v));
        v.tcp_dst = 443;
        assert!(!m.matches(&v));
        v = sample_view();
        v.ipv4_dst = [203, 0, 113, 11];
        assert!(!m.matches(&v));
        v = sample_view();
        v.ip_proto = 17;
        assert!(!m.matches(&v));
    }

    #[test]
    fn connection_match_is_stricter() {
        let svc = Match::service([203, 0, 113, 10], 80);
        let conn = Match::connection([192, 168, 1, 20], 50000, [203, 0, 113, 10], 80);
        let mut v = sample_view();
        assert!(svc.matches(&v) && conn.matches(&v));
        v.tcp_src = 50001;
        assert!(svc.matches(&v));
        assert!(!conn.matches(&v));
        assert!(conn.len() > svc.len());
    }

    #[test]
    fn with_replaces_same_kind() {
        let m = Match::any()
            .with(OxmField::TcpDst(80))
            .with(OxmField::TcpDst(443));
        assert_eq!(m.len(), 1);
        assert_eq!(m.fields()[0], OxmField::TcpDst(443));
    }

    #[test]
    fn decode_rejects_masked_and_foreign_class() {
        // masked field
        let buf = [0x80, 0x00, (14 << 1) | 1, 2, 0, 80];
        assert!(matches!(OxmField::decode(&buf), Err(OfError::BadOxm(_))));
        // experimenter class
        let buf = [0xff, 0xff, 14 << 1, 2, 0, 80];
        assert!(matches!(OxmField::decode(&buf), Err(OfError::BadOxm(_))));
    }

    #[test]
    fn decode_rejects_wrong_payload_len() {
        let buf = [0x80, 0x00, F_TCP_DST << 1, 3, 0, 80, 0];
        assert!(matches!(OxmField::decode(&buf), Err(OfError::BadOxm(_))));
    }

    #[test]
    fn truncated_match_errors() {
        let m = Match::service([1, 2, 3, 4], 80);
        let mut buf = Vec::new();
        m.encode(&mut buf);
        for cut in [1, 3, 7, buf.len() - 1] {
            assert!(Match::decode(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }
}
