//! OpenFlow actions and instructions.
//!
//! The transparent redirect needs exactly two action kinds: `SET_FIELD`
//! (rewrite MAC/IP/port toward the edge instance, and the reverse rewrite on
//! the return path) and `OUTPUT` (forward out of a port / to the controller).
//! Instructions are limited to `APPLY_ACTIONS`, which is how the controller
//! installs immediate rewrites.

use crate::oxm::OxmField;
use crate::OfError;

const OFPAT_OUTPUT: u16 = 0;
const OFPAT_SET_FIELD: u16 = 25;
const OFPIT_APPLY_ACTIONS: u16 = 4;

/// An OpenFlow action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Forward the packet out of `port` (may be a reserved port such as
    /// [`crate::OFPP_CONTROLLER`]). `max_len` bytes are sent on controller
    /// output.
    Output {
        /// Egress port.
        port: u32,
        /// Bytes to include when outputting to the controller.
        max_len: u16,
    },
    /// Rewrite one header field.
    SetField(OxmField),
}

impl Action {
    /// Convenience constructor for a full-packet output.
    pub fn output(port: u32) -> Action {
        Action::Output {
            port,
            max_len: 0xffff,
        }
    }

    /// Encodes this action (8-byte aligned).
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Action::Output { port, max_len } => {
                out.extend_from_slice(&OFPAT_OUTPUT.to_be_bytes());
                out.extend_from_slice(&16u16.to_be_bytes());
                out.extend_from_slice(&port.to_be_bytes());
                out.extend_from_slice(&max_len.to_be_bytes());
                out.extend_from_slice(&[0u8; 6]);
            }
            Action::SetField(field) => {
                let mut oxm = Vec::new();
                field.encode(&mut oxm);
                let unpadded = 4 + oxm.len();
                let padded = unpadded.div_ceil(8) * 8;
                out.extend_from_slice(&OFPAT_SET_FIELD.to_be_bytes());
                out.extend_from_slice(&(padded as u16).to_be_bytes());
                out.extend_from_slice(&oxm);
                out.extend(std::iter::repeat_n(0u8, padded - unpadded));
            }
        }
    }

    /// Decodes one action, returning it and the bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Action, usize), OfError> {
        if buf.len() < 4 {
            return Err(OfError::Truncated {
                what: "action header",
                need: 4,
                have: buf.len(),
            });
        }
        let atype = u16::from_be_bytes([buf[0], buf[1]]);
        let len = u16::from_be_bytes([buf[2], buf[3]]) as usize;
        if len < 8 || !len.is_multiple_of(8) {
            return Err(OfError::BadAction(format!("bad action length {len}")));
        }
        if buf.len() < len {
            return Err(OfError::Truncated {
                what: "action body",
                need: len,
                have: buf.len(),
            });
        }
        match atype {
            OFPAT_OUTPUT => {
                if len != 16 {
                    return Err(OfError::BadAction(format!("output len {len}")));
                }
                Ok((
                    Action::Output {
                        port: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
                        max_len: u16::from_be_bytes([buf[8], buf[9]]),
                    },
                    len,
                ))
            }
            OFPAT_SET_FIELD => {
                let (field, _) = OxmField::decode(&buf[4..len])?;
                Ok((Action::SetField(field), len))
            }
            other => Err(OfError::BadAction(format!("unsupported action type {other}"))),
        }
    }

    /// Encodes a list of actions.
    pub fn encode_list(actions: &[Action], out: &mut Vec<u8>) {
        for a in actions {
            a.encode(out);
        }
    }

    /// Decodes exactly `len` bytes of actions.
    pub fn decode_list(buf: &[u8], len: usize) -> Result<Vec<Action>, OfError> {
        if buf.len() < len {
            return Err(OfError::Truncated {
                what: "action list",
                need: len,
                have: buf.len(),
            });
        }
        let mut out = Vec::new();
        let mut off = 0;
        while off < len {
            let (a, used) = Action::decode(&buf[off..len])?;
            out.push(a);
            off += used;
        }
        Ok(out)
    }
}

/// An OpenFlow instruction. Only `APPLY_ACTIONS` is supported — the
/// single-table pipeline the controller programs needs nothing else.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Instruction {
    /// Apply the action list immediately.
    ApplyActions(Vec<Action>),
}

impl Instruction {
    /// The actions carried by this instruction.
    pub fn actions(&self) -> &[Action] {
        match self {
            Instruction::ApplyActions(a) => a,
        }
    }

    /// Encodes this instruction.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Instruction::ApplyActions(actions) => {
                let mut body = Vec::new();
                Action::encode_list(actions, &mut body);
                out.extend_from_slice(&OFPIT_APPLY_ACTIONS.to_be_bytes());
                out.extend_from_slice(&((8 + body.len()) as u16).to_be_bytes());
                out.extend_from_slice(&[0u8; 4]);
                out.extend_from_slice(&body);
            }
        }
    }

    /// Decodes one instruction, returning it and the bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Instruction, usize), OfError> {
        if buf.len() < 8 {
            return Err(OfError::Truncated {
                what: "instruction header",
                need: 8,
                have: buf.len(),
            });
        }
        let itype = u16::from_be_bytes([buf[0], buf[1]]);
        let len = u16::from_be_bytes([buf[2], buf[3]]) as usize;
        if itype != OFPIT_APPLY_ACTIONS {
            return Err(OfError::BadAction(format!(
                "unsupported instruction type {itype}"
            )));
        }
        if len < 8 || buf.len() < len {
            return Err(OfError::Truncated {
                what: "instruction body",
                need: len.max(8),
                have: buf.len(),
            });
        }
        let actions = Action::decode_list(&buf[8..len], len - 8)?;
        Ok((Instruction::ApplyActions(actions), len))
    }

    /// Encodes a list of instructions.
    pub fn encode_list(instructions: &[Instruction], out: &mut Vec<u8>) {
        for i in instructions {
            i.encode(out);
        }
    }

    /// Decodes instructions until `buf` is exhausted.
    pub fn decode_all(buf: &[u8]) -> Result<Vec<Instruction>, OfError> {
        let mut out = Vec::new();
        let mut off = 0;
        while off < buf.len() {
            let (i, used) = Instruction::decode(&buf[off..])?;
            out.push(i);
            off += used;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_action_roundtrip() {
        let a = Action::output(7);
        let mut buf = Vec::new();
        a.encode(&mut buf);
        assert_eq!(buf.len(), 16);
        let (back, used) = Action::decode(&buf).unwrap();
        assert_eq!(back, a);
        assert_eq!(used, 16);
    }

    #[test]
    fn set_field_action_roundtrip_all_kinds() {
        let fields = [
            OxmField::EthDst([1, 2, 3, 4, 5, 6]),
            OxmField::EthSrc([6, 5, 4, 3, 2, 1]),
            OxmField::Ipv4Dst([10, 0, 0, 5]),
            OxmField::Ipv4Src([203, 0, 113, 10]),
            OxmField::TcpDst(31080),
            OxmField::TcpSrc(80),
        ];
        for f in fields {
            let a = Action::SetField(f);
            let mut buf = Vec::new();
            a.encode(&mut buf);
            assert_eq!(buf.len() % 8, 0, "alignment for {f:?}");
            let (back, used) = Action::decode(&buf).unwrap();
            assert_eq!(back, a);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn action_list_roundtrip() {
        let actions = vec![
            Action::SetField(OxmField::Ipv4Dst([10, 0, 0, 5])),
            Action::SetField(OxmField::TcpDst(31080)),
            Action::output(3),
        ];
        let mut buf = Vec::new();
        Action::encode_list(&actions, &mut buf);
        let back = Action::decode_list(&buf, buf.len()).unwrap();
        assert_eq!(back, actions);
    }

    #[test]
    fn instruction_roundtrip() {
        let i = Instruction::ApplyActions(vec![
            Action::SetField(OxmField::TcpDst(8080)),
            Action::output(2),
        ]);
        let mut buf = Vec::new();
        i.encode(&mut buf);
        let (back, used) = Instruction::decode(&buf).unwrap();
        assert_eq!(back, i);
        assert_eq!(used, buf.len());
        assert_eq!(back.actions().len(), 2);
    }

    #[test]
    fn empty_apply_actions_is_valid() {
        // A drop rule: APPLY_ACTIONS with no actions.
        let i = Instruction::ApplyActions(vec![]);
        let mut buf = Vec::new();
        i.encode(&mut buf);
        assert_eq!(buf.len(), 8);
        let (back, _) = Instruction::decode(&buf).unwrap();
        assert_eq!(back.actions().len(), 0);
    }

    #[test]
    fn decode_rejects_unknown_types() {
        // action type 99
        let mut buf = vec![0, 99, 0, 8, 0, 0, 0, 0];
        assert!(matches!(Action::decode(&buf), Err(OfError::BadAction(_))));
        // instruction type 1 (GOTO_TABLE, unsupported)
        buf = vec![0, 1, 0, 8, 0, 0, 0, 0];
        assert!(matches!(
            Instruction::decode(&buf),
            Err(OfError::BadAction(_))
        ));
    }

    #[test]
    fn decode_rejects_bad_lengths() {
        let buf = vec![0, 0, 0, 7, 0, 0, 0]; // len 7, not multiple of 8
        assert!(Action::decode(&buf).is_err());
        let buf = vec![0, 0, 0, 16, 0, 0]; // declares 16, has 6
        assert!(matches!(Action::decode(&buf), Err(OfError::Truncated { .. })));
    }
}
