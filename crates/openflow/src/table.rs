//! Flow-table semantics: priority lookup, counters, timeouts.
//!
//! This is the state a switch keeps per table. The same structure backs the
//! controller's *FlowMemory* (Section V of the paper): memorized flows with
//! idle timeouts whose expiry both cleans the memory and triggers automatic
//! scale-down of idle edge services.
//!
//! # Fast path
//!
//! The table is indexed for O(1) per-packet classification, replacing the
//! seed's linear scan (kept as [`crate::naive::NaiveFlowTable`] for
//! differential testing):
//!
//! * Every [`Match`] in this protocol subset is a conjunction of *exact*
//!   fields, so entries are grouped by **shape** — the set of field kinds
//!   they constrain — and hashed on the packed field values ([`ShapeKey`]).
//!   A lookup probes one hash bucket per distinct shape in the table
//!   (typically two: the per-connection redirect shape and the service
//!   shape, plus the table-miss wildcard), not one comparison per entry.
//! * Matches that a key cannot represent faithfully (duplicate field kinds,
//!   only constructible by decoding hand-crafted wire bytes) fall back to a
//!   linear `residual` list, preserving exact semantics.
//! * A [`TimerWheel`] tracks a deadline per entry that is never later than
//!   its true idle/hard expiry, so [`FlowTable::expire`] visits only entries
//!   actually due and [`FlowTable::next_expiry`] is O(1). Idle-timer
//!   refreshes are lazy: a packet hit does not touch the wheel; a sweep that
//!   reaches a refreshed entry simply reschedules it.
//!
//! Observable semantics are identical to the naive table: priority order,
//! first-added-wins among equal priorities, hard-over-idle timeout
//! precedence, order-sensitive match equality for ADD/MODIFY/DELETE, and
//! per-entry counters. `crate::diff` replays randomized operation sequences
//! against both implementations to prove it.

use crate::actions::Instruction;
use crate::messages::{RemovedReason, OFPFF_SEND_FLOW_REM};
use crate::oxm::{Match, MatchView, OxmField};
use desim::{Duration, SimTime, TimerWheel};
use std::collections::HashMap;

/// One installed flow.
#[derive(Clone, Debug)]
pub struct FlowEntry {
    /// Match condition.
    pub match_: Match,
    /// Priority; higher wins.
    pub priority: u16,
    /// Controller cookie.
    pub cookie: u64,
    /// Instructions to run on match.
    pub instructions: Vec<Instruction>,
    /// Idle timeout ([`Duration::ZERO`] = none).
    pub idle_timeout: Duration,
    /// Hard timeout ([`Duration::ZERO`] = none).
    pub hard_timeout: Duration,
    /// `FLOW_MOD` flags.
    pub flags: u16,
    /// Installation time.
    pub installed_at: SimTime,
    /// Last time a packet hit this flow.
    pub last_hit: SimTime,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
}

impl FlowEntry {
    /// `true` if this entry requested a `FLOW_REMOVED` notification.
    pub fn wants_removed_msg(&self) -> bool {
        self.flags & OFPFF_SEND_FLOW_REM != 0
    }

    /// The earliest instant this entry could time out given its current
    /// timers, or `None` if it has no timeout.
    fn next_deadline(&self) -> Option<SimTime> {
        let idle =
            (self.idle_timeout != Duration::ZERO).then(|| self.last_hit + self.idle_timeout);
        let hard =
            (self.hard_timeout != Duration::ZERO).then(|| self.installed_at + self.hard_timeout);
        match (idle, hard) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// A removal record produced by expiry or deletion.
#[derive(Clone, Debug)]
pub struct Removed {
    /// The removed entry (with final counters).
    pub entry: FlowEntry,
    /// Why it went away.
    pub reason: RemovedReason,
    /// When it was removed.
    pub at: SimTime,
}

impl Removed {
    /// Lifetime of the flow.
    pub fn duration(&self) -> Duration {
        self.at - self.entry.installed_at
    }
}

/// Stable handle of an installed flow, valid until the entry is removed.
/// Any removal bumps [`FlowTable::revision`], so a caller that caches ids
/// alongside the revision (the switch's microflow cache) never dereferences
/// a dangling one.
pub type FlowId = u64;

// Shape-mask bits, one per OXM field kind.
const B_IN_PORT: u16 = 1 << 0;
const B_ETH_DST: u16 = 1 << 1;
const B_ETH_SRC: u16 = 1 << 2;
const B_ETH_TYPE: u16 = 1 << 3;
const B_IP_PROTO: u16 = 1 << 4;
const B_IPV4_SRC: u16 = 1 << 5;
const B_IPV4_DST: u16 = 1 << 6;
const B_TCP_SRC: u16 = 1 << 7;
const B_TCP_DST: u16 = 1 << 8;

// Fixed byte offsets of each field in the packed key.
const O_IN_PORT: usize = 0; // 4 bytes
const O_ETH_DST: usize = 4; // 6
const O_ETH_SRC: usize = 10; // 6
const O_ETH_TYPE: usize = 16; // 2
const O_IP_PROTO: usize = 18; // 1
const O_IPV4_SRC: usize = 19; // 4
const O_IPV4_DST: usize = 23; // 4
const O_TCP_SRC: usize = 27; // 2
const O_TCP_DST: usize = 29; // 2
const KEY_BYTES: usize = 31;

/// Hash key of the exact-match index: which field kinds a match constrains
/// (`mask`) and their packed values (absent fields zeroed).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct ShapeKey {
    mask: u16,
    bytes: [u8; KEY_BYTES],
}

impl ShapeKey {
    fn set(&mut self, field: &OxmField) {
        match field {
            OxmField::InPort(p) => {
                self.mask |= B_IN_PORT;
                self.bytes[O_IN_PORT..O_IN_PORT + 4].copy_from_slice(&p.to_be_bytes());
            }
            OxmField::EthDst(m) => {
                self.mask |= B_ETH_DST;
                self.bytes[O_ETH_DST..O_ETH_DST + 6].copy_from_slice(m);
            }
            OxmField::EthSrc(m) => {
                self.mask |= B_ETH_SRC;
                self.bytes[O_ETH_SRC..O_ETH_SRC + 6].copy_from_slice(m);
            }
            OxmField::EthType(v) => {
                self.mask |= B_ETH_TYPE;
                self.bytes[O_ETH_TYPE..O_ETH_TYPE + 2].copy_from_slice(&v.to_be_bytes());
            }
            OxmField::IpProto(v) => {
                self.mask |= B_IP_PROTO;
                self.bytes[O_IP_PROTO] = *v;
            }
            OxmField::Ipv4Src(a) => {
                self.mask |= B_IPV4_SRC;
                self.bytes[O_IPV4_SRC..O_IPV4_SRC + 4].copy_from_slice(a);
            }
            OxmField::Ipv4Dst(a) => {
                self.mask |= B_IPV4_DST;
                self.bytes[O_IPV4_DST..O_IPV4_DST + 4].copy_from_slice(a);
            }
            OxmField::TcpSrc(p) => {
                self.mask |= B_TCP_SRC;
                self.bytes[O_TCP_SRC..O_TCP_SRC + 2].copy_from_slice(&p.to_be_bytes());
            }
            OxmField::TcpDst(p) => {
                self.mask |= B_TCP_DST;
                self.bytes[O_TCP_DST..O_TCP_DST + 2].copy_from_slice(&p.to_be_bytes());
            }
        }
    }

    /// Packs the fields of `m`, or `None` if the match repeats a field kind
    /// (possible only via decoded wire bytes) and must take the residual
    /// slow path.
    fn of_match(m: &Match) -> Option<ShapeKey> {
        let mut key = ShapeKey {
            mask: 0,
            bytes: [0; KEY_BYTES],
        };
        for f in m.fields() {
            let before = key.mask;
            key.set(f);
            if key.mask == before {
                return None; // duplicate field kind: not representable
            }
        }
        Some(key)
    }

    /// Packs the subset of `view`'s fields selected by `mask`.
    fn of_view(mask: u16, view: &MatchView) -> ShapeKey {
        let mut key = ShapeKey {
            mask,
            bytes: [0; KEY_BYTES],
        };
        if mask & B_IN_PORT != 0 {
            key.bytes[O_IN_PORT..O_IN_PORT + 4].copy_from_slice(&view.in_port.to_be_bytes());
        }
        if mask & B_ETH_DST != 0 {
            key.bytes[O_ETH_DST..O_ETH_DST + 6].copy_from_slice(&view.eth_dst);
        }
        if mask & B_ETH_SRC != 0 {
            key.bytes[O_ETH_SRC..O_ETH_SRC + 6].copy_from_slice(&view.eth_src);
        }
        if mask & B_ETH_TYPE != 0 {
            key.bytes[O_ETH_TYPE..O_ETH_TYPE + 2].copy_from_slice(&view.eth_type.to_be_bytes());
        }
        if mask & B_IP_PROTO != 0 {
            key.bytes[O_IP_PROTO] = view.ip_proto;
        }
        if mask & B_IPV4_SRC != 0 {
            key.bytes[O_IPV4_SRC..O_IPV4_SRC + 4].copy_from_slice(&view.ipv4_src);
        }
        if mask & B_IPV4_DST != 0 {
            key.bytes[O_IPV4_DST..O_IPV4_DST + 4].copy_from_slice(&view.ipv4_dst);
        }
        if mask & B_TCP_SRC != 0 {
            key.bytes[O_TCP_SRC..O_TCP_SRC + 2].copy_from_slice(&view.tcp_src.to_be_bytes());
        }
        if mask & B_TCP_DST != 0 {
            key.bytes[O_TCP_DST..O_TCP_DST + 2].copy_from_slice(&view.tcp_dst.to_be_bytes());
        }
        key
    }
}

/// Where an entry's id is filed.
enum Slot {
    Keyed(ShapeKey),
    Residual,
}

fn slot_of(m: &Match) -> Slot {
    match ShapeKey::of_match(m) {
        Some(k) => Slot::Keyed(k),
        None => Slot::Residual,
    }
}

/// A single OpenFlow table, indexed for O(1) exact-match classification.
#[derive(Default)]
pub struct FlowTable {
    /// Entry storage, keyed by stable id.
    flows: HashMap<FlowId, FlowEntry>,
    /// Exact-match index: shape+values → ids, each bucket sorted by
    /// (priority desc, id asc) so its head is the bucket's best candidate.
    index: HashMap<ShapeKey, Vec<FlowId>>,
    /// Live entry count per shape mask — the set of probes a lookup makes.
    shape_counts: HashMap<u16, usize>,
    /// Entries whose match cannot be keyed (duplicate field kinds); scanned
    /// linearly. Sorted by (priority desc, id asc).
    residual: Vec<FlowId>,
    /// Expiry wheel; per-entry deadlines are never later than the true
    /// expiry instant (idle refreshes are applied lazily on sweep).
    wheel: TimerWheel<FlowId>,
    /// Next id to assign; ids grow monotonically, so id order is
    /// insertion order (the OpenFlow tiebreak among equal priorities).
    next_id: FlowId,
    /// Bumped on every mutation that can change classification results
    /// (add/modify/delete/expire). Caches key on this to self-invalidate.
    revision: u64,
    /// Recycled buffer for expiry sweeps, so periodic [`FlowTable::expire`]
    /// ticks allocate nothing in the steady state.
    expiry_scratch: Vec<FlowId>,
}

/// `true` if candidate `(priority, id)` `a` beats `b` (higher priority wins;
/// first-added — lower id — wins ties).
fn beats(a: (u16, FlowId), b: (u16, FlowId)) -> bool {
    a.0 > b.0 || (a.0 == b.0 && a.1 < b.1)
}

impl FlowTable {
    /// Creates an empty table.
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    /// Number of installed flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// `true` if no flows are installed.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Mutation counter: changes whenever a lookup could now resolve
    /// differently. External exact-match caches (the switch's microflow
    /// cache) store it next to a [`FlowId`] and treat any difference as
    /// "re-classify".
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Iterates over entries in priority order (descending; first-added
    /// first among equal priorities) — diagnostics / stats.
    pub fn entries(&self) -> impl Iterator<Item = &FlowEntry> {
        let mut ids: Vec<(&FlowId, &FlowEntry)> = self.flows.iter().collect();
        ids.sort_by_key(|(id, e)| (std::cmp::Reverse(e.priority), **id));
        ids.into_iter().map(|(_, e)| e)
    }

    /// Inserts `id` into `bucket` keeping (priority desc, id asc) order.
    /// `id` is always the newest, so it goes after every equal priority.
    fn file(flows: &HashMap<FlowId, FlowEntry>, bucket: &mut Vec<FlowId>, id: FlowId) {
        let prio = flows[&id].priority;
        let pos = bucket
            .iter()
            .position(|other| flows[other].priority < prio)
            .unwrap_or(bucket.len());
        bucket.insert(pos, id);
    }

    /// Unfiles and drops entry `id`, returning it.
    fn remove_entry(&mut self, id: FlowId) -> FlowEntry {
        let entry = self.flows.remove(&id).expect("live flow id");
        match slot_of(&entry.match_) {
            Slot::Keyed(key) => {
                let bucket = self.index.get_mut(&key).expect("indexed entry has bucket");
                bucket.retain(|&x| x != id);
                if bucket.is_empty() {
                    self.index.remove(&key);
                }
                let n = self.shape_counts.get_mut(&key.mask).expect("shape count");
                *n -= 1;
                if *n == 0 {
                    self.shape_counts.remove(&key.mask);
                }
            }
            Slot::Residual => self.residual.retain(|&x| x != id),
        }
        self.wheel.cancel(&id);
        entry
    }

    /// Adds a flow. An existing entry with identical match and priority is
    /// replaced (OpenFlow ADD semantics), preserving nothing.
    pub fn add(&mut self, mut entry: FlowEntry, now: SimTime) {
        entry.installed_at = now;
        entry.last_hit = now;
        entry.packet_count = 0;
        entry.byte_count = 0;
        let slot = slot_of(&entry.match_);
        let candidates: &[FlowId] = match &slot {
            Slot::Keyed(key) => self.index.get(key).map_or(&[], |b| b.as_slice()),
            Slot::Residual => &self.residual,
        };
        let victims: Vec<FlowId> = candidates
            .iter()
            .copied()
            .filter(|id| {
                let e = &self.flows[id];
                e.priority == entry.priority && e.match_ == entry.match_
            })
            .collect();
        for id in victims {
            self.remove_entry(id);
        }
        let id = self.next_id;
        self.next_id += 1;
        if let Some(deadline) = entry.next_deadline() {
            self.wheel.schedule(id, deadline);
        }
        self.flows.insert(id, entry);
        match slot {
            Slot::Keyed(key) => {
                *self.shape_counts.entry(key.mask).or_insert(0) += 1;
                Self::file(&self.flows, self.index.entry(key).or_default(), id);
            }
            Slot::Residual => Self::file(&self.flows, &mut self.residual, id),
        }
        self.revision += 1;
    }

    /// The ids whose match equals `match_` (order-sensitive equality, like
    /// the wire protocol), optionally restricted to one priority.
    fn ids_matching(&self, match_: &Match, priority: Option<u16>) -> Vec<FlowId> {
        let candidates: &[FlowId] = match slot_of(match_) {
            Slot::Keyed(key) => self.index.get(&key).map_or(&[], |b| b.as_slice()),
            Slot::Residual => &self.residual,
        };
        candidates
            .iter()
            .copied()
            .filter(|id| {
                let e = &self.flows[id];
                e.match_ == *match_ && priority.is_none_or(|p| e.priority == p)
            })
            .collect()
    }

    /// OpenFlow MODIFY: swaps instructions of all flows whose match equals
    /// `match_`, at **every** priority (counters and timers preserved).
    /// Returns how many changed. This cross-priority behavior is the
    /// non-strict MODIFY of the OpenFlow spec — deliberate, and pinned by
    /// tests; use [`FlowTable::modify_strict`] to target one priority.
    pub fn modify(&mut self, match_: &Match, instructions: &[Instruction]) -> usize {
        let ids = self.ids_matching(match_, None);
        for id in &ids {
            self.flows.get_mut(id).expect("live flow id").instructions =
                instructions.to_vec();
        }
        if !ids.is_empty() {
            self.revision += 1;
        }
        ids.len()
    }

    /// OpenFlow MODIFY_STRICT: like [`FlowTable::modify`] but only flows at
    /// exactly `priority` — the unambiguous `(priority, match)` keying that
    /// ADD and the index use. Returns how many changed (0 or 1, since ADD
    /// keeps `(priority, match)` unique).
    pub fn modify_strict(
        &mut self,
        match_: &Match,
        priority: u16,
        instructions: &[Instruction],
    ) -> usize {
        let ids = self.ids_matching(match_, Some(priority));
        for id in &ids {
            self.flows.get_mut(id).expect("live flow id").instructions =
                instructions.to_vec();
        }
        if !ids.is_empty() {
            self.revision += 1;
        }
        ids.len()
    }

    /// Deletes all flows whose match equals `match_` (exact-match delete;
    /// the controller always deletes what it installed). A wildcard `match_`
    /// deletes everything. Returns removal records in priority order.
    pub fn delete(&mut self, match_: &Match, now: SimTime) -> Vec<Removed> {
        let mut taken: Vec<(FlowId, FlowEntry)> = if match_.is_empty() {
            let all = self.flows.drain().collect();
            self.index.clear();
            self.shape_counts.clear();
            self.residual.clear();
            self.wheel.clear();
            all
        } else {
            self.ids_matching(match_, None)
                .into_iter()
                .map(|id| (id, self.remove_entry(id)))
                .collect()
        };
        if !taken.is_empty() {
            self.revision += 1;
        }
        taken.sort_by_key(|(id, e)| (std::cmp::Reverse(e.priority), *id));
        taken
            .into_iter()
            .map(|(_, entry)| Removed {
                entry,
                reason: RemovedReason::Delete,
                at: now,
            })
            .collect()
    }

    /// The winning entry id for `view`: one hash probe per live shape plus a
    /// scan of the (normally empty) residual list — independent of how many
    /// flows are installed.
    fn classify(&self, view: &MatchView) -> Option<FlowId> {
        let mut best: Option<(u16, FlowId)> = None;
        for &mask in self.shape_counts.keys() {
            let key = ShapeKey::of_view(mask, view);
            if let Some(&id) = self.index.get(&key).and_then(|b| b.first()) {
                let cand = (self.flows[&id].priority, id);
                if best.is_none_or(|b| beats(cand, b)) {
                    best = Some(cand);
                }
            }
        }
        for &id in &self.residual {
            let e = &self.flows[&id];
            if e.match_.matches(view) {
                let cand = (e.priority, id);
                if best.is_none_or(|b| beats(cand, b)) {
                    best = Some(cand);
                }
                break; // residual is priority-sorted: first hit is its best
            }
        }
        best.map(|(_, id)| id)
    }

    /// Looks up the highest-priority matching flow, updating its counters and
    /// idle timer. Returns a clone of the matched entry's instructions plus
    /// its cookie.
    pub fn lookup(
        &mut self,
        view: &MatchView,
        frame_len: usize,
        now: SimTime,
    ) -> Option<(u64, Vec<Instruction>)> {
        self.lookup_keyed(view, frame_len, now)
            .map(|(_, cookie, instructions)| (cookie, instructions))
    }

    /// Like [`FlowTable::lookup`] but also returns the entry's [`FlowId`] so
    /// callers can cache the classification (see [`FlowTable::hit`]).
    pub fn lookup_keyed(
        &mut self,
        view: &MatchView,
        frame_len: usize,
        now: SimTime,
    ) -> Option<(FlowId, u64, Vec<Instruction>)> {
        let id = self.classify(view)?;
        let (cookie, instructions) = self.hit(id, frame_len, now)?;
        Some((id, cookie, instructions))
    }

    /// Accounts a packet against an already-classified flow: the microflow
    /// fast path. Counters and the idle timer update exactly as a full
    /// lookup would. Returns `None` if `id` is no longer installed (callers
    /// guard with [`FlowTable::revision`], so this is belt-and-braces).
    pub fn hit(
        &mut self,
        id: FlowId,
        frame_len: usize,
        now: SimTime,
    ) -> Option<(u64, Vec<Instruction>)> {
        let e = self.flows.get_mut(&id)?;
        e.packet_count += 1;
        e.byte_count += frame_len as u64;
        e.last_hit = now;
        Some((e.cookie, e.instructions.clone()))
    }

    /// Read-only lookup (no counter updates).
    pub fn peek(&self, view: &MatchView) -> Option<&FlowEntry> {
        self.classify(view).map(|id| &self.flows[&id])
    }

    /// Removes every flow whose idle or hard timeout has elapsed at `now`,
    /// returning removal records in priority order (hard timeout takes
    /// precedence when both expired). Visits only entries whose wheel
    /// deadline is due — entries whose idle timer was refreshed by traffic
    /// since their deadline was set are rescheduled, not scanned again.
    pub fn expire(&mut self, now: SimTime) -> Vec<Removed> {
        let mut taken: Vec<(FlowId, FlowEntry, RemovedReason)> = Vec::new();
        let mut due = std::mem::take(&mut self.expiry_scratch);
        due.clear();
        self.wheel.expired_into(now, &mut due);
        for id in due.drain(..) {
            let e = &self.flows[&id];
            let hard_exp =
                e.hard_timeout != Duration::ZERO && now - e.installed_at >= e.hard_timeout;
            let idle_exp =
                e.idle_timeout != Duration::ZERO && now - e.last_hit >= e.idle_timeout;
            if hard_exp || idle_exp {
                let reason = if hard_exp {
                    RemovedReason::HardTimeout
                } else {
                    RemovedReason::IdleTimeout
                };
                let entry = self.remove_entry(id);
                taken.push((id, entry, reason));
            } else {
                // Idle timer was refreshed since this deadline was set.
                let deadline = e.next_deadline().expect("scheduled entry has a timeout");
                self.wheel.schedule(id, deadline);
            }
        }
        self.expiry_scratch = due;
        if !taken.is_empty() {
            self.revision += 1;
        }
        taken.sort_by_key(|(id, e, _)| (std::cmp::Reverse(e.priority), *id));
        taken
            .into_iter()
            .map(|(_, entry, reason)| Removed {
                entry,
                reason,
                at: now,
            })
            .collect()
    }

    /// The earliest instant at which some flow could expire (for efficient
    /// timer scheduling), or `None` if no flow has a timeout. O(1): reads
    /// the timer wheel's bound, which is never later than the true earliest
    /// expiry (it can be earlier after idle refreshes; a sweep at that
    /// instant is simply empty and re-tightens the bound).
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.wheel.next_deadline()
    }
}

/// Builds a [`FlowEntry`] with zeroed counters/timers (filled in by
/// [`FlowTable::add`]).
pub fn entry(
    match_: Match,
    priority: u16,
    cookie: u64,
    instructions: Vec<Instruction>,
    idle_timeout: Duration,
    hard_timeout: Duration,
    flags: u16,
) -> FlowEntry {
    FlowEntry {
        match_,
        priority,
        cookie,
        instructions,
        idle_timeout,
        hard_timeout,
        flags,
        installed_at: SimTime::ZERO,
        last_hit: SimTime::ZERO,
        packet_count: 0,
        byte_count: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::Action;

    fn view(dst_port: u16) -> MatchView {
        MatchView {
            in_port: 1,
            eth_dst: [0; 6],
            eth_src: [0; 6],
            eth_type: 0x0800,
            ip_proto: 6,
            ipv4_src: [192, 168, 1, 20],
            ipv4_dst: [203, 0, 113, 10],
            tcp_src: 50000,
            tcp_dst: dst_port,
        }
    }

    fn fwd(port: u32) -> Vec<Instruction> {
        vec![Instruction::ApplyActions(vec![Action::output(port)])]
    }

    #[test]
    fn priority_order_wins() {
        let mut t = FlowTable::new();
        t.add(
            entry(Match::any(), 0, 1, fwd(1), Duration::ZERO, Duration::ZERO, 0),
            SimTime::ZERO,
        );
        t.add(
            entry(
                Match::service([203, 0, 113, 10], 80),
                100,
                2,
                fwd(2),
                Duration::ZERO,
                Duration::ZERO,
                0,
            ),
            SimTime::ZERO,
        );
        let (cookie, _) = t.lookup(&view(80), 64, SimTime::ZERO).unwrap();
        assert_eq!(cookie, 2);
        let (cookie, _) = t.lookup(&view(443), 64, SimTime::ZERO).unwrap();
        assert_eq!(cookie, 1); // only the wildcard matches
    }

    #[test]
    fn first_added_wins_priority_ties_across_shapes() {
        let mut t = FlowTable::new();
        // Same priority, different shapes, both match the view.
        t.add(
            entry(
                Match::any().with(OxmField::TcpDst(80)),
                5,
                1,
                fwd(1),
                Duration::ZERO,
                Duration::ZERO,
                0,
            ),
            SimTime::ZERO,
        );
        t.add(
            entry(
                Match::any().with(OxmField::Ipv4Dst([203, 0, 113, 10])),
                5,
                2,
                fwd(2),
                Duration::ZERO,
                Duration::ZERO,
                0,
            ),
            SimTime::ZERO,
        );
        let (cookie, _) = t.lookup(&view(80), 64, SimTime::ZERO).unwrap();
        assert_eq!(cookie, 1, "first-added wins the tie");
    }

    #[test]
    fn add_replaces_same_match_and_priority() {
        let mut t = FlowTable::new();
        let m = Match::service([1, 1, 1, 1], 80);
        t.add(entry(m.clone(), 10, 1, fwd(1), Duration::ZERO, Duration::ZERO, 0), SimTime::ZERO);
        t.add(entry(m, 10, 2, fwd(2), Duration::ZERO, Duration::ZERO, 0), SimTime::ZERO);
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries().next().unwrap().cookie, 2);
    }

    #[test]
    fn counters_accumulate() {
        let mut t = FlowTable::new();
        t.add(
            entry(Match::any(), 0, 9, fwd(1), Duration::ZERO, Duration::ZERO, 0),
            SimTime::ZERO,
        );
        t.lookup(&view(80), 100, SimTime::from_nanos(10)).unwrap();
        t.lookup(&view(80), 150, SimTime::from_nanos(20)).unwrap();
        let e = t.entries().next().unwrap();
        assert_eq!(e.packet_count, 2);
        assert_eq!(e.byte_count, 250);
        assert_eq!(e.last_hit, SimTime::from_nanos(20));
    }

    #[test]
    fn idle_timeout_expires_without_traffic() {
        let mut t = FlowTable::new();
        t.add(
            entry(
                Match::any(),
                0,
                1,
                fwd(1),
                Duration::from_secs(10),
                Duration::ZERO,
                OFPFF_SEND_FLOW_REM,
            ),
            SimTime::ZERO,
        );
        assert!(t.expire(SimTime::ZERO + Duration::from_secs(9)).is_empty());
        let removed = t.expire(SimTime::ZERO + Duration::from_secs(10));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, RemovedReason::IdleTimeout);
        assert!(removed[0].entry.wants_removed_msg());
        assert!(t.is_empty());
    }

    #[test]
    fn traffic_refreshes_idle_timer() {
        let mut t = FlowTable::new();
        t.add(
            entry(Match::any(), 0, 1, fwd(1), Duration::from_secs(10), Duration::ZERO, 0),
            SimTime::ZERO,
        );
        // Hit at t=8s: timer restarts.
        t.lookup(&view(80), 64, SimTime::ZERO + Duration::from_secs(8));
        assert!(t.expire(SimTime::ZERO + Duration::from_secs(15)).is_empty());
        assert_eq!(t.expire(SimTime::ZERO + Duration::from_secs(18)).len(), 1);
    }

    #[test]
    fn hard_timeout_ignores_traffic() {
        let mut t = FlowTable::new();
        t.add(
            entry(Match::any(), 0, 1, fwd(1), Duration::ZERO, Duration::from_secs(5), 0),
            SimTime::ZERO,
        );
        t.lookup(&view(80), 64, SimTime::ZERO + Duration::from_secs(4));
        let removed = t.expire(SimTime::ZERO + Duration::from_secs(5));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, RemovedReason::HardTimeout);
        assert_eq!(removed[0].duration(), Duration::from_secs(5));
    }

    #[test]
    fn delete_exact_and_wildcard() {
        let mut t = FlowTable::new();
        let m1 = Match::service([1, 1, 1, 1], 80);
        let m2 = Match::service([2, 2, 2, 2], 80);
        t.add(entry(m1.clone(), 5, 1, fwd(1), Duration::ZERO, Duration::ZERO, 0), SimTime::ZERO);
        t.add(entry(m2, 5, 2, fwd(2), Duration::ZERO, Duration::ZERO, 0), SimTime::ZERO);
        let removed = t.delete(&m1, SimTime::from_nanos(7));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].entry.cookie, 1);
        assert_eq!(removed[0].reason, RemovedReason::Delete);
        assert_eq!(t.len(), 1);
        let removed = t.delete(&Match::any(), SimTime::from_nanos(8));
        assert_eq!(removed.len(), 1);
        assert!(t.is_empty());
        assert_eq!(t.next_expiry(), None);
    }

    #[test]
    fn modify_swaps_instructions_keeps_counters() {
        let mut t = FlowTable::new();
        let m = Match::service([1, 1, 1, 1], 80);
        t.add(entry(m.clone(), 5, 1, fwd(1), Duration::ZERO, Duration::ZERO, 0), SimTime::ZERO);
        let mut v = view(80);
        v.ipv4_dst = [1, 1, 1, 1];
        t.lookup(&v, 64, SimTime::from_nanos(1)).unwrap();
        assert_eq!(t.modify(&m, &fwd(9)), 1);
        let e = t.entries().next().unwrap();
        assert_eq!(e.packet_count, 1, "counters preserved");
        assert_eq!(e.instructions, fwd(9));
        assert_eq!(t.modify(&Match::service([9, 9, 9, 9], 80), &fwd(1)), 0);
    }

    /// MODIFY is deliberately non-strict: it rewrites the match at *every*
    /// priority (OpenFlow's OFPFC_MODIFY). MODIFY_STRICT keys on
    /// `(priority, match)` like ADD does.
    #[test]
    fn modify_is_cross_priority_and_strict_is_not() {
        let mut t = FlowTable::new();
        let m = Match::service([1, 1, 1, 1], 80);
        t.add(entry(m.clone(), 5, 1, fwd(1), Duration::ZERO, Duration::ZERO, 0), SimTime::ZERO);
        t.add(entry(m.clone(), 9, 2, fwd(2), Duration::ZERO, Duration::ZERO, 0), SimTime::ZERO);
        assert_eq!(t.modify(&m, &fwd(7)), 2, "non-strict hits both priorities");
        assert!(t.entries().all(|e| e.instructions == fwd(7)));
        assert_eq!(t.modify_strict(&m, 9, &fwd(3)), 1, "strict hits exactly one");
        assert_eq!(
            t.entries().map(|e| (e.priority, e.instructions.clone())).collect::<Vec<_>>(),
            vec![(9, fwd(3)), (5, fwd(7))]
        );
        assert_eq!(t.modify_strict(&m, 6, &fwd(4)), 0, "no flow at that priority");
    }

    #[test]
    fn next_expiry_is_earliest() {
        let mut t = FlowTable::new();
        assert_eq!(t.next_expiry(), None);
        t.add(
            entry(Match::any(), 0, 1, fwd(1), Duration::from_secs(10), Duration::ZERO, 0),
            SimTime::ZERO,
        );
        t.add(
            entry(
                Match::service([1, 1, 1, 1], 80),
                5,
                2,
                fwd(2),
                Duration::ZERO,
                Duration::from_secs(3),
                0,
            ),
            SimTime::ZERO,
        );
        assert_eq!(t.next_expiry(), Some(SimTime::ZERO + Duration::from_secs(3)));
    }

    #[test]
    fn peek_does_not_touch_counters() {
        let mut t = FlowTable::new();
        t.add(
            entry(Match::any(), 0, 1, fwd(1), Duration::ZERO, Duration::ZERO, 0),
            SimTime::ZERO,
        );
        assert!(t.peek(&view(80)).is_some());
        assert_eq!(t.entries().next().unwrap().packet_count, 0);
    }

    #[test]
    fn revision_tracks_classification_changes() {
        let mut t = FlowTable::new();
        let r0 = t.revision();
        t.add(
            entry(Match::any(), 0, 1, fwd(1), Duration::from_secs(1), Duration::ZERO, 0),
            SimTime::ZERO,
        );
        let r1 = t.revision();
        assert_ne!(r0, r1, "add bumps");
        t.lookup(&view(80), 64, SimTime::ZERO);
        assert_eq!(t.revision(), r1, "lookups do not bump");
        assert_eq!(t.modify(&Match::any(), &fwd(2)), 1);
        let r2 = t.revision();
        assert_ne!(r1, r2, "modify bumps");
        t.expire(SimTime::from_millis(500));
        assert_eq!(t.revision(), r2, "empty sweep does not bump");
        assert_eq!(t.expire(SimTime::from_secs(2)).len(), 1);
        assert_ne!(t.revision(), r2, "expiry removal bumps");
    }

    #[test]
    fn hit_by_id_matches_full_lookup() {
        let mut t = FlowTable::new();
        t.add(
            entry(Match::any(), 0, 42, fwd(1), Duration::ZERO, Duration::ZERO, 0),
            SimTime::ZERO,
        );
        let (id, cookie, instr) = t.lookup_keyed(&view(80), 10, SimTime::ZERO).unwrap();
        assert_eq!((cookie, &instr), (42, &fwd(1)));
        let (cookie2, instr2) = t.hit(id, 20, SimTime::from_nanos(5)).unwrap();
        assert_eq!((cookie2, &instr2), (42, &fwd(1)));
        let e = t.entries().next().unwrap();
        assert_eq!((e.packet_count, e.byte_count), (2, 30));
        assert_eq!(e.last_hit, SimTime::from_nanos(5));
        t.delete(&Match::any(), SimTime::from_nanos(6));
        assert!(t.hit(id, 1, SimTime::from_nanos(7)).is_none(), "stale id");
    }

    /// A match with a duplicated field kind (only constructible from wire
    /// bytes) cannot be hashed faithfully and must take the residual path —
    /// satisfiable duplicates still match, contradictory ones never do.
    #[test]
    fn duplicate_field_matches_use_residual_path() {
        // type=1, length 4+2*6=16, two TcpDst TLVs (80 then 80 / 80 then 81).
        fn dup_match(a: u16, b: u16) -> Match {
            let mut buf = vec![0, 1, 0, 16];
            for port in [a, b] {
                buf.extend_from_slice(&[0x80, 0x00, 14 << 1, 2]);
                buf.extend_from_slice(&port.to_be_bytes());
            }
            Match::decode(&buf).expect("valid duplicate-field match").0
        }
        let mut t = FlowTable::new();
        let consistent = dup_match(80, 80);
        let contradictory = dup_match(80, 81);
        t.add(
            entry(consistent.clone(), 7, 1, fwd(1), Duration::ZERO, Duration::ZERO, 0),
            SimTime::ZERO,
        );
        t.add(
            entry(contradictory, 9, 2, fwd(2), Duration::ZERO, Duration::ZERO, 0),
            SimTime::ZERO,
        );
        let (cookie, _) = t.lookup(&view(80), 64, SimTime::ZERO).unwrap();
        assert_eq!(cookie, 1, "consistent duplicate matches; contradictory never");
        assert!(t.lookup(&view(443), 64, SimTime::ZERO).is_none());
        let removed = t.delete(&consistent, SimTime::ZERO);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].entry.cookie, 1);
        assert_eq!(t.len(), 1);
    }
}
