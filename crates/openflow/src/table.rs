//! Flow-table semantics: priority lookup, counters, timeouts.
//!
//! This is the state a switch keeps per table. The same structure backs the
//! controller's *FlowMemory* (Section V of the paper): memorized flows with
//! idle timeouts whose expiry both cleans the memory and triggers automatic
//! scale-down of idle edge services.

use crate::actions::Instruction;
use crate::messages::{RemovedReason, OFPFF_SEND_FLOW_REM};
use crate::oxm::{Match, MatchView};
use desim::{Duration, SimTime};

/// One installed flow.
#[derive(Clone, Debug)]
pub struct FlowEntry {
    /// Match condition.
    pub match_: Match,
    /// Priority; higher wins.
    pub priority: u16,
    /// Controller cookie.
    pub cookie: u64,
    /// Instructions to run on match.
    pub instructions: Vec<Instruction>,
    /// Idle timeout ([`Duration::ZERO`] = none).
    pub idle_timeout: Duration,
    /// Hard timeout ([`Duration::ZERO`] = none).
    pub hard_timeout: Duration,
    /// `FLOW_MOD` flags.
    pub flags: u16,
    /// Installation time.
    pub installed_at: SimTime,
    /// Last time a packet hit this flow.
    pub last_hit: SimTime,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
}

impl FlowEntry {
    /// `true` if this entry requested a `FLOW_REMOVED` notification.
    pub fn wants_removed_msg(&self) -> bool {
        self.flags & OFPFF_SEND_FLOW_REM != 0
    }
}

/// A removal record produced by expiry or deletion.
#[derive(Clone, Debug)]
pub struct Removed {
    /// The removed entry (with final counters).
    pub entry: FlowEntry,
    /// Why it went away.
    pub reason: RemovedReason,
    /// When it was removed.
    pub at: SimTime,
}

impl Removed {
    /// Lifetime of the flow.
    pub fn duration(&self) -> Duration {
        self.at - self.entry.installed_at
    }
}

/// A single OpenFlow table.
#[derive(Default)]
pub struct FlowTable {
    entries: Vec<FlowEntry>,
}

impl FlowTable {
    /// Creates an empty table.
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    /// Number of installed flows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no flows are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over entries (diagnostics / stats).
    pub fn entries(&self) -> impl Iterator<Item = &FlowEntry> {
        self.entries.iter()
    }

    /// Adds a flow. An existing entry with identical match and priority is
    /// replaced (OpenFlow ADD semantics), preserving nothing.
    pub fn add(&mut self, mut entry: FlowEntry, now: SimTime) {
        entry.installed_at = now;
        entry.last_hit = now;
        entry.packet_count = 0;
        entry.byte_count = 0;
        self.entries
            .retain(|e| !(e.priority == entry.priority && e.match_ == entry.match_));
        self.entries.push(entry);
        // Keep sorted by descending priority; stable sort preserves insertion
        // order among equal priorities (first-added wins lookups).
        self.entries.sort_by_key(|e| std::cmp::Reverse(e.priority));
    }

    /// Modifies instructions of all flows whose match equals `match_`
    /// (counters and timers preserved). Returns how many changed.
    pub fn modify(&mut self, match_: &Match, instructions: &[Instruction]) -> usize {
        let mut n = 0;
        for e in &mut self.entries {
            if e.match_ == *match_ {
                e.instructions = instructions.to_vec();
                n += 1;
            }
        }
        n
    }

    /// Deletes all flows whose match equals `match_` (exact-match delete;
    /// the controller always deletes what it installed). A wildcard `match_`
    /// deletes everything. Returns removal records.
    pub fn delete(&mut self, match_: &Match, now: SimTime) -> Vec<Removed> {
        let mut removed = Vec::new();
        let mut kept = Vec::with_capacity(self.entries.len());
        for e in self.entries.drain(..) {
            if match_.is_empty() || e.match_ == *match_ {
                removed.push(Removed {
                    entry: e,
                    reason: RemovedReason::Delete,
                    at: now,
                });
            } else {
                kept.push(e);
            }
        }
        self.entries = kept;
        removed
    }

    /// Looks up the highest-priority matching flow, updating its counters and
    /// idle timer. Returns a clone of the matched entry's instructions plus
    /// its cookie.
    pub fn lookup(
        &mut self,
        view: &MatchView,
        frame_len: usize,
        now: SimTime,
    ) -> Option<(u64, Vec<Instruction>)> {
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.match_.matches(view))?;
        e.packet_count += 1;
        e.byte_count += frame_len as u64;
        e.last_hit = now;
        Some((e.cookie, e.instructions.clone()))
    }

    /// Read-only lookup (no counter updates).
    pub fn peek(&self, view: &MatchView) -> Option<&FlowEntry> {
        self.entries.iter().find(|e| e.match_.matches(view))
    }

    /// Removes every flow whose idle or hard timeout has elapsed at `now`,
    /// returning removal records (hard timeout takes precedence when both
    /// expired).
    pub fn expire(&mut self, now: SimTime) -> Vec<Removed> {
        let mut removed = Vec::new();
        let mut kept = Vec::with_capacity(self.entries.len());
        for e in self.entries.drain(..) {
            let hard_exp = e.hard_timeout != Duration::ZERO
                && now - e.installed_at >= e.hard_timeout;
            let idle_exp =
                e.idle_timeout != Duration::ZERO && now - e.last_hit >= e.idle_timeout;
            if hard_exp || idle_exp {
                removed.push(Removed {
                    entry: e,
                    reason: if hard_exp {
                        RemovedReason::HardTimeout
                    } else {
                        RemovedReason::IdleTimeout
                    },
                    at: now,
                });
            } else {
                kept.push(e);
            }
        }
        self.entries = kept;
        removed
    }

    /// The earliest instant at which some flow could expire (for efficient
    /// timer scheduling), or `None` if no flow has a timeout.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.entries
            .iter()
            .flat_map(|e| {
                let idle = (e.idle_timeout != Duration::ZERO)
                    .then(|| e.last_hit + e.idle_timeout);
                let hard = (e.hard_timeout != Duration::ZERO)
                    .then(|| e.installed_at + e.hard_timeout);
                [idle, hard].into_iter().flatten()
            })
            .min()
    }
}

/// Builds a [`FlowEntry`] with zeroed counters/timers (filled in by
/// [`FlowTable::add`]).
pub fn entry(
    match_: Match,
    priority: u16,
    cookie: u64,
    instructions: Vec<Instruction>,
    idle_timeout: Duration,
    hard_timeout: Duration,
    flags: u16,
) -> FlowEntry {
    FlowEntry {
        match_,
        priority,
        cookie,
        instructions,
        idle_timeout,
        hard_timeout,
        flags,
        installed_at: SimTime::ZERO,
        last_hit: SimTime::ZERO,
        packet_count: 0,
        byte_count: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::Action;

    fn view(dst_port: u16) -> MatchView {
        MatchView {
            in_port: 1,
            eth_dst: [0; 6],
            eth_src: [0; 6],
            eth_type: 0x0800,
            ip_proto: 6,
            ipv4_src: [192, 168, 1, 20],
            ipv4_dst: [203, 0, 113, 10],
            tcp_src: 50000,
            tcp_dst: dst_port,
        }
    }

    fn fwd(port: u32) -> Vec<Instruction> {
        vec![Instruction::ApplyActions(vec![Action::output(port)])]
    }

    #[test]
    fn priority_order_wins() {
        let mut t = FlowTable::new();
        t.add(
            entry(Match::any(), 0, 1, fwd(1), Duration::ZERO, Duration::ZERO, 0),
            SimTime::ZERO,
        );
        t.add(
            entry(
                Match::service([203, 0, 113, 10], 80),
                100,
                2,
                fwd(2),
                Duration::ZERO,
                Duration::ZERO,
                0,
            ),
            SimTime::ZERO,
        );
        let (cookie, _) = t.lookup(&view(80), 64, SimTime::ZERO).unwrap();
        assert_eq!(cookie, 2);
        let (cookie, _) = t.lookup(&view(443), 64, SimTime::ZERO).unwrap();
        assert_eq!(cookie, 1); // only the wildcard matches
    }

    #[test]
    fn add_replaces_same_match_and_priority() {
        let mut t = FlowTable::new();
        let m = Match::service([1, 1, 1, 1], 80);
        t.add(entry(m.clone(), 10, 1, fwd(1), Duration::ZERO, Duration::ZERO, 0), SimTime::ZERO);
        t.add(entry(m, 10, 2, fwd(2), Duration::ZERO, Duration::ZERO, 0), SimTime::ZERO);
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries().next().unwrap().cookie, 2);
    }

    #[test]
    fn counters_accumulate() {
        let mut t = FlowTable::new();
        t.add(
            entry(Match::any(), 0, 9, fwd(1), Duration::ZERO, Duration::ZERO, 0),
            SimTime::ZERO,
        );
        t.lookup(&view(80), 100, SimTime::from_nanos(10)).unwrap();
        t.lookup(&view(80), 150, SimTime::from_nanos(20)).unwrap();
        let e = t.entries().next().unwrap();
        assert_eq!(e.packet_count, 2);
        assert_eq!(e.byte_count, 250);
        assert_eq!(e.last_hit, SimTime::from_nanos(20));
    }

    #[test]
    fn idle_timeout_expires_without_traffic() {
        let mut t = FlowTable::new();
        t.add(
            entry(
                Match::any(),
                0,
                1,
                fwd(1),
                Duration::from_secs(10),
                Duration::ZERO,
                OFPFF_SEND_FLOW_REM,
            ),
            SimTime::ZERO,
        );
        assert!(t.expire(SimTime::ZERO + Duration::from_secs(9)).is_empty());
        let removed = t.expire(SimTime::ZERO + Duration::from_secs(10));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, RemovedReason::IdleTimeout);
        assert!(removed[0].entry.wants_removed_msg());
        assert!(t.is_empty());
    }

    #[test]
    fn traffic_refreshes_idle_timer() {
        let mut t = FlowTable::new();
        t.add(
            entry(Match::any(), 0, 1, fwd(1), Duration::from_secs(10), Duration::ZERO, 0),
            SimTime::ZERO,
        );
        // Hit at t=8s: timer restarts.
        t.lookup(&view(80), 64, SimTime::ZERO + Duration::from_secs(8));
        assert!(t.expire(SimTime::ZERO + Duration::from_secs(15)).is_empty());
        assert_eq!(t.expire(SimTime::ZERO + Duration::from_secs(18)).len(), 1);
    }

    #[test]
    fn hard_timeout_ignores_traffic() {
        let mut t = FlowTable::new();
        t.add(
            entry(Match::any(), 0, 1, fwd(1), Duration::ZERO, Duration::from_secs(5), 0),
            SimTime::ZERO,
        );
        t.lookup(&view(80), 64, SimTime::ZERO + Duration::from_secs(4));
        let removed = t.expire(SimTime::ZERO + Duration::from_secs(5));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, RemovedReason::HardTimeout);
        assert_eq!(removed[0].duration(), Duration::from_secs(5));
    }

    #[test]
    fn delete_exact_and_wildcard() {
        let mut t = FlowTable::new();
        let m1 = Match::service([1, 1, 1, 1], 80);
        let m2 = Match::service([2, 2, 2, 2], 80);
        t.add(entry(m1.clone(), 5, 1, fwd(1), Duration::ZERO, Duration::ZERO, 0), SimTime::ZERO);
        t.add(entry(m2, 5, 2, fwd(2), Duration::ZERO, Duration::ZERO, 0), SimTime::ZERO);
        let removed = t.delete(&m1, SimTime::from_nanos(7));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].entry.cookie, 1);
        assert_eq!(removed[0].reason, RemovedReason::Delete);
        assert_eq!(t.len(), 1);
        let removed = t.delete(&Match::any(), SimTime::from_nanos(8));
        assert_eq!(removed.len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn modify_swaps_instructions_keeps_counters() {
        let mut t = FlowTable::new();
        let m = Match::service([1, 1, 1, 1], 80);
        t.add(entry(m.clone(), 5, 1, fwd(1), Duration::ZERO, Duration::ZERO, 0), SimTime::ZERO);
        let mut v = view(80);
        v.ipv4_dst = [1, 1, 1, 1];
        t.lookup(&v, 64, SimTime::from_nanos(1)).unwrap();
        assert_eq!(t.modify(&m, &fwd(9)), 1);
        let e = t.entries().next().unwrap();
        assert_eq!(e.packet_count, 1, "counters preserved");
        assert_eq!(e.instructions, fwd(9));
        assert_eq!(t.modify(&Match::service([9, 9, 9, 9], 80), &fwd(1)), 0);
    }

    #[test]
    fn next_expiry_is_earliest() {
        let mut t = FlowTable::new();
        assert_eq!(t.next_expiry(), None);
        t.add(
            entry(Match::any(), 0, 1, fwd(1), Duration::from_secs(10), Duration::ZERO, 0),
            SimTime::ZERO,
        );
        t.add(
            entry(
                Match::service([1, 1, 1, 1], 80),
                5,
                2,
                fwd(2),
                Duration::ZERO,
                Duration::from_secs(3),
                0,
            ),
            SimTime::ZERO,
        );
        assert_eq!(t.next_expiry(), Some(SimTime::ZERO + Duration::from_secs(3)));
    }

    #[test]
    fn peek_does_not_touch_counters() {
        let mut t = FlowTable::new();
        t.add(
            entry(Match::any(), 0, 1, fwd(1), Duration::ZERO, Duration::ZERO, 0),
            SimTime::ZERO,
        );
        assert!(t.peek(&view(80)).is_some());
        assert_eq!(t.entries().next().unwrap().packet_count, 0);
    }
}
