//! The original linear-scan flow table, kept as a behavioral reference.
//!
//! [`NaiveFlowTable`] is the seed implementation that [`crate::table::FlowTable`]
//! replaced: a priority-sorted `Vec` scanned linearly on every lookup, fully
//! drained on every expiry sweep, and globally re-sorted on every add. It is
//! semantically authoritative and obviously correct, which makes it the
//! oracle for the differential tests (`crate::diff`) and the baseline the
//! flow-table benchmarks measure speedups against. It must stay simple —
//! do not optimize this type.

use crate::actions::Instruction;
use crate::messages::RemovedReason;
use crate::oxm::{Match, MatchView};
use crate::table::{FlowEntry, Removed};
use desim::{Duration, SimTime};

/// The reference flow table: every operation is a scan over a sorted `Vec`.
#[derive(Default)]
pub struct NaiveFlowTable {
    entries: Vec<FlowEntry>,
}

impl NaiveFlowTable {
    /// Creates an empty table.
    pub fn new() -> NaiveFlowTable {
        NaiveFlowTable::default()
    }

    /// Number of installed flows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no flows are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over entries in priority order (descending; first-added
    /// first among equal priorities).
    pub fn entries(&self) -> impl Iterator<Item = &FlowEntry> {
        self.entries.iter()
    }

    /// Bulk constructor for benchmarks: installs `entries` with counters
    /// reset at `now`, sorting once instead of per-add (the per-add path is
    /// O(n log n) each, which makes building 100k-entry baselines painful).
    pub fn with_entries(entries: Vec<FlowEntry>, now: SimTime) -> NaiveFlowTable {
        let mut t = NaiveFlowTable {
            entries: entries
                .into_iter()
                .map(|mut e| {
                    e.installed_at = now;
                    e.last_hit = now;
                    e.packet_count = 0;
                    e.byte_count = 0;
                    e
                })
                .collect(),
        };
        t.entries.sort_by_key(|e| std::cmp::Reverse(e.priority));
        t
    }

    /// Adds a flow. An existing entry with identical match and priority is
    /// replaced (OpenFlow ADD semantics), preserving nothing.
    pub fn add(&mut self, mut entry: FlowEntry, now: SimTime) {
        entry.installed_at = now;
        entry.last_hit = now;
        entry.packet_count = 0;
        entry.byte_count = 0;
        self.entries
            .retain(|e| !(e.priority == entry.priority && e.match_ == entry.match_));
        self.entries.push(entry);
        // Keep sorted by descending priority; stable sort preserves insertion
        // order among equal priorities (first-added wins lookups).
        self.entries.sort_by_key(|e| std::cmp::Reverse(e.priority));
    }

    /// OpenFlow MODIFY: swaps instructions of all flows whose match equals
    /// `match_`, at every priority (counters and timers preserved). Returns
    /// how many changed.
    pub fn modify(&mut self, match_: &Match, instructions: &[Instruction]) -> usize {
        let mut n = 0;
        for e in &mut self.entries {
            if e.match_ == *match_ {
                e.instructions = instructions.to_vec();
                n += 1;
            }
        }
        n
    }

    /// OpenFlow MODIFY_STRICT: like [`NaiveFlowTable::modify`] but only for
    /// flows at exactly `priority`.
    pub fn modify_strict(
        &mut self,
        match_: &Match,
        priority: u16,
        instructions: &[Instruction],
    ) -> usize {
        let mut n = 0;
        for e in &mut self.entries {
            if e.priority == priority && e.match_ == *match_ {
                e.instructions = instructions.to_vec();
                n += 1;
            }
        }
        n
    }

    /// Deletes all flows whose match equals `match_` (exact-match delete;
    /// the controller always deletes what it installed). A wildcard `match_`
    /// deletes everything. Returns removal records.
    pub fn delete(&mut self, match_: &Match, now: SimTime) -> Vec<Removed> {
        let mut removed = Vec::new();
        let mut kept = Vec::with_capacity(self.entries.len());
        for e in self.entries.drain(..) {
            if match_.is_empty() || e.match_ == *match_ {
                removed.push(Removed {
                    entry: e,
                    reason: RemovedReason::Delete,
                    at: now,
                });
            } else {
                kept.push(e);
            }
        }
        self.entries = kept;
        removed
    }

    /// Looks up the highest-priority matching flow, updating its counters and
    /// idle timer. Returns a clone of the matched entry's instructions plus
    /// its cookie.
    pub fn lookup(
        &mut self,
        view: &MatchView,
        frame_len: usize,
        now: SimTime,
    ) -> Option<(u64, Vec<Instruction>)> {
        let e = self.entries.iter_mut().find(|e| e.match_.matches(view))?;
        e.packet_count += 1;
        e.byte_count += frame_len as u64;
        e.last_hit = now;
        Some((e.cookie, e.instructions.clone()))
    }

    /// Read-only lookup (no counter updates).
    pub fn peek(&self, view: &MatchView) -> Option<&FlowEntry> {
        self.entries.iter().find(|e| e.match_.matches(view))
    }

    /// Removes every flow whose idle or hard timeout has elapsed at `now`,
    /// returning removal records (hard timeout takes precedence when both
    /// expired).
    pub fn expire(&mut self, now: SimTime) -> Vec<Removed> {
        let mut removed = Vec::new();
        let mut kept = Vec::with_capacity(self.entries.len());
        for e in self.entries.drain(..) {
            let hard_exp =
                e.hard_timeout != Duration::ZERO && now - e.installed_at >= e.hard_timeout;
            let idle_exp =
                e.idle_timeout != Duration::ZERO && now - e.last_hit >= e.idle_timeout;
            if hard_exp || idle_exp {
                removed.push(Removed {
                    entry: e,
                    reason: if hard_exp {
                        RemovedReason::HardTimeout
                    } else {
                        RemovedReason::IdleTimeout
                    },
                    at: now,
                });
            } else {
                kept.push(e);
            }
        }
        self.entries = kept;
        removed
    }

    /// The earliest instant at which some flow could expire, or `None` if no
    /// flow has a timeout.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.entries
            .iter()
            .flat_map(|e| {
                let idle =
                    (e.idle_timeout != Duration::ZERO).then(|| e.last_hit + e.idle_timeout);
                let hard =
                    (e.hard_timeout != Duration::ZERO).then(|| e.installed_at + e.hard_timeout);
                [idle, hard].into_iter().flatten()
            })
            .min()
    }
}
