//! Property tests: arbitrary supported messages round-trip byte-exactly and
//! the decoder is total (never panics) on arbitrary bytes.

use openflow::actions::{Action, Instruction};
use openflow::messages::{
    ErrorType, FlowModCommand, FlowStatsEntry, Message, PacketInReason, RemovedReason,
};
use openflow::oxm::{Match, OxmField};
use proptest::prelude::*;

fn arb_field() -> impl Strategy<Value = OxmField> {
    prop_oneof![
        any::<u32>().prop_map(OxmField::InPort),
        any::<[u8; 6]>().prop_map(OxmField::EthDst),
        any::<[u8; 6]>().prop_map(OxmField::EthSrc),
        any::<u16>().prop_map(OxmField::EthType),
        any::<u8>().prop_map(OxmField::IpProto),
        any::<[u8; 4]>().prop_map(OxmField::Ipv4Src),
        any::<[u8; 4]>().prop_map(OxmField::Ipv4Dst),
        any::<u16>().prop_map(OxmField::TcpSrc),
        any::<u16>().prop_map(OxmField::TcpDst),
    ]
}

fn arb_match() -> impl Strategy<Value = Match> {
    prop::collection::vec(arb_field(), 0..6)
        .prop_map(|fs| fs.into_iter().fold(Match::any(), |m, f| m.with(f)))
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (any::<u32>(), any::<u16>()).prop_map(|(port, max_len)| Action::Output { port, max_len }),
        arb_field().prop_map(Action::SetField),
    ]
}

fn arb_instructions() -> impl Strategy<Value = Vec<Instruction>> {
    prop::collection::vec(
        prop::collection::vec(arb_action(), 0..5).prop_map(Instruction::ApplyActions),
        0..3,
    )
}

fn arb_flow_stats_entry() -> impl Strategy<Value = FlowStatsEntry> {
    (
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u16>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        arb_match(),
    )
        .prop_map(
            |(duration_sec, priority, idle_timeout, hard_timeout, cookie, packets, bytes, match_)| {
                FlowStatsEntry {
                    table_id: 0,
                    duration_sec,
                    priority,
                    idle_timeout,
                    hard_timeout,
                    cookie,
                    packet_count: packets,
                    byte_count: bytes,
                    match_,
                }
            },
        )
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        Just(Message::Hello),
        (
            prop_oneof![
                Just(ErrorType::BadRequest),
                Just(ErrorType::BadAction),
                Just(ErrorType::FlowModFailed)
            ],
            any::<u16>(),
            prop::collection::vec(any::<u8>(), 0..64),
        )
            .prop_map(|(error_type, code, data)| Message::Error { error_type, code, data }),
        (any::<u8>(), arb_match())
            .prop_map(|(table_id, match_)| Message::FlowStatsRequest { table_id, match_ }),
        prop::collection::vec(arb_flow_stats_entry(), 0..4)
            .prop_map(|flows| Message::FlowStatsReply { flows }),
        Just(Message::FeaturesRequest),
        Just(Message::BarrierRequest),
        Just(Message::BarrierReply),
        prop::collection::vec(any::<u8>(), 0..64).prop_map(Message::EchoRequest),
        prop::collection::vec(any::<u8>(), 0..64).prop_map(Message::EchoReply),
        (any::<u64>(), any::<u32>(), any::<u8>()).prop_map(|(d, b, t)| Message::FeaturesReply {
            datapath_id: d,
            n_buffers: b,
            n_tables: t,
        }),
        (
            any::<u32>(),
            any::<u16>(),
            prop_oneof![
                Just(PacketInReason::NoMatch),
                Just(PacketInReason::Action),
                Just(PacketInReason::InvalidTtl)
            ],
            any::<u8>(),
            any::<u64>(),
            arb_match(),
            prop::collection::vec(any::<u8>(), 0..128),
        )
            .prop_map(|(buffer_id, total_len, reason, table_id, cookie, match_, data)| {
                Message::PacketIn {
                    buffer_id,
                    total_len,
                    reason,
                    table_id,
                    cookie,
                    match_,
                    data,
                }
            }),
        (
            any::<u32>(),
            any::<u32>(),
            prop::collection::vec(arb_action(), 0..5),
            prop::collection::vec(any::<u8>(), 0..128),
        )
            .prop_map(|(buffer_id, in_port, actions, data)| Message::PacketOut {
                buffer_id,
                in_port,
                actions,
                data,
            }),
        (
            any::<u64>(),
            any::<u8>(),
            prop_oneof![
                Just(FlowModCommand::Add),
                Just(FlowModCommand::Modify),
                Just(FlowModCommand::Delete)
            ],
            any::<u16>(),
            any::<u16>(),
            any::<u16>(),
            any::<u32>(),
            any::<u16>(),
            arb_match(),
            arb_instructions(),
        )
            .prop_map(
                |(
                    cookie,
                    table_id,
                    command,
                    idle_timeout,
                    hard_timeout,
                    priority,
                    buffer_id,
                    flags,
                    match_,
                    instructions,
                )| Message::FlowMod {
                    cookie,
                    table_id,
                    command,
                    idle_timeout,
                    hard_timeout,
                    priority,
                    buffer_id,
                    flags,
                    match_,
                    instructions,
                }
            ),
        (
            any::<u64>(),
            any::<u16>(),
            prop_oneof![
                Just(RemovedReason::IdleTimeout),
                Just(RemovedReason::HardTimeout),
                Just(RemovedReason::Delete)
            ],
            any::<u8>(),
            any::<u32>(),
            any::<u32>(),
            any::<u16>(),
            any::<u16>(),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_flat_map(
                |(
                    cookie,
                    priority,
                    reason,
                    table_id,
                    duration_sec,
                    duration_nsec,
                    idle_timeout,
                    hard_timeout,
                    packet_count,
                    byte_count,
                )| {
                    arb_match().prop_map(move |match_| Message::FlowRemoved {
                        cookie,
                        priority,
                        reason,
                        table_id,
                        duration_sec,
                        duration_nsec,
                        idle_timeout,
                        hard_timeout,
                        packet_count,
                        byte_count,
                        match_: match_.clone(),
                    })
                }
            ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn message_roundtrip(msg in arb_message(), xid in any::<u32>()) {
        let bytes = msg.encode(xid);
        let declared = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        prop_assert_eq!(declared, bytes.len());
        let (x, back, used) = Message::decode(&bytes).unwrap();
        prop_assert_eq!(x, xid);
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn decoder_total_on_corrupted_valid_messages(msg in arb_message(), flip in any::<(usize, u8)>()) {
        let mut bytes = msg.encode(7);
        let idx = flip.0 % bytes.len();
        bytes[idx] ^= flip.1 | 1;
        let _ = Message::decode(&bytes); // must not panic
    }

    #[test]
    fn match_roundtrip(m in arb_match()) {
        let mut buf = Vec::new();
        m.encode(&mut buf);
        prop_assert_eq!(buf.len() % 8, 0);
        let (back, used) = Match::decode(&buf).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(back, m);
    }
}
