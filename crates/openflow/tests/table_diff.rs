//! Property-based differential test: the indexed `FlowTable` must be
//! observably identical to the naive reference under arbitrary operation
//! sequences. The replay/compare harness lives in `openflow::diff` (shared
//! with the deterministic in-crate sweep that runs in offline builds);
//! proptest contributes seed generation and shrinking.

use proptest::prelude::*;

proptest! {
    /// Random add/modify/modify-strict/delete/lookup/peek/expire sequences
    /// produce identical lookup results, removal records (entries, final
    /// counters, reasons, order), table contents, and expiry scheduling on
    /// both implementations. `diff::check_seed` panics with the seed and
    /// step on any divergence.
    #[test]
    fn indexed_table_is_observably_naive(seed in any::<u64>()) {
        openflow::diff::check_seed(seed, 60);
    }

    /// Longer sequences push entries through wheel cascades and repeated
    /// expiry/reinstall cycles.
    #[test]
    fn long_sequences_stay_equivalent(seed in any::<u64>()) {
        openflow::diff::check_seed(seed, 250);
    }
}
