//! Property-based tests for the simulation kernel.

use desim::{
    Duration, EventQueue, Exponential, LogNormal, NaiveEventQueue, Sample, SimRng, SimTime,
    Summary,
};
use proptest::prelude::*;

/// One step of a differential queue schedule: `Push(delay)` schedules an
/// event `delay` ns after the last popped time, `Pop` extracts (a no-op on
/// empty queues so arbitrary sequences stay valid).
#[derive(Clone, Debug)]
enum QueueOp {
    Push(u64),
    Pop,
}

/// Delays spanning every calendar level: same-instant ties, the current
/// bucket (< 131 µs), the near ring (< 134 ms), the far ring (< 137 s), and
/// the overflow spill beyond it.
fn queue_op() -> impl Strategy<Value = QueueOp> {
    prop_oneof![
        3 => Just(QueueOp::Pop),
        1 => Just(QueueOp::Push(0)),
        2 => (1u64..100_000).prop_map(QueueOp::Push),
        2 => (100_000u64..100_000_000).prop_map(QueueOp::Push),
        2 => (100_000_000u64..100_000_000_000).prop_map(QueueOp::Push),
        1 => (100_000_000_000u64..500_000_000_000).prop_map(QueueOp::Push),
    ]
}

proptest! {
    /// Differential oracle: the calendar queue and the binary-heap reference
    /// pop identical `(time, payload)` sequences for arbitrary interleaved
    /// push/pop schedules — the determinism contract the engine swap rests
    /// on.
    #[test]
    fn calendar_matches_naive_reference(ops in prop::collection::vec(queue_op(), 1..400)) {
        let mut fast = EventQueue::new();
        let mut naive = NaiveEventQueue::new();
        let mut clock = 0u64;
        for (i, op) in ops.iter().enumerate() {
            match op {
                QueueOp::Push(delay) => {
                    let t = SimTime::from_nanos(clock + delay);
                    fast.push(t, i);
                    naive.push(t, i);
                }
                QueueOp::Pop => {
                    let a = fast.pop();
                    let b = naive.pop();
                    prop_assert_eq!(a, b, "divergence at op {}", i);
                    if let Some((t, _)) = a {
                        clock = t.as_nanos();
                    }
                }
            }
            prop_assert_eq!(fast.len(), naive.len());
            prop_assert_eq!(fast.peek_time(), naive.peek_time());
        }
        loop {
            let a = fast.pop();
            let b = naive.pop();
            prop_assert_eq!(a, b, "divergence during final drain");
            if a.is_none() {
                break;
            }
        }
    }

    /// Popping the queue always yields events in non-decreasing time order,
    /// FIFO among equal timestamps.
    #[test]
    fn queue_pops_sorted_stable(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, id)) = q.pop() {
            if let Some((lt, lid)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(id > lid, "FIFO violated among ties");
                }
            }
            last = Some((t, id));
        }
    }

    /// Duration float round-trips stay within one nanosecond.
    #[test]
    fn duration_f64_roundtrip(ns in 0u64..10_000_000_000_000) {
        let d = Duration::from_nanos(ns);
        let back = Duration::from_secs_f64(d.as_secs_f64());
        let diff = back.as_nanos().abs_diff(ns);
        // f64 has 53 bits of mantissa; at <= 1e13 ns the error is < 2 ns.
        prop_assert!(diff <= 2, "diff {diff}");
    }

    /// SimTime add/sub are inverses when no saturation happens.
    #[test]
    fn time_add_sub_inverse(base in 0u64..u64::MAX / 2, delta in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(base);
        let d = Duration::from_nanos(delta);
        prop_assert_eq!((t + d) - t, d);
    }

    /// Identically-seeded RNGs produce identical streams; forks differ.
    #[test]
    fn rng_determinism(seed in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// `below(n)` stays below n for arbitrary bounds.
    #[test]
    fn rng_below_in_bounds(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut r = SimRng::new(seed);
        for _ in 0..16 {
            prop_assert!(r.below(bound) < bound);
        }
    }

    /// Samplers never emit NaN and respect their sign constraints.
    #[test]
    fn samplers_are_sane(seed in any::<u64>(), lambda in 0.001f64..100.0, median in 0.001f64..10.0, sigma in 0.0f64..2.0) {
        let mut r = SimRng::new(seed);
        let e = Exponential::new(lambda);
        let ln = LogNormal::from_median(median, sigma);
        for _ in 0..32 {
            let x = e.sample(&mut r);
            prop_assert!(x.is_finite() && x >= 0.0);
            let y = ln.sample(&mut r);
            prop_assert!(y.is_finite() && y > 0.0);
        }
    }

    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentiles_monotone(values in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let s = Summary::new(values);
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = s.percentile(p).unwrap();
            prop_assert!(v >= prev);
            prop_assert!(v >= s.min().unwrap() && v <= s.max().unwrap());
            prev = v;
        }
    }

    /// The median of a sorted population sits between the extremes and equals
    /// the middle element for odd-length inputs.
    #[test]
    fn median_is_middle_for_odd(mut values in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        if values.len() % 2 == 0 { values.pop(); }
        let s = Summary::new(values.clone());
        values.sort_by(f64::total_cmp);
        prop_assert_eq!(s.median().unwrap(), values[values.len() / 2]);
    }
}
