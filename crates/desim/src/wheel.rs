//! Hierarchical timer wheel.
//!
//! Expiry bookkeeping for large collections: the flow tables and the
//! controller's FlowMemory hold hundreds of thousands of entries whose
//! deadlines must be found without scanning everything. A hashed,
//! hierarchical timing wheel (Varghese & Lauck; the same structure behind
//! kernel timers and OVS expiry) gives amortized O(1) schedule/cancel and
//! makes a sweep visit only the entries whose slots the clock actually
//! crossed.
//!
//! # Semantics
//!
//! * [`TimerWheel::schedule`] registers (or moves) a key's deadline.
//! * [`TimerWheel::cancel`] forgets a key. Cancellation is *lazy*: the slot
//!   copy stays behind and is discarded when its slot is next drained.
//! * [`TimerWheel::expired`] advances the wheel to `now` and returns every
//!   live key whose deadline is `<= now`, each exactly once. Keys are never
//!   returned early.
//! * [`TimerWheel::next_deadline`] is a constant-time (independent of entry
//!   count) *lower bound* on the earliest live deadline: never later than
//!   the true earliest, `None` iff the wheel is empty, and exact whenever no
//!   reschedule/cancel left a stale slot copy ahead of the clock. Callers
//!   treat it as "the next instant worth polling [`TimerWheel::expired`]";
//!   a spurious early poll drains the stale copies that caused it, so
//!   repeated polling always makes progress.

use std::collections::HashMap;
use std::hash::Hash;

use crate::time::SimTime;

/// log2 of the slots per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of levels. Level 0 ticks at ~1.05 ms (2^20 ns); level `l` at
/// 2^(20+6l) ns. Eight levels span 2^68 ns — the whole `u64` range.
const LEVELS: usize = 8;
/// log2 of the level-0 tick in nanoseconds.
const TICK_BITS: u32 = 20;

#[inline]
fn shift(level: usize) -> u32 {
    TICK_BITS + SLOT_BITS * level as u32
}

/// A hierarchical timer wheel over keys of type `K`.
///
/// Each key has at most one live deadline; rescheduling replaces it.
pub struct TimerWheel<K> {
    /// `LEVELS * SLOTS` buckets of `(key, deadline_ns)` pairs. Entries whose
    /// deadline no longer matches [`TimerWheel::deadlines`] are stale and
    /// dropped on drain.
    slots: Vec<Vec<(K, u64)>>,
    /// Per-slot lower bound on the deadlines it holds (`u64::MAX` when the
    /// slot was last drained empty).
    slot_min: Vec<u64>,
    /// Authoritative deadline per live key.
    deadlines: HashMap<K, u64>,
    /// The instant the wheel last advanced to.
    now_ns: u64,
    /// Recycled drain buffer: slot storage rotates through here during
    /// sweeps instead of being dropped, so steady-state sweeps allocate
    /// nothing.
    scratch: Vec<(K, u64)>,
}

impl<K: Eq + Hash + Clone> TimerWheel<K> {
    /// Creates an empty wheel positioned at time zero.
    pub fn new() -> TimerWheel<K> {
        TimerWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            slot_min: vec![u64::MAX; LEVELS * SLOTS],
            deadlines: HashMap::new(),
            now_ns: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of live (scheduled, uncancelled, unexpired) keys.
    pub fn len(&self) -> usize {
        self.deadlines.len()
    }

    /// `true` if no key is scheduled.
    pub fn is_empty(&self) -> bool {
        self.deadlines.is_empty()
    }

    /// The live deadline of `key`, if scheduled.
    pub fn deadline(&self, key: &K) -> Option<SimTime> {
        self.deadlines.get(key).map(|&ns| SimTime::from_nanos(ns))
    }

    /// Schedules (or moves) `key` to fire at `deadline`. A deadline at or
    /// before the wheel's current time fires on the next [`expired`] call.
    ///
    /// [`expired`]: TimerWheel::expired
    pub fn schedule(&mut self, key: K, deadline: SimTime) {
        let ns = deadline.as_nanos();
        if self.deadlines.get(&key) == Some(&ns) {
            return; // unchanged — avoid piling up duplicate slot copies
        }
        self.deadlines.insert(key.clone(), ns);
        self.place(key, ns);
    }

    /// Cancels `key`'s timer. Returns `true` if it was scheduled.
    pub fn cancel(&mut self, key: &K) -> bool {
        self.deadlines.remove(key).is_some()
    }

    /// Drops every scheduled key without advancing the clock.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            s.clear();
        }
        self.slot_min.fill(u64::MAX);
        self.deadlines.clear();
    }

    /// Inserts a slot copy for `(key, dl)` at the lowest level whose slot
    /// granularity can still distinguish the deadline from the current time.
    /// The chosen slot is never a passed one: either a future tick, or (only
    /// at level 0) the current partial tick, which [`TimerWheel::expired`]
    /// re-examines on every call.
    fn place(&mut self, key: K, dl: u64) {
        let eff = dl.max(self.now_ns);
        for level in 0..LEVELS {
            let sh = shift(level);
            let tick_dl = eff >> sh;
            let tick_now = self.now_ns >> sh;
            if tick_dl - tick_now < SLOTS as u64 {
                let idx = level * SLOTS + (tick_dl as usize & (SLOTS - 1));
                self.slots[idx].push((key, dl));
                if dl < self.slot_min[idx] {
                    self.slot_min[idx] = dl;
                }
                return;
            }
        }
        unreachable!("eight levels cover the full u64 nanosecond range");
    }

    /// Advances the wheel to `now` and returns every live key whose deadline
    /// has been reached, each exactly once. Only slots the clock crossed are
    /// visited, so a sweep costs O(entries actually due + slots crossed),
    /// not O(total entries). Time never moves backwards; a stale `now` just
    /// re-examines the current level-0 slot.
    pub fn expired(&mut self, now: SimTime) -> Vec<K> {
        let mut due = Vec::new();
        self.expired_into(now, &mut due);
        due
    }

    /// Batched form of [`TimerWheel::expired`]: appends due keys to `out`
    /// (which is *not* cleared) instead of allocating a fresh `Vec`. Hot
    /// expiry paths call this with a reused buffer so periodic sweeps are
    /// allocation-free; internally, drained slot storage is recycled through
    /// a scratch buffer rather than dropped.
    pub fn expired_into(&mut self, now: SimTime, out: &mut Vec<K>) {
        let new_now = now.as_nanos().max(self.now_ns);
        let old_now = self.now_ns;
        self.now_ns = new_now;
        for level in 0..LEVELS {
            let sh = shift(level);
            let old_t = old_now >> sh;
            let new_t = new_now >> sh;
            // Level 0 re-examines its current partial slot every call (that
            // is where just-due and clock-lagging entries live); higher
            // levels only process slots the clock newly entered. If more
            // than a full revolution passed, every slot is drained once.
            let start = if level == 0 { old_t } else { old_t + 1 };
            let start = start.max(new_t.saturating_sub(SLOTS as u64 - 1));
            if start > new_t {
                continue;
            }
            for t in start..=new_t {
                let idx = level * SLOTS + (t as usize & (SLOTS - 1));
                if self.slots[idx].is_empty() {
                    continue;
                }
                // Swap the slot's storage out through the scratch buffer so
                // its capacity is recycled instead of freed: the (empty)
                // scratch becomes the new slot Vec, and the drained Vec is
                // parked as the next scratch once emptied.
                let mut drained = std::mem::take(&mut self.scratch);
                std::mem::swap(&mut drained, &mut self.slots[idx]);
                self.slot_min[idx] = u64::MAX;
                for (k, dl) in drained.drain(..) {
                    if self.deadlines.get(&k) != Some(&dl) {
                        continue; // stale copy of a moved/cancelled timer
                    }
                    if dl <= new_now {
                        self.deadlines.remove(&k);
                        out.push(k);
                    } else {
                        // Entered a coarse slot early: cascade down.
                        self.place(k, dl);
                    }
                }
                self.scratch = drained;
            }
        }
    }

    /// A lower bound on the earliest live deadline, in time independent of
    /// the number of scheduled keys (it scans the fixed 512 slots at worst).
    /// `None` iff the wheel is empty; never later than the true earliest
    /// deadline; exact in the absence of stale slot copies.
    pub fn next_deadline(&self) -> Option<SimTime> {
        if self.deadlines.is_empty() {
            return None;
        }
        let mut best = u64::MAX;
        for level in 0..LEVELS {
            let cur = (self.now_ns >> shift(level)) as usize & (SLOTS - 1);
            for off in 0..SLOTS {
                let idx = level * SLOTS + ((cur + off) & (SLOTS - 1));
                if !self.slots[idx].is_empty() {
                    best = best.min(self.slot_min[idx]);
                    break;
                }
            }
        }
        debug_assert_ne!(best, u64::MAX, "live key with no slot copy");
        Some(SimTime::from_nanos(best))
    }
}

impl<K: Eq + Hash + Clone> Default for TimerWheel<K> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use crate::time::Duration;

    fn t(secs_milli: u64) -> SimTime {
        SimTime::from_millis(secs_milli)
    }

    #[test]
    fn fires_at_deadline_not_before() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.schedule(1, SimTime::from_secs(10));
        assert!(w.expired(SimTime::from_secs(9)).is_empty());
        assert_eq!(w.expired(SimTime::from_secs(10)), vec![1]);
        assert!(w.expired(SimTime::from_secs(11)).is_empty(), "only once");
        assert!(w.is_empty());
    }

    #[test]
    fn next_deadline_exact_without_staleness() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        assert_eq!(w.next_deadline(), None);
        w.schedule(1, SimTime::from_secs(12));
        w.schedule(2, SimTime::from_secs(11));
        w.schedule(3, SimTime::from_secs(40));
        assert_eq!(w.next_deadline(), Some(SimTime::from_secs(11)));
        assert_eq!(w.expired(SimTime::from_secs(11)), vec![2]);
        assert_eq!(w.next_deadline(), Some(SimTime::from_secs(12)));
    }

    #[test]
    fn reschedule_moves_the_deadline() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.schedule(7, SimTime::from_secs(5));
        w.schedule(7, SimTime::from_secs(9));
        assert_eq!(w.deadline(&7), Some(SimTime::from_secs(9)));
        assert!(w.expired(SimTime::from_secs(5)).is_empty());
        // The stale copy was drained; the bound is exact again.
        assert_eq!(w.next_deadline(), Some(SimTime::from_secs(9)));
        assert_eq!(w.expired(SimTime::from_secs(9)), vec![7]);
    }

    #[test]
    fn cancel_suppresses_firing() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.schedule(1, t(50));
        w.schedule(2, t(60));
        assert!(w.cancel(&1));
        assert!(!w.cancel(&1));
        assert_eq!(w.len(), 1);
        assert_eq!(w.expired(t(100)), vec![2]);
        assert!(w.next_deadline().is_none());
    }

    #[test]
    fn sub_tick_deadlines_resolve() {
        // Two deadlines inside the same ~1 ms level-0 tick.
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.schedule(1, SimTime::from_nanos(500));
        w.schedule(2, SimTime::from_nanos(900));
        assert!(w.expired(SimTime::from_nanos(499)).is_empty());
        assert_eq!(w.expired(SimTime::from_nanos(500)), vec![1]);
        assert_eq!(w.expired(SimTime::from_nanos(900)), vec![2]);
    }

    #[test]
    fn past_deadline_fires_on_next_sweep() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.expired(SimTime::from_secs(100));
        w.schedule(1, SimTime::from_secs(3)); // already in the past
        assert_eq!(w.expired(SimTime::from_secs(100)), vec![1]);
    }

    #[test]
    fn far_deadlines_cascade_down_levels() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        w.schedule(1, SimTime::from_secs(1000));
        w.schedule(2, SimTime::from_secs(1000) + Duration::from_millis(2));
        let mut now = SimTime::ZERO;
        // Stepwise advance in coarse jumps (capped short of the deadline):
        // never early, both exactly once.
        while now < SimTime::from_secs(999) {
            now = (now + Duration::from_secs(13)).min(SimTime::from_secs(999));
            assert!(w.expired(now).is_empty(), "early fire at {now}");
        }
        assert_eq!(w.expired(SimTime::from_secs(1000)), vec![1]);
        assert_eq!(
            w.expired(SimTime::from_secs(1000) + Duration::from_millis(2)),
            vec![2]
        );
    }

    /// Randomized soak: every scheduled key fires exactly once, at the first
    /// sweep at or after its deadline, and `next_deadline` never overshoots.
    #[test]
    fn random_soak_exactly_once_never_early_never_late() {
        for seed in 0..50u64 {
            let mut rng = SimRng::new(seed);
            let mut w: TimerWheel<u64> = TimerWheel::new();
            let n = 40 + (seed as usize % 60);
            let mut deadline_of = std::collections::HashMap::new();
            for k in 0..n as u64 {
                let dl = SimTime::from_nanos(rng.below(20_000_000_000)); // < 20 s
                w.schedule(k, dl);
                deadline_of.insert(k, dl);
            }
            let mut fired = std::collections::HashSet::new();
            let mut now = SimTime::ZERO;
            while now < SimTime::from_secs(25) {
                if let Some(nd) = w.next_deadline() {
                    let true_min = deadline_of
                        .iter()
                        .filter(|(k, _)| !fired.contains(*k))
                        .map(|(_, &d)| d)
                        .min()
                        .unwrap();
                    assert!(nd <= true_min, "bound overshoots: {nd:?} > {true_min:?}");
                }
                now += Duration::from_nanos(1 + rng.below(700_000_000));
                for k in w.expired(now) {
                    let dl = deadline_of[&k];
                    assert!(dl <= now, "key {k} fired early ({dl:?} > {now:?})");
                    assert!(fired.insert(k), "key {k} fired twice");
                }
                // Everything due must have fired by now.
                for (k, &dl) in &deadline_of {
                    if dl <= now {
                        assert!(fired.contains(k), "key {k} due at {dl:?} missed at {now:?}");
                    }
                }
            }
            assert_eq!(fired.len(), n, "seed {seed}: all keys fired");
            assert!(w.is_empty());
        }
    }
}
