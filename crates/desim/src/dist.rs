//! Latency-model distributions.
//!
//! Every timing in the simulated testbed (container start, image pull
//! throughput, API-server round trip, link jitter, ...) is drawn from a
//! [`Sample`] implementation. All samplers draw exclusively from the supplied
//! [`SimRng`], keeping experiments reproducible.
//!
//! Durations in the models are expressed in *seconds* as `f64` and converted
//! by callers via [`crate::Duration::from_secs_f64`]; sampling in seconds
//! keeps the parameters legible against the paper's reported numbers.

use crate::rng::SimRng;
use crate::time::Duration;

/// A source of random values of type `f64` (interpreted by convention as
/// seconds when used for latency models).
pub trait Sample {
    /// Draws one value.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// Draws one value and converts it to a non-negative [`Duration`].
    fn sample_duration(&self, rng: &mut SimRng) -> Duration {
        Duration::from_secs_f64(self.sample(rng))
    }
}

/// Always returns the same value. Useful for tests and for components the
/// paper reports as having negligible variance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Constant(pub f64);

impl Sample for Constant {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.0
    }
}

/// Uniform over `[lo, hi)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Uniform {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
}

impl Uniform {
    /// Creates a uniform sampler; `lo` must not exceed `hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "Uniform: lo > hi");
        Uniform { lo, hi }
    }
}

impl Sample for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.next_f64()
    }
}

/// Exponential with the given rate `lambda` (mean `1/lambda`). Models
/// memoryless inter-arrival gaps.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exponential {
    /// Rate parameter (events per second).
    pub lambda: f64,
}

impl Exponential {
    /// Creates an exponential sampler with rate `lambda > 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0, "Exponential: lambda must be positive");
        Exponential { lambda }
    }

    /// Creates an exponential sampler with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        Self::new(1.0 / mean)
    }
}

impl Sample for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse transform; (1 - u) avoids ln(0).
        let u = rng.next_f64();
        -(1.0 - u).ln() / self.lambda
    }
}

/// Normal (Gaussian) via the Marsaglia polar method.
///
/// For latency models prefer [`LogNormal`]; `Normal` can go negative and is
/// mostly useful as a building block or for additive jitter that callers clamp.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal {
    /// Mean.
    pub mean: f64,
    /// Standard deviation.
    pub std_dev: f64,
}

impl Normal {
    /// Creates a normal sampler; `std_dev` must be non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(std_dev >= 0.0, "Normal: negative std_dev");
        Normal { mean, std_dev }
    }

    fn standard(rng: &mut SimRng) -> f64 {
        loop {
            let u = 2.0 * rng.next_f64() - 1.0;
            let v = 2.0 * rng.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl Sample for Normal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.mean + self.std_dev * Normal::standard(rng)
    }
}

/// Log-normal, parameterised directly by the *median* and a multiplicative
/// spread `sigma` (the std-dev of the underlying normal in log space).
///
/// This parameterisation matches how the paper reports results: medians of
/// right-skewed timing populations. `median` is exactly the distribution
/// median, so calibrating a model to a published median is a one-liner.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogNormal {
    /// Median of the distribution (`exp(mu)`).
    pub median: f64,
    /// Log-space standard deviation.
    pub sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal sampler with the given median (> 0) and log-space
    /// sigma (>= 0).
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "LogNormal: median must be positive");
        assert!(sigma >= 0.0, "LogNormal: negative sigma");
        LogNormal { median, sigma }
    }
}

impl Sample for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let z = Normal::standard(rng);
        self.median * (self.sigma * z).exp()
    }
}

/// Adds a constant offset to another sampler: `offset + inner`. Models a
/// fixed floor (e.g. a mandatory syscall path) under a noisy component.
#[derive(Clone, Copy, Debug)]
pub struct Shifted<S> {
    /// Constant floor added to every draw.
    pub offset: f64,
    /// The noisy component.
    pub inner: S,
}

impl<S: Sample> Sample for Shifted<S> {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.offset + self.inner.sample(rng)
    }
}

/// Draws uniformly from a fixed set of observed values (with replacement).
/// Used to replay empirical timing populations.
#[derive(Clone, Debug)]
pub struct Empirical {
    values: Vec<f64>,
}

impl Empirical {
    /// Creates an empirical sampler over `values`.
    ///
    /// # Panics
    /// Panics if `values` is empty.
    pub fn new(values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "Empirical: no values");
        Empirical { values }
    }

    /// The underlying observations.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl Sample for Empirical {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.values[rng.below(self.values.len() as u64) as usize]
    }
}

/// A boxed, dynamically-typed sampler. The latency-model configuration
/// structs store these so models can be swapped per experiment.
pub type DynSample = Box<dyn Sample + Send + Sync>;

impl Sample for DynSample {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.as_ref().sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(s: &impl Sample, seed: u64, n: usize) -> f64 {
        let mut rng = SimRng::new(seed);
        (0..n).map(|_| s.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let mut rng = SimRng::new(0);
        let c = Constant(2.5);
        for _ in 0..10 {
            assert_eq!(c.sample(&mut rng), 2.5);
        }
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let u = Uniform::new(1.0, 3.0);
        let mut rng = SimRng::new(1);
        for _ in 0..10_000 {
            let x = u.sample(&mut rng);
            assert!((1.0..3.0).contains(&x));
        }
        assert!((mean_of(&u, 2, 100_000) - 2.0).abs() < 0.01);
    }

    #[test]
    fn exponential_mean_matches() {
        let e = Exponential::with_mean(0.25);
        let m = mean_of(&e, 3, 200_000);
        assert!((m - 0.25).abs() < 0.005, "mean {m}");
    }

    #[test]
    fn exponential_is_nonnegative() {
        let e = Exponential::new(10.0);
        let mut rng = SimRng::new(4);
        assert!((0..10_000).all(|_| e.sample(&mut rng) >= 0.0));
    }

    #[test]
    fn normal_mean_and_spread() {
        let n = Normal::new(5.0, 2.0);
        let m = mean_of(&n, 5, 200_000);
        assert!((m - 5.0).abs() < 0.02, "mean {m}");
        let mut rng = SimRng::new(6);
        let var: f64 = (0..200_000)
            .map(|_| {
                let x = n.sample(&mut rng) - 5.0;
                x * x
            })
            .sum::<f64>()
            / 200_000.0;
        assert!((var.sqrt() - 2.0).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn lognormal_median_matches() {
        let ln = LogNormal::from_median(0.5, 0.3);
        let mut rng = SimRng::new(7);
        let mut v: Vec<f64> = (0..100_001).map(|_| ln.sample(&mut rng)).collect();
        v.sort_by(f64::total_cmp);
        let med = v[v.len() / 2];
        assert!((med - 0.5).abs() < 0.01, "median {med}");
        assert!(v.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn lognormal_zero_sigma_is_constant() {
        let ln = LogNormal::from_median(1.25, 0.0);
        let mut rng = SimRng::new(8);
        for _ in 0..100 {
            assert!((ln.sample(&mut rng) - 1.25).abs() < 1e-12);
        }
    }

    #[test]
    fn shifted_adds_floor() {
        let s = Shifted { offset: 1.0, inner: Constant(0.5) };
        let mut rng = SimRng::new(9);
        assert_eq!(s.sample(&mut rng), 1.5);
    }

    #[test]
    fn empirical_draws_only_given_values() {
        let e = Empirical::new(vec![0.1, 0.2, 0.3]);
        let mut rng = SimRng::new(10);
        for _ in 0..1000 {
            let x = e.sample(&mut rng);
            assert!([0.1, 0.2, 0.3].contains(&x));
        }
    }

    #[test]
    fn sample_duration_clamps_negative() {
        let n = Normal::new(-5.0, 0.1);
        let mut rng = SimRng::new(11);
        assert_eq!(n.sample_duration(&mut rng), Duration::ZERO);
    }

    #[test]
    fn dyn_sample_boxing_works() {
        let d: DynSample = Box::new(Constant(0.75));
        let mut rng = SimRng::new(12);
        assert_eq!(d.sample(&mut rng), 0.75);
    }
}
