//! Simulated time.
//!
//! [`SimTime`] is an absolute instant, [`Duration`] a span; both are
//! nanosecond-resolution `u64` newtypes. At nanosecond resolution a `u64`
//! covers ~584 years of simulated time, far beyond the five-minute traces the
//! experiments replay.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time, in nanoseconds since the start of
/// the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`; saturates to zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<Duration> {
        self.0.checked_sub(earlier.0).map(Duration)
    }
}

impl Duration {
    /// A zero-length span.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable span.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a span from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Creates a span from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Creates a span from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Creates a span from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Creates a span from fractional seconds. Negative or non-finite inputs
    /// clamp to zero; values beyond `u64` nanoseconds clamp to [`Duration::MAX`].
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return Duration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            Duration::MAX
        } else {
            Duration(ns as u64)
        }
    }

    /// Creates a span from fractional milliseconds (clamping like
    /// [`Duration::from_secs_f64`]).
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if this span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by a float factor, clamping at the representable range.
    pub fn mul_f64(self, factor: f64) -> Duration {
        Duration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        debug_assert!(self >= rhs, "SimTime subtraction went negative");
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        debug_assert!(self >= rhs, "Duration subtraction went negative");
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&fmt_duration(*self))
    }
}

/// Renders a span with an automatically chosen unit (`1.500s`, `15.000ms`,
/// `15.000us`, `15ns`). This is the single duration formatter the workspace
/// shares — error messages, span timelines, and report tables all route
/// through it so the same span always reads the same way.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3}s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", d.as_millis_f64())
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1000));
        assert_eq!(Duration::from_millis(1), Duration::from_micros(1000));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + Duration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), Duration::from_millis(5));
        assert_eq!(Duration::from_millis(4) * 3, Duration::from_millis(12));
        assert_eq!(Duration::from_millis(12) / 3, Duration::from_millis(4));
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(
            SimTime::from_secs(1).saturating_since(SimTime::from_secs(2)),
            Duration::ZERO
        );
        assert_eq!(
            SimTime::from_secs(2).checked_since(SimTime::from_secs(1)),
            Some(Duration::from_secs(1))
        );
        assert_eq!(SimTime::from_secs(1).checked_since(SimTime::from_secs(2)), None);
        assert_eq!(Duration::MAX.saturating_add(Duration::from_secs(1)), Duration::MAX);
        assert_eq!(Duration::ZERO.saturating_sub(Duration::from_secs(1)), Duration::ZERO);
    }

    #[test]
    fn float_conversions_clamp() {
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NAN), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::INFINITY), Duration::MAX);
        let d = Duration::from_secs_f64(0.25);
        assert_eq!(d, Duration::from_millis(250));
        assert!((d.as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", Duration::from_nanos(15)), "15ns");
        assert_eq!(format!("{}", Duration::from_micros(15)), "15.000us");
        assert_eq!(format!("{}", Duration::from_millis(15)), "15.000ms");
        assert_eq!(format!("{}", Duration::from_secs(15)), "15.000s");
    }

    #[test]
    fn fmt_duration_matches_display() {
        for d in [
            Duration::from_nanos(7),
            Duration::from_micros(42),
            Duration::from_millis(350),
            Duration::from_secs(12),
        ] {
            assert_eq!(fmt_duration(d), format!("{d}"));
        }
    }

    #[test]
    fn mul_f64_scales() {
        let d = Duration::from_millis(100).mul_f64(2.5);
        assert_eq!(d, Duration::from_millis(250));
    }
}
