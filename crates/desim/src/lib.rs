//! `desim` — deterministic discrete-event simulation kernel.
//!
//! This crate is the foundation of the `transparent-edge-rs` reproduction: it
//! provides simulated time, a stable-ordered event queue, a seedable PRNG with
//! the distribution samplers needed by the latency models, and the summary
//! statistics (median / percentiles) used to report experiment results.
//!
//! Everything here is deterministic: the same seed and the same sequence of
//! calls produce bit-identical results on every platform, which the test
//! suites of the higher-level crates rely on.
//!
//! # Quick example
//!
//! ```
//! use desim::{Engine, SimTime, Duration};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping(u32) }
//!
//! let mut engine: Engine<Ev> = Engine::new();
//! engine.schedule_in(Duration::from_millis(5), Ev::Ping(1));
//! engine.schedule_in(Duration::from_millis(2), Ev::Ping(2));
//!
//! let mut seen = Vec::new();
//! while let Some((t, ev)) = engine.pop() {
//!     seen.push((t, ev));
//! }
//! assert_eq!(seen[0].0, SimTime::from_millis(2));
//! assert!(matches!(seen[0].1, Ev::Ping(2)));
//! ```

#![warn(missing_docs)]

pub mod calendar;
pub mod dist;
pub mod engine;
pub mod fault;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod wheel;

pub use calendar::EventQueue;
pub use dist::{Constant, Empirical, Exponential, LogNormal, Normal, Sample, Shifted, Uniform};
pub use engine::Engine;
pub use fault::{FaultInjector, FaultPlan, RetryPolicy};
pub use queue::NaiveEventQueue;
pub use rng::SimRng;
pub use stats::{Histogram, LogHistogram, Summary};
pub use time::{fmt_duration, Duration, SimTime};
pub use wheel::TimerWheel;
