//! Summary statistics for experiment reporting.
//!
//! The paper reports medians of timing populations; [`Summary`] computes
//! those plus the usual descriptive statistics and simple fixed-width
//! histograms used to render the request/deployment distribution figures.

use crate::time::Duration;

/// Descriptive statistics over a population of `f64` observations.
///
/// Construction sorts a copy of the data once; all queries are then O(1) or
/// O(log n).
#[derive(Clone, Debug)]
pub struct Summary {
    sorted: Vec<f64>,
    sum: f64,
}

impl Summary {
    /// Builds a summary from observations. Non-finite values are rejected.
    ///
    /// # Panics
    /// Panics if any observation is NaN or infinite.
    pub fn new(mut values: Vec<f64>) -> Self {
        assert!(
            values.iter().all(|v| v.is_finite()),
            "Summary: non-finite observation"
        );
        values.sort_by(f64::total_cmp);
        let sum = values.iter().sum();
        Summary { sorted: values, sum }
    }

    /// Builds a summary from durations, in seconds.
    pub fn from_durations(values: impl IntoIterator<Item = Duration>) -> Self {
        Self::new(values.into_iter().map(|d| d.as_secs_f64()).collect())
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if there are no observations.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.sum / self.len() as f64)
        }
    }

    /// Population standard deviation, or `None` if empty.
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self
            .sorted
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / self.len() as f64;
        Some(var.sqrt())
    }

    /// Smallest observation.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest observation.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// The median (50th percentile).
    pub fn median(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Linear-interpolated percentile `p` in `[0, 100]`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.is_empty() {
            return None;
        }
        let n = self.sorted.len();
        if n == 1 {
            return Some(self.sorted[0]);
        }
        let rank = p / 100.0 * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Some(self.sorted[lo] + (self.sorted[hi] - self.sorted[lo]) * frac)
    }

    /// The sorted observations.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// A bootstrap 95 % confidence interval for the median: resamples the
    /// population `resamples` times with replacement and takes the 2.5th and
    /// 97.5th percentiles of the resampled medians. Returns `None` for
    /// populations smaller than two observations.
    pub fn median_ci95(&self, resamples: usize, rng: &mut crate::SimRng) -> Option<(f64, f64)> {
        if self.sorted.len() < 2 || resamples == 0 {
            return None;
        }
        let n = self.sorted.len();
        let mut medians = Vec::with_capacity(resamples);
        let mut sample = vec![0.0; n];
        for _ in 0..resamples {
            for slot in sample.iter_mut() {
                *slot = self.sorted[rng.below(n as u64) as usize];
            }
            sample.sort_by(f64::total_cmp);
            medians.push(sample[n / 2]);
        }
        let s = Summary::new(medians);
        Some((s.percentile(2.5)?, s.percentile(97.5)?))
    }
}

/// A fixed-width histogram over `[0, width * bins)`, used to render the
/// per-second request/deployment timelines (Figs. 9 and 10).
#[derive(Clone, Debug)]
pub struct Histogram {
    bin_width: f64,
    counts: Vec<u64>,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` buckets of `bin_width` each.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `bin_width <= 0`.
    pub fn new(bin_width: f64, bins: usize) -> Self {
        assert!(bins > 0 && bin_width > 0.0, "degenerate histogram");
        Histogram {
            bin_width,
            counts: vec![0; bins],
            overflow: 0,
        }
    }

    /// Records one observation at coordinate `x` (negative values land in
    /// bucket 0).
    pub fn record(&mut self, x: f64) {
        let idx = (x.max(0.0) / self.bin_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded observations (including overflow).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow
    }

    /// Largest single-bucket count.
    pub fn peak(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Width of each bucket.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }
}

/// Sub-buckets per power-of-two octave in a [`LogHistogram`]. Eight linear
/// sub-buckets bound the relative quantile error at ~6 %.
const LOG_SUB: u64 = 8;

/// A log-scale histogram over `u64` nanosecond observations, sized for
/// always-on metrics: fixed memory (one bucket per octave sub-division over
/// the whole `u64` range), O(1) record, and approximate quantiles good to a
/// few percent — plenty for p50/p95/p99 reporting where the populations span
/// microseconds to minutes.
///
/// Unlike [`Summary`] it never stores observations, so it can sit on the
/// telemetry hot path without unbounded growth.
#[derive(Clone, Debug, Default)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for `value`: octave (floor log2) plus a linear
    /// sub-position within the octave.
    fn bucket(value: u64) -> usize {
        if value < LOG_SUB {
            return value as usize;
        }
        let octave = 63 - value.leading_zeros() as u64;
        // Shift so the top bits after the leading one select the sub-bucket.
        let sub = (value >> (octave - 3)) & (LOG_SUB - 1);
        (octave * LOG_SUB + sub) as usize
    }

    /// Lower bound of bucket `idx` (inverse of [`Self::bucket`]).
    fn bucket_floor(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < LOG_SUB {
            return idx;
        }
        let octave = idx / LOG_SUB;
        let sub = idx % LOG_SUB;
        (1u64 << octave) + (sub << (octave - 3))
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let idx = Self::bucket(value);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a [`Duration`] in nanoseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_nanos());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact largest observation, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Approximate percentile `p` in `[0, 100]`: the lower bound of the
    /// bucket holding the rank-`p` observation, clamped to the exact
    /// min/max. Relative error is bounded by the sub-bucket width (~6 %).
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.count == 0 {
            return None;
        }
        let rank = (p / 100.0 * self.count as f64).ceil().max(1.0) as u64;
        if rank >= self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_floor(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.median(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.std_dev(), None);
    }

    #[test]
    fn single_value() {
        let s = Summary::new(vec![3.0]);
        assert_eq!(s.mean(), Some(3.0));
        assert_eq!(s.median(), Some(3.0));
        assert_eq!(s.percentile(0.0), Some(3.0));
        assert_eq!(s.percentile(100.0), Some(3.0));
        assert_eq!(s.std_dev(), Some(0.0));
    }

    #[test]
    fn median_odd_and_even() {
        let odd = Summary::new(vec![5.0, 1.0, 3.0]);
        assert_eq!(odd.median(), Some(3.0));
        let even = Summary::new(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(even.median(), Some(2.5));
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Summary::new((1..=5).map(|i| i as f64).collect());
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(25.0), Some(2.0));
        assert_eq!(s.percentile(100.0), Some(5.0));
        assert_eq!(s.percentile(87.5), Some(4.5));
    }

    #[test]
    fn mean_and_std() {
        let s = Summary::new(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean(), Some(5.0));
        assert_eq!(s.std_dev(), Some(2.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        Summary::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn from_durations_converts_to_seconds() {
        let s = Summary::from_durations(vec![
            Duration::from_millis(500),
            Duration::from_millis(1500),
        ]);
        assert_eq!(s.mean(), Some(1.0));
    }

    #[test]
    fn median_ci_brackets_the_median() {
        let mut rng = crate::SimRng::new(7);
        // A population with a clear median of ~0.5.
        let values: Vec<f64> = (0..500)
            .map(|_| 0.5 + 0.1 * (rng.next_f64() - 0.5))
            .collect();
        let s = Summary::new(values);
        let med = s.median().unwrap();
        let (lo, hi) = s.median_ci95(200, &mut rng).unwrap();
        assert!(lo <= med && med <= hi, "{lo} <= {med} <= {hi}");
        assert!(hi - lo < 0.02, "tight CI for 500 samples: [{lo}, {hi}]");
    }

    #[test]
    fn median_ci_degenerate_cases() {
        let mut rng = crate::SimRng::new(1);
        assert!(Summary::new(vec![]).median_ci95(100, &mut rng).is_none());
        assert!(Summary::new(vec![1.0]).median_ci95(100, &mut rng).is_none());
        assert!(Summary::new(vec![1.0, 2.0]).median_ci95(0, &mut rng).is_none());
        // Constant population: zero-width interval.
        let (lo, hi) = Summary::new(vec![3.0; 10]).median_ci95(50, &mut rng).unwrap();
        assert_eq!((lo, hi), (3.0, 3.0));
    }

    #[test]
    fn log_histogram_small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(7));
        assert_eq!(h.percentile(0.0), Some(0));
        assert_eq!(h.percentile(100.0), Some(7));
    }

    #[test]
    fn log_histogram_quantiles_within_sub_bucket_error() {
        let mut h = LogHistogram::new();
        // Uniform 1..=100_000 ns: p50 ≈ 50_000, p99 ≈ 99_000.
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0).unwrap() as f64;
        let p99 = h.percentile(99.0).unwrap() as f64;
        assert!((p50 - 50_000.0).abs() / 50_000.0 < 0.07, "p50={p50}");
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.07, "p99={p99}");
        assert_eq!(h.percentile(100.0), Some(100_000));
        assert!((h.mean().unwrap() - 50_000.5).abs() < 1.0);
    }

    #[test]
    fn log_histogram_merge_equals_combined_record() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in [3u64, 900, 1_000_000, 17] {
            a.record(v);
            all.record(v);
        }
        for v in [40_000u64, 5, 123_456_789] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for p in [0.0, 25.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(a.percentile(p), all.percentile(p));
        }
        // Merging an empty histogram is a no-op.
        let before = a.percentile(50.0);
        a.merge(&LogHistogram::new());
        assert_eq!(a.percentile(50.0), before);
        assert!(LogHistogram::new().percentile(50.0).is_none());
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(1.0, 3);
        h.record(0.5);
        h.record(1.2);
        h.record(1.9);
        h.record(2.0);
        h.record(99.0);
        h.record(-1.0); // clamps into bucket 0
        assert_eq!(h.counts(), &[2, 2, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 6);
        assert_eq!(h.peak(), 2);
        assert_eq!(h.bin_width(), 1.0);
    }
}
