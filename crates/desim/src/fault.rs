//! Seedable fault injection and retry policies.
//!
//! The deployment pipeline (Pull → Create → Scale Up → port-confirm) is
//! exercised under *injected* failures: a [`FaultPlan`] describes per-phase
//! failure probabilities, and each injection site owns a [`FaultInjector`]
//! derived from the plan. Two invariants make chaos runs useful:
//!
//! 1. **Determinism** — an injector's decisions come from its own
//!    [`SimRng`] stream, seeded from `plan.seed ^ site label`. The same plan
//!    and the same sequence of operations produce the same faults.
//! 2. **Zero-rate transparency** — with every probability at `0.0` an
//!    injector never fires, and because it draws from its *own* stream (and
//!    short-circuits on zero probabilities), the main simulation RNGs see
//!    exactly the seed's draw sequence: fault-rate-0 runs are byte-identical
//!    to runs without any injector wired in.
//!
//! [`RetryPolicy`] is the recovery side: capped exponential backoff with
//! multiplicative jitter and a per-phase deadline, used by the Dispatcher to
//! bound how long a held request can wait before falling back to the cloud.

use crate::rng::SimRng;
use crate::time::Duration;

/// Per-phase fault probabilities for a chaos run.
///
/// All probabilities are clamped to `[0, 1]` at draw time; the default plan
/// injects nothing. Sites that model *slowdowns* rather than hard failures
/// (link flaps, readiness-probe flaps) additionally scale or delay by the
/// associated knob.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector streams (independent of the simulation seed).
    pub seed: u64,
    /// Probability that a registry pull attempt fails mid-transfer.
    pub pull_failure: f64,
    /// Per-layer probability of a link flap slowing that layer's transfer.
    pub pull_slowdown: f64,
    /// Transfer-time multiplier for a flapped layer (applied to that layer
    /// only, scaled by a uniform draw in `[0.5, 1.5)`).
    pub pull_slowdown_factor: f64,
    /// Probability that a container create call fails.
    pub create_failure: f64,
    /// Probability that a task start call fails outright.
    pub start_failure: f64,
    /// Probability that a started task crashes before becoming ready.
    pub crash_after_start: f64,
    /// Probability that the Kubernetes scheduler rejects a scale-up's pod.
    pub scale_up_rejection: f64,
    /// Probability that a pod's readiness probe flaps, delaying readiness.
    pub probe_flap: f64,
    /// Median extra readiness delay for a flapped probe (scaled by a uniform
    /// draw in `[0.5, 1.5)`).
    pub probe_flap_delay: Duration,
    /// Probability that a *Ready* instance crashes while serving traffic
    /// (post-ready runtime failure, per observation window).
    pub crash_while_serving: f64,
    /// Probability that an entire edge zone goes dark for a window
    /// (per observation window).
    pub zone_outage: f64,
    /// Median outage duration for a dark zone (scaled by a uniform draw in
    /// `[0.5, 1.5)`).
    pub zone_outage_window: Duration,
    /// Probability that the switch↔controller OpenFlow channel drops
    /// (per observation window). The switch keeps forwarding on its
    /// installed flows; control messages are lost until reconnect.
    pub channel_loss: f64,
    /// Median time before a dropped channel reconnects (scaled by a uniform
    /// draw in `[0.5, 1.5)`).
    pub channel_reconnect_delay: Duration,
    /// Probability that the controller process itself crashes during the
    /// run (drawn once per run, not per window). While the controller is
    /// down every switch keeps forwarding on its installed rules; packet-ins
    /// go unanswered until the restarted controller recovers.
    pub controller_crash: f64,
    /// Median time before a crashed controller process is restarted (scaled
    /// by a uniform draw in `[0.5, 1.5)`).
    pub controller_restart_delay: Duration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            pull_failure: 0.0,
            pull_slowdown: 0.0,
            pull_slowdown_factor: 4.0,
            create_failure: 0.0,
            start_failure: 0.0,
            crash_after_start: 0.0,
            scale_up_rejection: 0.0,
            probe_flap: 0.0,
            probe_flap_delay: Duration::from_secs(2),
            crash_while_serving: 0.0,
            zone_outage: 0.0,
            zone_outage_window: Duration::from_secs(30),
            channel_loss: 0.0,
            channel_reconnect_delay: Duration::from_secs(5),
            controller_crash: 0.0,
            controller_restart_delay: Duration::from_secs(3),
        }
    }
}

impl FaultPlan {
    /// A plan with every *deployment-phase* fault probability set to `rate`
    /// (the chaos experiment's uniform per-phase fault rate). Post-ready
    /// runtime faults stay at zero — see [`FaultPlan::runtime`].
    pub fn uniform(rate: f64, seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            pull_failure: rate,
            pull_slowdown: rate,
            create_failure: rate,
            start_failure: rate,
            crash_after_start: rate,
            scale_up_rejection: rate,
            probe_flap: rate,
            ..FaultPlan::default()
        }
    }

    /// A plan with every *post-ready runtime* fault probability set to
    /// `rate` (instance crashes while serving, zone outages, OpenFlow
    /// channel loss) and all deployment-phase faults at zero — the
    /// runtime-chaos experiment's knob.
    pub fn runtime(rate: f64, seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            crash_while_serving: rate,
            zone_outage: rate,
            channel_loss: rate,
            ..FaultPlan::default()
        }
    }

    /// `true` if any fault can ever fire. Harnesses skip wiring injectors
    /// for disabled plans, keeping fault-free runs bit-identical to builds
    /// that predate fault injection.
    pub fn enabled(&self) -> bool {
        [
            self.pull_failure,
            self.pull_slowdown,
            self.create_failure,
            self.start_failure,
            self.crash_after_start,
            self.scale_up_rejection,
            self.probe_flap,
            self.crash_while_serving,
            self.zone_outage,
            self.channel_loss,
            self.controller_crash,
        ]
        .iter()
        .any(|&p| p > 0.0)
    }

    /// `true` if any *post-ready runtime* fault (crash-while-serving, zone
    /// outage, channel loss) can fire. Harnesses only schedule runtime
    /// fault-injection sweeps when this holds, so deployment-only chaos
    /// runs stay byte-identical to builds that predate runtime faults.
    pub fn runtime_enabled(&self) -> bool {
        [
            self.crash_while_serving,
            self.zone_outage,
            self.channel_loss,
            self.controller_crash,
        ]
        .iter()
        .any(|&p| p > 0.0)
    }

    /// Derives the injector for one injection site. Distinct `label`s give
    /// sites decorrelated decision streams under the same plan.
    pub fn injector(&self, label: u64) -> FaultInjector {
        FaultInjector {
            plan: self.clone(),
            rng: SimRng::new(self.seed ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }
}

/// One injection site's view of a [`FaultPlan`]: the plan plus a private
/// RNG stream for its decisions.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SimRng,
}

impl FaultInjector {
    /// Draws a fault decision, never touching the stream for `p <= 0`
    /// (keeps the site's stream aligned across plans that disable only some
    /// faults).
    fn fires(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.chance(p)
    }

    /// Should this pull attempt fail mid-transfer?
    pub fn pull_fails(&mut self) -> bool {
        let p = self.plan.pull_failure;
        self.fires(p)
    }

    /// How far through the transfer a failed pull got, in `[0, 1)`.
    pub fn partial_fraction(&mut self) -> f64 {
        self.rng.next_f64()
    }

    /// If this layer's link flaps, the factor its transfer time grows by
    /// (always `> 1`).
    pub fn pull_flap_factor(&mut self) -> Option<f64> {
        let p = self.plan.pull_slowdown;
        if self.fires(p) {
            let scale = 0.5 + self.rng.next_f64();
            Some(1.0 + (self.plan.pull_slowdown_factor - 1.0).max(0.0) * scale)
        } else {
            None
        }
    }

    /// Should this container create call fail?
    pub fn create_fails(&mut self) -> bool {
        let p = self.plan.create_failure;
        self.fires(p)
    }

    /// Should this task start call fail outright?
    pub fn start_fails(&mut self) -> bool {
        let p = self.plan.start_failure;
        self.fires(p)
    }

    /// Should this started task crash before readiness? Returns the position
    /// within the start→ready window, in `[0, 1)`, at which it crashes.
    pub fn crashes_after_start(&mut self) -> Option<f64> {
        let p = self.plan.crash_after_start;
        if self.fires(p) {
            Some(self.rng.next_f64())
        } else {
            None
        }
    }

    /// Should the scheduler reject this pod?
    pub fn scale_up_rejected(&mut self) -> bool {
        let p = self.plan.scale_up_rejection;
        self.fires(p)
    }

    /// If this pod's readiness probe flaps, the extra delay before it turns
    /// Ready.
    pub fn probe_flap(&mut self) -> Option<Duration> {
        let p = self.plan.probe_flap;
        if self.fires(p) {
            let scale = 0.5 + self.rng.next_f64();
            Some(self.plan.probe_flap_delay.mul_f64(scale))
        } else {
            None
        }
    }

    /// Does a Ready instance crash during this observation window? Returns
    /// the position within the window, in `[0, 1)`, at which it dies.
    pub fn crashes_while_serving(&mut self) -> Option<f64> {
        let p = self.plan.crash_while_serving;
        if self.fires(p) {
            Some(self.rng.next_f64())
        } else {
            None
        }
    }

    /// Does the whole zone go dark during this observation window? Returns
    /// `(position, outage_duration)`: the position within the window, in
    /// `[0, 1)`, at which the outage starts, and how long the zone stays
    /// dark (median `zone_outage_window`, scaled by a uniform draw in
    /// `[0.5, 1.5)`).
    pub fn zone_outage(&mut self) -> Option<(f64, Duration)> {
        let p = self.plan.zone_outage;
        if self.fires(p) {
            let pos = self.rng.next_f64();
            let scale = 0.5 + self.rng.next_f64();
            Some((pos, self.plan.zone_outage_window.mul_f64(scale)))
        } else {
            None
        }
    }

    /// Does the switch↔controller channel drop during this observation
    /// window? Returns `(position, reconnect_delay)`: the position within
    /// the window, in `[0, 1)`, at which the channel drops, and how long it
    /// stays down (median `channel_reconnect_delay`, scaled by a uniform
    /// draw in `[0.5, 1.5)`).
    pub fn channel_drops(&mut self) -> Option<(f64, Duration)> {
        let p = self.plan.channel_loss;
        if self.fires(p) {
            let pos = self.rng.next_f64();
            let scale = 0.5 + self.rng.next_f64();
            Some((pos, self.plan.channel_reconnect_delay.mul_f64(scale)))
        } else {
            None
        }
    }

    /// Does the controller process crash during this run? Drawn once per
    /// run by the harness. Returns `(position, restart_delay)`: the
    /// position within the run's horizon, in `[0, 1)`, at which the
    /// controller dies, and how long it stays down before the restarted
    /// process begins recovery (median `controller_restart_delay`, scaled
    /// by a uniform draw in `[0.5, 1.5)`).
    pub fn controller_crashes(&mut self) -> Option<(f64, Duration)> {
        let p = self.plan.controller_crash;
        if self.fires(p) {
            let pos = self.rng.next_f64();
            let scale = 0.5 + self.rng.next_f64();
            Some((pos, self.plan.controller_restart_delay.mul_f64(scale)))
        } else {
            None
        }
    }
}

/// Capped exponential backoff with multiplicative jitter and a per-phase
/// deadline.
///
/// The delay before retry number `attempt` (0-based) is
/// `min(cap, base · multiplier^attempt · (1 + jitter · u))` with
/// `u ∈ [0, 1)`. Delays are monotone non-decreasing in `attempt` whenever
/// `multiplier ≥ 1 + jitter` (the default), because the un-jittered value
/// grows by at least the largest possible jitter factor per step; the `min`
/// with `cap` preserves monotonicity and bounds every delay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed per phase (values ≤ 1 mean no retries).
    pub max_attempts: u32,
    /// Delay before the first retry (before jitter).
    pub base: Duration,
    /// Growth factor per retry.
    pub multiplier: f64,
    /// Upper bound on any single delay (after jitter).
    pub cap: Duration,
    /// Jitter fraction: each delay is scaled by `1 + jitter·u`, `u ∈ [0,1)`.
    pub jitter: f64,
    /// Budget for one phase, measured from the phase's first attempt; a
    /// retry that would begin past the deadline is not made.
    pub phase_deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(250),
            multiplier: 2.0,
            cap: Duration::from_secs(5),
            jitter: 0.25,
            phase_deadline: Duration::from_secs(30),
        }
    }
}

impl RetryPolicy {
    /// The backoff delay before retry `attempt` (0-based). Draws exactly one
    /// value from `rng` (the jitter).
    pub fn delay(&self, attempt: u32, rng: &mut SimRng) -> Duration {
        let exp = self.base.as_secs_f64() * self.multiplier.powi(attempt.min(64) as i32);
        let jittered = exp * (1.0 + self.jitter.max(0.0) * rng.next_f64());
        Duration::from_secs_f64(jittered.min(self.cap.as_secs_f64()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_disabled_and_never_fires() {
        let plan = FaultPlan::default();
        assert!(!plan.enabled());
        assert!(!plan.runtime_enabled());
        let mut inj = plan.injector(0x11);
        for _ in 0..100 {
            assert!(!inj.pull_fails());
            assert!(inj.pull_flap_factor().is_none());
            assert!(!inj.create_fails());
            assert!(!inj.start_fails());
            assert!(inj.crashes_after_start().is_none());
            assert!(!inj.scale_up_rejected());
            assert!(inj.probe_flap().is_none());
            assert!(inj.crashes_while_serving().is_none());
            assert!(inj.zone_outage().is_none());
            assert!(inj.channel_drops().is_none());
            assert!(inj.controller_crashes().is_none());
        }
    }

    #[test]
    fn uniform_plan_keeps_runtime_faults_at_zero() {
        // The deployment-chaos knob must not start injecting runtime faults:
        // existing chaos figures are pinned to the uniform plan's stream.
        let plan = FaultPlan::uniform(1.0, 3);
        assert!(plan.enabled());
        assert!(!plan.runtime_enabled());
        let mut inj = plan.injector(0x12);
        for _ in 0..100 {
            assert!(inj.crashes_while_serving().is_none());
            assert!(inj.zone_outage().is_none());
            assert!(inj.channel_drops().is_none());
            assert!(inj.controller_crashes().is_none());
        }
    }

    #[test]
    fn runtime_plan_leaves_controller_crash_at_zero() {
        // `runtime()` pins PR 5's committed runtime-chaos figures; the
        // controller-crash knob must be opted into explicitly.
        let plan = FaultPlan::runtime(1.0, 6);
        assert_eq!(plan.controller_crash, 0.0);
        let mut inj = plan.injector(400);
        for _ in 0..100 {
            assert!(inj.controller_crashes().is_none());
        }
    }

    #[test]
    fn controller_crash_plan_is_runtime_enabled_and_bounded() {
        let plan = FaultPlan {
            controller_crash: 1.0,
            ..FaultPlan::default()
        };
        assert!(plan.enabled());
        assert!(plan.runtime_enabled());
        let mut inj = plan.injector(400);
        for _ in 0..100 {
            let (pos, delay) = inj.controller_crashes().unwrap();
            assert!((0.0..1.0).contains(&pos));
            assert!(delay >= plan.controller_restart_delay.mul_f64(0.5));
            assert!(delay < plan.controller_restart_delay.mul_f64(1.5));
        }
    }

    #[test]
    fn runtime_plan_fires_runtime_faults_only() {
        let plan = FaultPlan::runtime(1.0, 4);
        assert!(plan.enabled());
        assert!(plan.runtime_enabled());
        let mut inj = plan.injector(0x13);
        for _ in 0..100 {
            assert!(!inj.pull_fails());
            assert!(!inj.create_fails());
            let pos = inj.crashes_while_serving().unwrap();
            assert!((0.0..1.0).contains(&pos));
            let (pos, window) = inj.zone_outage().unwrap();
            assert!((0.0..1.0).contains(&pos));
            assert!(window >= plan.zone_outage_window.mul_f64(0.5));
            assert!(window < plan.zone_outage_window.mul_f64(1.5));
            let (pos, delay) = inj.channel_drops().unwrap();
            assert!((0.0..1.0).contains(&pos));
            assert!(delay >= plan.channel_reconnect_delay.mul_f64(0.5));
            assert!(delay < plan.channel_reconnect_delay.mul_f64(1.5));
        }
    }

    #[test]
    fn runtime_faults_are_deterministic_per_seed_and_label() {
        let plan = FaultPlan::runtime(0.3, 77);
        let seq = |label: u64| -> Vec<Option<f64>> {
            let mut inj = plan.injector(label);
            (0..64).map(|_| inj.crashes_while_serving()).collect()
        };
        assert_eq!(seq(1), seq(1));
        assert_ne!(seq(1), seq(2), "labels decorrelate sites");
    }

    #[test]
    fn zero_probability_draws_nothing_from_the_stream() {
        // A disabled site must not consume stream state: two injectors that
        // differ only in *disabled* probabilities make identical decisions
        // for the enabled ones.
        let a = FaultPlan {
            create_failure: 0.5,
            ..FaultPlan::default()
        };
        let b = FaultPlan {
            create_failure: 0.5,
            pull_failure: 0.0, // explicit zero: still never drawn
            ..FaultPlan::default()
        };
        let (mut ia, mut ib) = (a.injector(7), b.injector(7));
        for _ in 0..200 {
            assert!(!ia.pull_fails() && !ib.pull_fails());
            assert_eq!(ia.create_fails(), ib.create_fails());
        }
    }

    #[test]
    fn uniform_rate_fires_at_about_that_rate() {
        let plan = FaultPlan::uniform(0.2, 99);
        assert!(plan.enabled());
        let mut inj = plan.injector(3);
        let fired = (0..10_000).filter(|_| inj.create_fails()).count();
        let rate = fired as f64 / 10_000.0;
        assert!((0.17..0.23).contains(&rate), "observed rate {rate}");
    }

    #[test]
    fn injectors_are_deterministic_per_seed_and_label() {
        let plan = FaultPlan::uniform(0.3, 1234);
        let seq = |label: u64| -> Vec<bool> {
            let mut inj = plan.injector(label);
            (0..64).map(|_| inj.start_fails()).collect()
        };
        assert_eq!(seq(1), seq(1));
        assert_ne!(seq(1), seq(2), "labels decorrelate sites");
    }

    #[test]
    fn flap_factor_exceeds_one_and_delay_is_bounded() {
        let plan = FaultPlan::uniform(1.0, 5);
        let mut inj = plan.injector(9);
        for _ in 0..100 {
            let f = inj.pull_flap_factor().unwrap();
            assert!(f > 1.0 && f <= 1.0 + 3.0 * 1.5, "factor {f}");
            let d = inj.probe_flap().unwrap();
            assert!(d >= plan.probe_flap_delay.mul_f64(0.5));
            assert!(d < plan.probe_flap_delay.mul_f64(1.5));
        }
    }

    // -- RetryPolicy property sweeps (plain deterministic loops over many
    //    seeds; they cover the same claims a proptest would) ---------------

    fn delays(policy: &RetryPolicy, seed: u64, n: u32) -> Vec<Duration> {
        let mut rng = SimRng::new(seed);
        (0..n).map(|a| policy.delay(a, &mut rng)).collect()
    }

    #[test]
    fn backoff_is_monotone_nondecreasing_when_multiplier_dominates_jitter() {
        // multiplier ≥ 1 + jitter ⇒ monotone for every seed.
        for seed in 0..200u64 {
            let p = RetryPolicy::default();
            let d = delays(&p, seed, 12);
            for w in d.windows(2) {
                assert!(w[0] <= w[1], "seed {seed}: {w:?}");
            }
        }
    }

    #[test]
    fn backoff_is_bounded_by_cap_for_every_seed_and_attempt() {
        for seed in 0..200u64 {
            for p in [
                RetryPolicy::default(),
                RetryPolicy {
                    base: Duration::from_secs(4),
                    cap: Duration::from_secs(4),
                    ..RetryPolicy::default()
                },
                RetryPolicy {
                    multiplier: 10.0,
                    jitter: 1.0,
                    ..RetryPolicy::default()
                },
            ] {
                for d in delays(&p, seed, 40) {
                    assert!(d <= p.cap, "delay {d} over cap {}", p.cap);
                }
            }
        }
    }

    #[test]
    fn backoff_jitter_stays_within_range() {
        // Before the cap bites, delay(attempt) ∈ [base·m^a, base·m^a·(1+j)).
        let p = RetryPolicy {
            cap: Duration::from_secs(10_000),
            ..RetryPolicy::default()
        };
        for seed in 0..100u64 {
            let mut rng = SimRng::new(seed);
            for attempt in 0..8u32 {
                let d = p.delay(attempt, &mut rng).as_secs_f64();
                let lo = p.base.as_secs_f64() * p.multiplier.powi(attempt as i32);
                let hi = lo * (1.0 + p.jitter);
                assert!(d >= lo * 0.999_999 && d < hi, "attempt {attempt}: {d} not in [{lo}, {hi})");
            }
        }
    }

    #[test]
    fn backoff_is_deterministic_per_rng_seed() {
        let p = RetryPolicy::default();
        for seed in [0u64, 1, 42, 0xdead_beef] {
            assert_eq!(delays(&p, seed, 16), delays(&p, seed, 16));
        }
        assert_ne!(delays(&p, 1, 16), delays(&p, 2, 16));
    }
}
