//! Deterministic pseudo-random number generation.
//!
//! [`SimRng`] is a from-scratch xoshiro256\*\* generator seeded through
//! SplitMix64, the construction recommended by its authors. It is *not*
//! cryptographic — it exists to make latency models reproducible across
//! platforms without pulling RNG state out of process-global sources.

/// A seedable, deterministic PRNG (xoshiro256\*\*).
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed. Any seed (including zero) is
    /// valid; the internal state is expanded with SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child generator; used to give each simulated
    /// component its own stream so event interleaving cannot perturb draws
    /// made by unrelated components.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let a = self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::new(a)
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit value.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Widening-multiply rejection sampling (Lemire 2019).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive lo > hi");
        if lo == hi {
            return lo;
        }
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// Bernoulli draw with probability `p` of `true` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SimRng::new(0);
        // xoshiro's all-zero state would be degenerate; SplitMix64 expansion
        // must prevent it.
        let v: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
        assert!(v.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_about_half() {
        let mut r = SimRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = SimRng::new(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_inclusive_covers_bounds() {
        let mut r = SimRng::new(5);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            match r.range_inclusive(3, 6) {
                3 => lo_seen = true,
                6 => hi_seen = true,
                4 | 5 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
        assert_eq!(r.range_inclusive(9, 9), 9);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(1);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(13);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn choose_handles_empty() {
        let mut r = SimRng::new(1);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert_eq!(r.choose(&[42]), Some(&42));
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SimRng::new(99);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }
}
