//! Multi-level calendar event queue — the engine's fast path.
//!
//! A drop-in replacement for the binary-heap [`NaiveEventQueue`] with the
//! same deterministic contract (pop in `(SimTime, seq)` order, FIFO among
//! same-instant ties) but built for the schedule-soon / pop-next cycle that
//! dominates simulation workloads. Ordering keys are packed `(time << 64) |
//! seq` `u128`s, so every comparison anywhere in the structure is a single
//! wide compare. The levels, nearest first:
//!
//! * **Current bucket** — the ~131 µs time bucket the queue is draining,
//!   held as a `Vec` sorted once per bucket (descending, so pop is a `Vec`
//!   pop from the back). A small **overlay** heap catches events scheduled
//!   into the current bucket after that sort (`schedule_now`, past-clamped
//!   events); each pop takes the smaller of the two heads, which keeps the
//!   global `(time, seq)` order exact.
//! * **Near level** — a ring of [`L0_N`] buckets of [`L0_BITS`]-bit width
//!   (2^17 ns ≈ 131 µs each, ≈134 ms of horizon). Scheduling into the
//!   window is an index computation plus a push onto a recycled slab —
//!   O(1), no ordering work, no allocation once the slab has warmed up. An
//!   occupancy bitmap lets the drain cursor skip runs of empty buckets in a
//!   couple of word operations.
//! * **Far level** — a second ring of [`L1_N`] buckets, each spanning one
//!   full near-level window (2^27 ns ≈ 134 ms, ≈137 s of horizon). When the
//!   cursor enters a far bucket's span, its events re-bucket into the near
//!   level — the cascade discipline of [`crate::wheel`], one extra O(1)
//!   move per event instead of per-event heap ordering.
//! * **Spill level** — events beyond the far horizon (> ~137 s ahead)
//!   overflow into a sorted heap and migrate into the rings as the cursor
//!   approaches; when everything pending is in the spill, the cursor jumps
//!   straight to its minimum instead of ticking through empty buckets.
//!
//! Determinism is pinned two ways: every key `(time, seq)` is unique, so
//! any conforming structure yields exactly one pop order; and a
//! differential proptest oracle in `tests/properties.rs` replays arbitrary
//! interleaved push/pop schedules against [`NaiveEventQueue`] asserting
//! identical output.
//!
//! [`NaiveEventQueue`]: crate::queue::NaiveEventQueue

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// log2 of the near-level bucket width in nanoseconds (2^17 ns ≈ 131 µs).
const L0_BITS: u32 = 17;
/// Width of one near-level bucket, in nanoseconds.
const L0_W: u64 = 1 << L0_BITS;
/// Buckets in the near-level ring (power of two); together they cover
/// 2^27 ns ≈ 134 ms of simulated future.
const L0_N: usize = 1024;
/// log2 of the far-level bucket width: one whole near window (2^27 ns).
const L1_BITS: u32 = L0_BITS + 10;
/// Buckets in the far-level ring; together they cover 2^37 ns ≈ 137 s.
const L1_N: usize = 1024;
/// Words per occupancy bitmap (both rings are 1024 buckets).
const OCC_WORDS: usize = L0_N / 64;

#[inline]
fn pack(time_ns: u64, seq: u64) -> u128 {
    ((time_ns as u128) << 64) | seq as u128
}

/// A pending event with its packed `(time, seq)` ordering key.
struct Entry<E> {
    key: u128,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn time_ns(&self) -> u64 {
        (self.key >> 64) as u64
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest key pops first.
        // Keys are unique, so this is a total order.
        other.key.cmp(&self.key)
    }
}

/// Ring-distance (1..=1023) from `cursor` to the next occupied bucket,
/// scanning the 1024-bit occupancy bitmap strictly after `cursor`. Requires
/// at least one bit set at an index other than `cursor`.
fn next_occupied(occ: &[u64; OCC_WORDS], cursor: usize) -> usize {
    let start = (cursor + 1) & (L0_N - 1);
    let mut word = start / 64;
    let mut bits = occ[word] & !((1u64 << (start % 64)) - 1);
    for _ in 0..=OCC_WORDS {
        if bits != 0 {
            let idx = word * 64 + bits.trailing_zeros() as usize;
            return (idx + L0_N - cursor) & (L0_N - 1);
        }
        word = (word + 1) % OCC_WORDS;
        bits = occ[word];
    }
    unreachable!("occupancy bitmap is empty");
}

/// A deterministic min-priority queue of timestamped events (calendar-queue
/// implementation). API-identical to [`NaiveEventQueue`], identical pop
/// order, built for throughput.
///
/// [`NaiveEventQueue`]: crate::queue::NaiveEventQueue
pub struct EventQueue<E> {
    /// The drained current bucket, sorted descending by key (pop = `Vec`
    /// pop from the back).
    cur: Vec<Entry<E>>,
    /// Events that entered the current bucket after its sort (at or before
    /// the cursor: `schedule_now`, past pushes). Usually tiny.
    overlay: BinaryHeap<Entry<E>>,
    /// Near-level slabs. `l0[i]` holds events with `time` inside the near
    /// window and `(time >> L0_BITS) % L0_N == i`, unordered.
    l0: Vec<Vec<Entry<E>>>,
    /// One bit per near bucket: set iff the slab is non-empty.
    occ0: [u64; OCC_WORDS],
    /// Events resident in `l0`.
    in_l0: usize,
    /// Far-level slabs, the same scheme one level up: `l1[i]` holds events
    /// in far spans 1..L1_N ahead of the cursor's span, with
    /// `(time >> L1_BITS) % L1_N == i`.
    l1: Vec<Vec<Entry<E>>>,
    /// One bit per far bucket: set iff the slab is non-empty.
    occ1: [u64; OCC_WORDS],
    /// Events resident in `l1`.
    in_l1: usize,
    /// Spill level: events beyond the far horizon, min-ordered.
    overflow: BinaryHeap<Entry<E>>,
    /// Start of the cursor bucket, aligned down to `L0_W`.
    base: u64,
    /// Total pending events.
    len: usize,
    /// Next insertion sequence number (FIFO tie-break).
    next_seq: u64,
    /// Recycled storage for far-bucket drains.
    spare: Vec<Entry<E>>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue pre-sized for `cap` pending events, so
    /// steady-state simulations never re-grow the underlying storage
    /// mid-run.
    pub fn with_capacity(cap: usize) -> Self {
        let per_bucket = cap / L0_N;
        EventQueue {
            cur: Vec::with_capacity(cap.min(L0_W as usize)),
            overlay: BinaryHeap::with_capacity(per_bucket.max(4)),
            l0: (0..L0_N).map(|_| Vec::with_capacity(per_bucket)).collect(),
            occ0: [0; OCC_WORDS],
            in_l0: 0,
            l1: (0..L1_N).map(|_| Vec::new()).collect(),
            occ1: [0; OCC_WORDS],
            in_l1: 0,
            overflow: BinaryHeap::new(),
            base: 0,
            len: 0,
            next_seq: 0,
            spare: Vec::new(),
        }
    }

    /// Inserts `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let e = Entry {
            key: pack(time.as_nanos(), seq),
            event,
        };
        self.len += 1;
        self.route(e);
        if self.cur.is_empty() && self.overlay.is_empty() {
            // The push landed in a ring or the spill while nothing was
            // primed for popping: advance the cursor to it.
            self.advance();
        }
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let from_overlay = match (self.cur.last(), self.overlay.peek()) {
            (Some(c), Some(o)) => o.key < c.key,
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (None, None) => return None,
        };
        let e = if from_overlay {
            self.overlay.pop().expect("peeked")
        } else {
            self.cur.pop().expect("peeked")
        };
        self.len -= 1;
        if self.len > 0 && self.cur.is_empty() && self.overlay.is_empty() {
            self.advance();
        }
        Some((SimTime::from_nanos(e.time_ns()), e.event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        let key = match (self.cur.last(), self.overlay.peek()) {
            (Some(c), Some(o)) => c.key.min(o.key),
            (Some(c), None) => c.key,
            (None, Some(o)) => o.key,
            (None, None) => return None,
        };
        Some(SimTime::from_nanos((key >> 64) as u64))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all pending events (sequence numbering continues, matching
    /// [`NaiveEventQueue::clear`](crate::queue::NaiveEventQueue::clear)).
    pub fn clear(&mut self) {
        self.cur.clear();
        self.overlay.clear();
        if self.in_l0 > 0 {
            for b in &mut self.l0 {
                b.clear();
            }
        }
        if self.in_l1 > 0 {
            for b in &mut self.l1 {
                b.clear();
            }
        }
        self.occ0 = [0; OCC_WORDS];
        self.occ1 = [0; OCC_WORDS];
        self.in_l0 = 0;
        self.in_l1 = 0;
        self.overflow.clear();
        self.len = 0;
    }

    /// Files `e` into the level its time calls for, relative to the current
    /// cursor. Does not touch `len`.
    fn route(&mut self, e: Entry<E>) {
        let t = e.time_ns();
        if t < self.base {
            // At or before the cursor bucket (arbitrarily far in the past is
            // legal): exact ordering via the overlay heap.
            self.overlay.push(e);
            return;
        }
        let d0 = (t - self.base) >> L0_BITS;
        if d0 == 0 {
            self.overlay.push(e);
        } else if d0 < L0_N as u64 {
            let idx = (t >> L0_BITS) as usize & (L0_N - 1);
            self.l0[idx].push(e);
            self.occ0[idx / 64] |= 1 << (idx % 64);
            self.in_l0 += 1;
        } else {
            let s = (t >> L1_BITS) - (self.base >> L1_BITS);
            if s < L1_N as u64 {
                let idx = (t >> L1_BITS) as usize & (L1_N - 1);
                self.l1[idx].push(e);
                self.occ1[idx / 64] |= 1 << (idx % 64);
                self.in_l1 += 1;
            } else {
                self.overflow.push(e);
            }
        }
    }

    /// Moves the cursor forward until some event is primed in `cur` or the
    /// overlay, draining/cascading buckets as it goes. Called only when both
    /// are empty and `len > 0`.
    fn advance(&mut self) {
        debug_assert!(self.cur.is_empty() && self.overlay.is_empty() && self.len > 0);
        loop {
            // Prime from the cursor's own near bucket first: cursor moves
            // below can land on a bucket that already holds events.
            let c0 = (self.base >> L0_BITS) as usize & (L0_N - 1);
            if self.occ0[c0 / 64] & (1 << (c0 % 64)) != 0 {
                std::mem::swap(&mut self.cur, &mut self.l0[c0]);
                self.occ0[c0 / 64] &= !(1 << (c0 % 64));
                self.in_l0 -= self.cur.len();
                // One sort per bucket; descending so pops come off the back.
                self.cur.sort_unstable_by_key(|e| std::cmp::Reverse(e.key));
            }
            if !self.cur.is_empty() || !self.overlay.is_empty() {
                return;
            }
            // Candidate next cursor positions, widened to u128 so horizons
            // near `u64::MAX` cannot overflow the arithmetic. `cand0` is the
            // exact start of the next occupied near bucket; `cand1` is the
            // start of the next occupied far span — a lower bound on its
            // events, which is all that is needed: taking it just cascades
            // that span into the near ring and loops.
            let span = self.base >> L1_BITS;
            let cand0: Option<u128> = (self.in_l0 > 0)
                .then(|| self.base as u128 + next_occupied(&self.occ0, c0) as u128 * L0_W as u128);
            let cand1: Option<u128> = (self.in_l1 > 0).then(|| {
                let s = next_occupied(&self.occ1, span as usize & (L1_N - 1));
                (span as u128 + s as u128) << L1_BITS
            });
            match (cand0, cand1) {
                // The next occupied far span starts at or before the next
                // near bucket (`<=`: its events may precede that bucket's):
                // cascade it into the near ring before moving past it.
                (c0_at, Some(c1)) if c0_at.is_none_or(|v| c1 <= v) => {
                    self.base = c1 as u64;
                    self.drain_far_bucket();
                    self.migrate_overflow();
                }
                (Some(v), _) => {
                    let crossed_span = (v as u64 >> L1_BITS) != span;
                    self.base = v as u64;
                    if crossed_span {
                        self.migrate_overflow();
                    }
                }
                (None, Some(_)) => unreachable!("guard above always takes this case"),
                (None, None) => {
                    // Everything pending lives in the spill: jump straight
                    // to its minimum (migration re-routes it to the overlay).
                    let t = self
                        .overflow
                        .peek()
                        .expect("len > 0 with empty rings implies spill events")
                        .time_ns();
                    self.base = t & !(L0_W - 1);
                    self.migrate_overflow();
                }
            }
        }
    }

    /// Cascades the far bucket of the cursor's span into the near ring /
    /// overlay. The span was just entered, so every entry re-routes at
    /// near-level granularity (never back into the far ring).
    fn drain_far_bucket(&mut self) {
        let idx = (self.base >> L1_BITS) as usize & (L1_N - 1);
        if self.occ1[idx / 64] & (1 << (idx % 64)) == 0 {
            return;
        }
        let mut batch = std::mem::take(&mut self.spare);
        std::mem::swap(&mut batch, &mut self.l1[idx]);
        self.occ1[idx / 64] &= !(1 << (idx % 64));
        self.in_l1 -= batch.len();
        for e in batch.drain(..) {
            debug_assert!(e.time_ns() >= self.base);
            self.route(e);
        }
        self.spare = batch;
    }

    /// Re-files every spill-level event whose time now falls inside the far
    /// horizon. Called whenever the cursor's span changes.
    fn migrate_overflow(&mut self) {
        let span = self.base >> L1_BITS;
        while let Some(e) = self.overflow.peek() {
            debug_assert!(e.time_ns() >= self.base);
            if (e.time_ns() >> L1_BITS) - span >= L1_N as u64 {
                return;
            }
            let e = self.overflow.pop().expect("peeked");
            self.route(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::NaiveEventQueue;
    use crate::rng::SimRng;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), "c");
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(SimTime::from_millis(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }

    #[test]
    fn past_pushes_pop_first() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(100), "future");
        assert_eq!(q.pop().unwrap().1, "future");
        // The cursor sits near t=100s; a push far before it must still win.
        q.push(SimTime::from_secs(200), "later");
        q.push(SimTime::from_secs(1), "past");
        assert_eq!(q.pop().unwrap().1, "past");
        assert_eq!(q.pop().unwrap().1, "later");
    }

    #[test]
    fn events_cross_every_level() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(50), 0); // current bucket
        q.push(SimTime::from_millis(1), 1); // near ring
        q.push(SimTime::from_secs(1), 2); // far ring
        q.push(SimTime::from_secs(3600), 3); // spill (beyond ~137 s)
        q.push(SimTime::from_secs(7200), 4); // spill
        for want in 0..5 {
            assert_eq!(q.pop().unwrap().1, want);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn far_events_overtaken_by_near_pushes() {
        let mut q = EventQueue::new();
        // A lone far event primes the cursor near its own time...
        q.push(SimTime::from_secs(10), "far");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(10)));
        // ...then earlier work arrives before it pops.
        q.push(SimTime::from_secs(5), "sooner");
        assert_eq!(q.pop().unwrap().1, "sooner");
        assert_eq!(q.pop().unwrap().1, "far");
    }

    #[test]
    fn simtime_max_is_representable() {
        let mut q = EventQueue::new();
        q.push(SimTime::MAX, "end");
        q.push(SimTime::ZERO, "start");
        assert_eq!(q.pop().unwrap().1, "start");
        assert_eq!(q.pop().unwrap(), (SimTime::MAX, "end"));
    }

    /// The differential oracle in miniature (the proptest version lives in
    /// `tests/properties.rs`): random interleaved push/pop schedules pop
    /// identically to the binary-heap reference.
    #[test]
    fn random_schedules_match_naive_queue() {
        for seed in 0..30u64 {
            let mut rng = SimRng::new(seed);
            let mut fast = EventQueue::new();
            let mut naive = NaiveEventQueue::new();
            let mut clock = 0u64;
            for step in 0..2_000 {
                if rng.below(3) < 2 || fast.is_empty() {
                    // Mixed horizon: same-instant, current-bucket, near-ring,
                    // far-ring, and past-the-spill-boundary delays.
                    let delay = match rng.below(10) {
                        0 => 0,
                        1..=5 => rng.below(2_000_000),   // < 2 ms
                        6 | 7 => rng.below(200_000_000), // < 200 ms
                        8 => rng.below(20_000_000_000),  // < 20 s
                        _ => rng.below(400_000_000_000), // < 400 s (spill)
                    };
                    let t = SimTime::from_nanos(clock + delay);
                    fast.push(t, step);
                    naive.push(t, step);
                } else {
                    let a = fast.pop();
                    let b = naive.pop();
                    assert_eq!(a, b, "seed {seed} step {step}");
                    if let Some((t, _)) = a {
                        clock = t.as_nanos();
                    }
                }
                assert_eq!(fast.len(), naive.len());
                assert_eq!(fast.peek_time(), naive.peek_time());
            }
            loop {
                let a = fast.pop();
                let b = naive.pop();
                assert_eq!(a, b, "seed {seed} drain");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn storage_is_recycled_not_reallocated() {
        // After a warm-up cycle the same steady-state load must not grow
        // capacity: push/pop churn reuses the bucket slabs and sort arena.
        let mut q = EventQueue::with_capacity(512);
        let mut clock = SimTime::ZERO;
        let mut rng = SimRng::new(9);
        for _ in 0..512 {
            q.push(clock + Duration::from_nanos(rng.below(50_000_000)), 0u32);
        }
        for _ in 0..100_000 {
            let (t, _) = q.pop().unwrap();
            clock = t;
            q.push(clock + Duration::from_nanos(rng.below(50_000_000)), 0u32);
        }
        assert_eq!(q.len(), 512);
    }
}
