//! Stable-ordered event queue — reference implementation.
//!
//! A binary-heap priority queue keyed by `(SimTime, sequence)`. The sequence
//! number breaks ties between events scheduled for the same instant in FIFO
//! order of insertion, which keeps simulations deterministic regardless of
//! heap internals.
//!
//! This is the original engine queue, kept as [`NaiveEventQueue`]: a dozen
//! lines of obviously-correct heap code that serves as the differential
//! oracle for the calendar-queue fast path ([`crate::calendar::EventQueue`])
//! and as its baseline in `bench::engine`. The two are API-identical and
//! must pop in exactly the same `(time, seq)` order for every schedule.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events, backed by a
/// single global binary heap.
///
/// Correct and simple, but every push/pop pays an `O(log n)` sift over the
/// whole pending set. The engine uses [`crate::EventQueue`] (the calendar
/// queue) instead; this type remains as the determinism oracle and bench
/// baseline.
pub struct NaiveEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for NaiveEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> NaiveEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        NaiveEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        NaiveEventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Inserts `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = NaiveEventQueue::new();
        q.push(SimTime::from_millis(30), "c");
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = NaiveEventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = NaiveEventQueue::new();
        q.push(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = NaiveEventQueue::new();
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(SimTime::from_millis(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }
}
