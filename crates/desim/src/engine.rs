//! The simulation engine: an event queue plus a monotonic clock.
//!
//! [`Engine`] is deliberately minimal — it owns *when* things happen, while
//! the domain crates own *what* happens. Higher layers drive it with a loop:
//!
//! ```
//! use desim::{Engine, Duration};
//!
//! enum Ev { Tick(u32) }
//!
//! let mut engine = Engine::new();
//! engine.schedule_in(Duration::from_secs(1), Ev::Tick(0));
//! let mut ticks = 0;
//! while let Some((now, ev)) = engine.pop() {
//!     match ev {
//!         Ev::Tick(n) if n < 4 => {
//!             ticks += 1;
//!             engine.schedule_at(now + Duration::from_secs(1), Ev::Tick(n + 1));
//!         }
//!         Ev::Tick(_) => ticks += 1,
//!     }
//! }
//! assert_eq!(ticks, 5);
//! ```

use crate::calendar::EventQueue;
use crate::time::{Duration, SimTime};

/// A discrete-event simulation engine generic over the event type `E`.
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
    clamped: u64,
    peak_pending: usize,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine at time zero with an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an engine whose queue is pre-sized for `cap` pending events,
    /// so steady-state simulations never re-grow event storage mid-run.
    pub fn with_capacity(cap: usize) -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::with_capacity(cap),
            processed: 0,
            clamped: 0,
            peak_pending: 0,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events popped so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// High-water mark of the pending-event count over the engine's life.
    #[inline]
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Number of events whose requested time was in the past and had to be
    /// clamped to `now` by [`Engine::schedule_at`]. Non-zero means some
    /// caller's intent was silently reordered — worth surfacing in run stats.
    #[inline]
    pub fn clamped_events(&self) -> u64 {
        self.clamped
    }

    #[inline]
    fn note_pending(&mut self) {
        let n = self.queue.len();
        if n > self.peak_pending {
            self.peak_pending = n;
        }
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// Scheduling in the past is a logic error; the event is clamped to `now`
    /// and counted in [`Engine::clamped_events`] so simulations never travel
    /// backwards and the reordering never goes unnoticed.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = if at < self.now {
            self.clamped += 1;
            self.now
        } else {
            at
        };
        self.queue.push(at, event);
        self.note_pending();
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.queue.push(self.now + delay, event);
        self.note_pending();
    }

    /// Schedules `event` to fire immediately (after already-queued events for
    /// the current instant).
    pub fn schedule_now(&mut self, event: E) {
        self.queue.push(self.now, event);
        self.note_pending();
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (t, ev) = self.queue.pop()?;
        debug_assert!(t >= self.now);
        self.now = t;
        self.processed += 1;
        Some((t, ev))
    }

    /// Timestamp of the next pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Pops the next event only if it fires at or before `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.queue.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Advances the clock to `at` without processing events. Used by hybrid
    /// harnesses that mix externally-driven phases with queued events.
    ///
    /// # Panics
    /// Panics if pending events exist before `at` (they would be skipped).
    pub fn advance_to(&mut self, at: SimTime) {
        if let Some(t) = self.queue.peek_time() {
            assert!(t >= at, "advance_to({at:?}) would skip a pending event at {t:?}");
        }
        assert!(at >= self.now, "advance_to would move time backwards");
        self.now = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_follows_events() {
        let mut e: Engine<u8> = Engine::new();
        e.schedule_in(Duration::from_millis(10), 1);
        e.schedule_in(Duration::from_millis(20), 2);
        assert_eq!(e.now(), SimTime::ZERO);
        let (t, ev) = e.pop().unwrap();
        assert_eq!((t, ev), (SimTime::from_millis(10), 1));
        assert_eq!(e.now(), SimTime::from_millis(10));
        e.pop().unwrap();
        assert_eq!(e.now(), SimTime::from_millis(20));
        assert_eq!(e.processed(), 2);
    }

    #[test]
    fn schedule_now_runs_after_existing_same_instant_events() {
        let mut e: Engine<u8> = Engine::new();
        e.schedule_now(1);
        e.schedule_now(2);
        assert_eq!(e.pop().unwrap().1, 1);
        e.schedule_now(3);
        assert_eq!(e.pop().unwrap().1, 2);
        assert_eq!(e.pop().unwrap().1, 3);
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut e: Engine<u8> = Engine::new();
        e.schedule_in(Duration::from_secs(1), 1);
        e.schedule_in(Duration::from_secs(3), 2);
        assert!(e.pop_until(SimTime::from_secs(2)).is_some());
        assert!(e.pop_until(SimTime::from_secs(2)).is_none());
        assert_eq!(e.pending(), 1);
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut e: Engine<u8> = Engine::new();
        e.advance_to(SimTime::from_secs(5));
        assert_eq!(e.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "would skip a pending event")]
    fn advance_past_pending_event_panics() {
        let mut e: Engine<u8> = Engine::new();
        e.schedule_in(Duration::from_secs(1), 1);
        e.advance_to(SimTime::from_secs(2));
    }

    #[test]
    fn past_schedule_clamps_and_counts() {
        let mut e: Engine<u8> = Engine::new();
        e.schedule_at(SimTime::from_secs(5), 1);
        e.pop().unwrap();
        assert_eq!(e.clamped_events(), 0);
        e.schedule_at(SimTime::from_secs(1), 2);
        assert_eq!(e.clamped_events(), 1);
        let (t, ev) = e.pop().unwrap();
        assert_eq!((t, ev), (SimTime::from_secs(5), 2), "clamped to now");
        // Scheduling exactly at `now` is fine and not counted.
        e.schedule_at(SimTime::from_secs(5), 3);
        assert_eq!(e.clamped_events(), 1);
    }

    #[test]
    fn peak_pending_tracks_high_water_mark() {
        let mut e: Engine<u8> = Engine::with_capacity(16);
        assert_eq!(e.peak_pending(), 0);
        for i in 0..10 {
            e.schedule_in(Duration::from_millis(i as u64 + 1), i);
        }
        assert_eq!(e.peak_pending(), 10);
        while e.pop().is_some() {}
        assert_eq!(e.pending(), 0);
        assert_eq!(e.peak_pending(), 10, "peak survives the drain");
    }

    #[test]
    fn relative_scheduling_uses_current_clock() {
        let mut e: Engine<u8> = Engine::new();
        e.schedule_in(Duration::from_secs(1), 1);
        e.pop().unwrap();
        e.schedule_in(Duration::from_secs(1), 2);
        let (t, _) = e.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(2));
    }
}
