//! Property tests: arbitrary values round-trip through emit → parse.

use proptest::prelude::*;
use yamlite::{parse_str, to_string, Value};

/// Keys must be non-empty and reasonably printable; the emitter quotes
/// anything ambiguous so most printable ASCII is fair game.
fn key_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z_][a-zA-Z0-9_./-]{0,15}").unwrap()
}

fn scalar_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only; NaN can't round-trip by equality.
        prop::num::f64::NORMAL.prop_map(Value::Float),
        // Printable strings, including ones that look like numbers/bools.
        prop_oneof![
            proptest::string::string_regex("[ -~]{0,24}").unwrap(),
            Just("true".to_owned()),
            Just("null".to_owned()),
            Just("42".to_owned()),
            Just("-1.5".to_owned()),
            Just("a: b".to_owned()),
            Just("# comment".to_owned()),
            Just("line one\nline two".to_owned()),
            Just("line one\nline two\n".to_owned()),
        ]
        .prop_map(Value::Str),
    ]
}

fn value_strategy() -> impl Strategy<Value = Value> {
    scalar_strategy().prop_recursive(4, 48, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Value::Seq),
            prop::collection::vec((key_strategy(), inner), 0..5).prop_map(|pairs| {
                // Deduplicate keys — duplicate keys are a parse error by design.
                let mut seen = std::collections::HashSet::new();
                let mut out = Vec::new();
                for (k, v) in pairs {
                    if seen.insert(k.clone()) {
                        out.push((k, v));
                    }
                }
                Value::Map(out)
            }),
        ]
    })
}

/// Multi-line strings survive only in value position (block scalars); a
/// sequence of bare scalars can't represent them. Restrict top level to maps
/// like real manifests.
fn doc_strategy() -> impl Strategy<Value = Value> {
    prop::collection::vec((key_strategy(), value_strategy()), 1..6).prop_map(|pairs| {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for (k, v) in pairs {
            if seen.insert(k.clone()) {
                out.push((k, v));
            }
        }
        Value::Map(out)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn emit_parse_roundtrip(doc in doc_strategy()) {
        let text = to_string(&doc);
        let parsed = parse_str(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n--- emitted ---\n{text}")))?;
        prop_assert_eq!(parsed, doc, "--- emitted ---\n{}", text);
    }

    #[test]
    fn parser_never_panics(input in "[ -~\n]{0,200}") {
        let _ = parse_str(&input);
    }

    #[test]
    fn emitted_text_is_stable(doc in doc_strategy()) {
        // emit(parse(emit(x))) == emit(x): the canonical form is a fixed point.
        let once = to_string(&doc);
        let twice = to_string(&parse_str(&once).unwrap());
        prop_assert_eq!(once, twice);
    }
}
