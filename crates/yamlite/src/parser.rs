//! Indentation-based recursive-descent parser for the YAML subset.

use crate::error::{ParseError, Result};
use crate::value::Value;

/// Parses a single-document YAML string.
///
/// A leading `---` marker is allowed; an empty (or comment-only) input parses
/// to [`Value::Null`].
pub fn parse_str(input: &str) -> Result<Value> {
    let mut docs = parse_documents(input)?;
    match docs.len() {
        0 => Ok(Value::Null),
        1 => Ok(docs.pop().expect("len checked")),
        n => Err(ParseError::new(
            1,
            format!("expected a single document, found {n}"),
        )),
    }
}

/// Parses a multi-document stream separated by `---` lines.
pub fn parse_documents(input: &str) -> Result<Vec<Value>> {
    let mut docs = Vec::new();
    let mut chunk: Vec<(usize, &str)> = Vec::new(); // (1-based line no, raw line)
    let mut saw_separator = false;
    let flush = |chunk: &mut Vec<(usize, &str)>, docs: &mut Vec<Value>, force: bool| -> Result<()> {
        let has_content = chunk
            .iter()
            .any(|(_, l)| !strip_comment(l).trim().is_empty());
        if has_content {
            docs.push(parse_chunk(chunk)?);
        } else if force {
            docs.push(Value::Null);
        }
        chunk.clear();
        Ok(())
    };
    for (i, raw) in input.lines().enumerate() {
        let trimmed = raw.trim_end();
        if trimmed == "---" {
            // `---` after content (or after another separator) terminates the
            // current document; a leading one is just a stream header.
            flush(&mut chunk, &mut docs, saw_separator)?;
            saw_separator = true;
        } else if trimmed == "..." {
            flush(&mut chunk, &mut docs, false)?;
            saw_separator = false;
        } else {
            chunk.push((i + 1, raw));
        }
    }
    flush(&mut chunk, &mut docs, false)?;
    Ok(docs)
}

struct Line {
    number: usize,
    indent: usize,
    /// Structural content: comment-stripped, right-trimmed.
    content: String,
    /// Raw line text (needed verbatim inside block scalars).
    raw: String,
}

fn parse_chunk(lines: &[(usize, &str)]) -> Result<Value> {
    let mut structured = Vec::new();
    for &(number, raw) in lines {
        if raw.contains('\t') && raw[..raw.len() - raw.trim_start().len()].contains('\t') {
            return Err(ParseError::new(number, "tabs are not allowed in indentation"));
        }
        let stripped = strip_comment(raw);
        let content = stripped.trim_end();
        let indent = raw.len() - raw.trim_start().len();
        structured.push(Line {
            number,
            indent,
            content: content.trim_start().to_owned(),
            raw: raw.to_owned(),
        });
    }
    let mut p = Parser {
        lines: structured,
        pos: 0,
    };
    p.skip_blank();
    if p.eof() {
        return Ok(Value::Null);
    }
    let base = p.peek().indent;
    let v = p.parse_node(base)?;
    p.skip_blank();
    if !p.eof() {
        let line = p.peek();
        return Err(ParseError::new(
            line.number,
            format!("unexpected content after document (indent {})", line.indent),
        ));
    }
    Ok(v)
}

/// Removes a trailing `#` comment, respecting quoted strings. A `#` only
/// starts a comment at the beginning of the content or after whitespace.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if in_double {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_double = false;
            }
            continue;
        }
        if in_single {
            if b == b'\'' {
                in_single = false;
            }
            continue;
        }
        match b {
            b'"' => in_double = true,
            b'\'' => in_single = true,
            b'#' if i == 0 || bytes[i - 1] == b' ' || bytes[i - 1] == b'\t' => {
                return &line[..i];
            }
            _ => {}
        }
    }
    line
}

struct Parser {
    lines: Vec<Line>,
    pos: usize,
}

impl Parser {
    fn eof(&self) -> bool {
        self.pos >= self.lines.len()
    }

    fn peek(&self) -> &Line {
        &self.lines[self.pos]
    }

    fn skip_blank(&mut self) {
        while !self.eof() && self.peek().content.is_empty() {
            self.pos += 1;
        }
    }

    /// Parses the node starting at the current line, which must be indented
    /// exactly `indent`.
    fn parse_node(&mut self, indent: usize) -> Result<Value> {
        self.skip_blank();
        if self.eof() || self.peek().indent < indent {
            return Ok(Value::Null);
        }
        let line = self.peek();
        if let Some(style) = block_scalar_header(&line.content) {
            let number = line.number;
            self.pos += 1;
            return self.parse_block_scalar(indent, style, number);
        }
        if is_seq_entry(&line.content) {
            self.parse_sequence(indent)
        } else if split_key(&line.content).is_some() {
            self.parse_mapping(indent)
        } else {
            // Bare scalar document / node.
            let line = &self.lines[self.pos];
            let v = parse_scalar_or_flow(&line.content, line.number)?;
            self.pos += 1;
            Ok(v)
        }
    }

    fn parse_sequence(&mut self, indent: usize) -> Result<Value> {
        let mut items = Vec::new();
        loop {
            self.skip_blank();
            if self.eof() {
                break;
            }
            let line = self.peek();
            if line.indent != indent || !is_seq_entry(&line.content) {
                if line.indent > indent {
                    return Err(ParseError::new(
                        line.number,
                        format!(
                            "bad indentation: expected sequence entry at column {indent}, got {}",
                            line.indent
                        ),
                    ));
                }
                break;
            }
            let number = line.number;
            let rest = line.content[1..].trim_start().to_owned();
            let rest_offset = line.content.len() - rest.len(); // width of "- " prefix
            if rest.is_empty() {
                // `- ` alone: nested node on the following deeper lines.
                self.pos += 1;
                self.skip_blank();
                if !self.eof() && self.peek().indent > indent {
                    let child_indent = self.peek().indent;
                    items.push(self.parse_node(child_indent)?);
                } else {
                    items.push(Value::Null);
                }
            } else if let Some(style) = block_scalar_header(&rest) {
                // `- |` — block scalar item; its body only needs to be deeper
                // than the dash itself.
                self.pos += 1;
                items.push(self.parse_block_scalar(indent, style, number)?);
            } else {
                // Rewrite the entry in place as if the payload were its own
                // line at the dash-adjusted indent; `key: value` payloads may
                // continue as a mapping on the following lines.
                let item_indent = indent + rest_offset;
                {
                    let slot = &mut self.lines[self.pos];
                    slot.indent = item_indent;
                    slot.content = rest;
                    slot.raw = format!("{}{}", " ".repeat(item_indent), slot.content);
                    let _ = number;
                }
                items.push(self.parse_node(item_indent)?);
            }
        }
        Ok(Value::Seq(items))
    }

    fn parse_mapping(&mut self, indent: usize) -> Result<Value> {
        let mut map: Vec<(String, Value)> = Vec::new();
        loop {
            self.skip_blank();
            if self.eof() {
                break;
            }
            let line = self.peek();
            if line.indent != indent {
                if line.indent > indent {
                    return Err(ParseError::new(
                        line.number,
                        format!(
                            "bad indentation: expected key at column {indent}, got {}",
                            line.indent
                        ),
                    ));
                }
                break;
            }
            let number = line.number;
            let Some((key_raw, rest)) = split_key(&line.content) else {
                return Err(ParseError::new(number, "expected `key: value`"));
            };
            let key = parse_key(key_raw, number)?;
            if map.iter().any(|(k, _)| *k == key) {
                return Err(ParseError::new(number, format!("duplicate key `{key}`")));
            }
            let rest = rest.trim().to_owned();
            self.pos += 1;
            let value = if rest.is_empty() {
                // Nested block (mapping/sequence/scalar) or null.
                self.skip_blank();
                if !self.eof() && self.peek().indent > indent {
                    let child = self.peek().indent;
                    self.parse_node(child)?
                } else if !self.eof()
                    && self.peek().indent == indent
                    && is_seq_entry(&self.peek().content)
                {
                    // K8s style allows sequences at the same indent as the key.
                    self.parse_sequence(indent)?
                } else {
                    Value::Null
                }
            } else if let Some(style) = block_scalar_header(&rest) {
                self.parse_block_scalar(indent, style, number)?
            } else {
                parse_scalar_or_flow(&rest, number)?
            };
            map.push((key, value));
        }
        Ok(Value::Map(map))
    }

    fn parse_block_scalar(
        &mut self,
        key_indent: usize,
        style: BlockStyle,
        header_line: usize,
    ) -> Result<Value> {
        // Collect raw lines strictly deeper than the key, preserving blanks.
        let mut raw_lines: Vec<String> = Vec::new();
        let mut body_indent: Option<usize> = None;
        while !self.eof() {
            let line = &self.lines[self.pos];
            let raw_trim_len = line.raw.trim_end().len();
            if raw_trim_len == 0 {
                raw_lines.push(String::new());
                self.pos += 1;
                continue;
            }
            let ind = line.raw.len() - line.raw.trim_start().len();
            if ind <= key_indent {
                break;
            }
            let bi = *body_indent.get_or_insert(ind);
            if ind < bi {
                return Err(ParseError::new(
                    line.number,
                    "block scalar line under-indented",
                ));
            }
            raw_lines.push(line.raw.trim_end()[bi.min(raw_trim_len)..].to_owned());
            self.pos += 1;
        }
        if body_indent.is_none() {
            return Err(ParseError::new(header_line, "empty block scalar"));
        }
        // Drop trailing blank lines (clip/strip chomping both remove them).
        while raw_lines.last().is_some_and(String::is_empty) {
            raw_lines.pop();
        }
        let mut text = match style.folded {
            false => raw_lines.join("\n"),
            true => {
                // Folded: single newlines become spaces, blank lines become newlines.
                let mut out = String::new();
                let mut pending_blank = 0usize;
                for (i, l) in raw_lines.iter().enumerate() {
                    if l.is_empty() {
                        pending_blank += 1;
                        continue;
                    }
                    if i > 0 {
                        if pending_blank > 0 {
                            out.extend(std::iter::repeat_n('\n', pending_blank));
                        } else {
                            out.push(' ');
                        }
                    }
                    pending_blank = 0;
                    out.push_str(l);
                }
                out
            }
        };
        if !style.strip {
            text.push('\n');
        }
        Ok(Value::Str(text))
    }
}

#[derive(Clone, Copy)]
struct BlockStyle {
    folded: bool,
    strip: bool,
}

fn block_scalar_header(rest: &str) -> Option<BlockStyle> {
    match rest {
        "|" => Some(BlockStyle { folded: false, strip: false }),
        "|-" => Some(BlockStyle { folded: false, strip: true }),
        ">" => Some(BlockStyle { folded: true, strip: false }),
        ">-" => Some(BlockStyle { folded: true, strip: true }),
        _ => None,
    }
}

fn is_seq_entry(content: &str) -> bool {
    content == "-" || content.starts_with("- ")
}

/// Splits `key: rest` at the first top-level colon. Returns `None` if the
/// line is not a mapping entry.
fn split_key(content: &str) -> Option<(&str, &str)> {
    let bytes = content.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut escaped = false;
    let mut depth = 0i32; // flow brackets in keys are unusual but harmless
    for (i, &b) in bytes.iter().enumerate() {
        if in_double {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_double = false;
            }
            continue;
        }
        if in_single {
            if b == b'\'' {
                in_single = false;
            }
            continue;
        }
        match b {
            b'"' => in_double = true,
            b'\'' => in_single = true,
            b'[' | b'{' => depth += 1,
            b']' | b'}' => depth -= 1,
            b':' if depth == 0 => {
                let after = bytes.get(i + 1);
                if after.is_none() || after == Some(&b' ') {
                    return Some((&content[..i], &content[i + 1..]));
                }
            }
            _ => {}
        }
    }
    None
}

fn parse_key(raw: &str, line: usize) -> Result<String> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err(ParseError::new(line, "empty mapping key"));
    }
    match parse_scalar_or_flow(raw, line)? {
        Value::Str(s) => Ok(s),
        Value::Bool(b) => Ok(b.to_string()),
        Value::Int(i) => Ok(i.to_string()),
        Value::Float(f) => Ok(f.to_string()),
        Value::Null => Ok("null".to_owned()),
        _ => Err(ParseError::new(line, "collection keys are not supported")),
    }
}

/// Parses a trailing value: a flow collection, a quoted string or a plain scalar.
fn parse_scalar_or_flow(s: &str, line: usize) -> Result<Value> {
    let s = s.trim();
    if s.starts_with('[') || s.starts_with('{') {
        let mut fp = FlowParser {
            chars: s.char_indices().collect(),
            pos: 0,
            line,
            src: s,
        };
        let v = fp.parse_value()?;
        fp.skip_ws();
        if fp.pos != fp.chars.len() {
            return Err(ParseError::new(line, "trailing characters after flow collection"));
        }
        return Ok(v);
    }
    if let Some(stripped) = s.strip_prefix('"') {
        let (v, used) = parse_double_quoted(stripped, line)?;
        if used != stripped.len() {
            return Err(ParseError::new(line, "trailing characters after quoted scalar"));
        }
        return Ok(v);
    }
    if let Some(stripped) = s.strip_prefix('\'') {
        let (v, used) = parse_single_quoted(stripped, line)?;
        if used != stripped.len() {
            return Err(ParseError::new(line, "trailing characters after quoted scalar"));
        }
        return Ok(v);
    }
    Ok(resolve_plain(s))
}

fn parse_double_quoted(rest: &str, line: usize) -> Result<(Value, usize)> {
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((Value::Str(out), i + 1)),
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, '0')) => out.push('\0'),
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, other)) => {
                    return Err(ParseError::new(line, format!("unknown escape `\\{other}`")))
                }
                None => return Err(ParseError::new(line, "dangling escape")),
            },
            other => out.push(other),
        }
    }
    Err(ParseError::new(line, "unterminated double-quoted string"))
}

fn parse_single_quoted(rest: &str, line: usize) -> Result<(Value, usize)> {
    let mut out = String::new();
    let chars: Vec<(usize, char)> = rest.char_indices().collect();
    let mut idx = 0;
    while idx < chars.len() {
        let (i, c) = chars[idx];
        if c == '\'' {
            // `''` is an escaped quote inside single-quoted style.
            if chars.get(idx + 1).map(|&(_, c2)| c2) == Some('\'') {
                out.push('\'');
                idx += 2;
                continue;
            }
            return Ok((Value::Str(out), i + 1));
        }
        out.push(c);
        idx += 1;
    }
    Err(ParseError::new(line, "unterminated single-quoted string"))
}

/// YAML 1.2 core-schema-ish plain scalar resolution.
fn resolve_plain(s: &str) -> Value {
    match s {
        "" | "~" | "null" | "Null" | "NULL" => return Value::Null,
        "true" | "True" | "TRUE" => return Value::Bool(true),
        "false" | "False" | "FALSE" => return Value::Bool(false),
        _ => {}
    }
    if looks_numeric(s) {
        if let Ok(i) = s.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = s.parse::<f64>() {
            return Value::Float(f);
        }
    }
    Value::Str(s.to_owned())
}

pub(crate) fn looks_numeric(s: &str) -> bool {
    let t = s.strip_prefix(['+', '-']).unwrap_or(s);
    !t.is_empty() && t.starts_with(|c: char| c.is_ascii_digit() || c == '.')
}

struct FlowParser<'a> {
    chars: Vec<(usize, char)>,
    pos: usize,
    line: usize,
    src: &'a str,
}

impl FlowParser<'_> {
    fn skip_ws(&mut self) {
        while self
            .chars
            .get(self.pos)
            .is_some_and(|&(_, c)| c == ' ' || c == '\t')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn err(&self, msg: &str) -> ParseError {
        ParseError::new(self.line, msg.to_owned())
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some('[') => self.parse_seq(),
            Some('{') => self.parse_map(),
            Some('"') => {
                self.pos += 1;
                let start = self.byte_offset();
                let (v, used) = parse_double_quoted(&self.src[start..], self.line)?;
                self.advance_bytes(used);
                Ok(v)
            }
            Some('\'') => {
                self.pos += 1;
                let start = self.byte_offset();
                let (v, used) = parse_single_quoted(&self.src[start..], self.line)?;
                self.advance_bytes(used);
                Ok(v)
            }
            Some(_) => {
                let start = self.byte_offset();
                while let Some(c) = self.peek() {
                    if matches!(c, ',' | ']' | '}' | ':') {
                        break;
                    }
                    self.pos += 1;
                }
                let end = self.byte_offset();
                Ok(resolve_plain(self.src[start..end].trim()))
            }
            None => Err(self.err("unexpected end of flow value")),
        }
    }

    fn byte_offset(&self) -> usize {
        self.chars
            .get(self.pos)
            .map(|&(i, _)| i)
            .unwrap_or(self.src.len())
    }

    fn advance_bytes(&mut self, n: usize) {
        let target = self.byte_offset() + n;
        while self.pos < self.chars.len() && self.chars[self.pos].0 < target {
            self.pos += 1;
        }
    }

    fn parse_seq(&mut self) -> Result<Value> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                None => return Err(self.err("unterminated flow sequence")),
                _ => {}
            }
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.pos += 1;
                }
                Some(']') => {}
                _ => return Err(self.err("expected `,` or `]` in flow sequence")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value> {
        self.pos += 1; // consume '{'
        let mut map = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some('}') => {
                    self.pos += 1;
                    return Ok(Value::Map(map));
                }
                None => return Err(self.err("unterminated flow mapping")),
                _ => {}
            }
            let key = match self.parse_value()? {
                Value::Str(s) => s,
                Value::Int(i) => i.to_string(),
                Value::Bool(b) => b.to_string(),
                Value::Float(f) => f.to_string(),
                Value::Null => "null".to_owned(),
                _ => return Err(self.err("collection keys are not supported")),
            };
            self.skip_ws();
            if self.peek() != Some(':') {
                return Err(self.err("expected `:` in flow mapping"));
            }
            self.pos += 1;
            let value = self.parse_value()?;
            map.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.pos += 1;
                }
                Some('}') => {}
                _ => return Err(self.err("expected `,` or `}` in flow mapping")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_mapping() {
        let v = parse_str("a: 1\nb: two\nc: true\nd: 2.5\ne: ~").unwrap();
        assert_eq!(v["a"].as_i64(), Some(1));
        assert_eq!(v["b"].as_str(), Some("two"));
        assert_eq!(v["c"].as_bool(), Some(true));
        assert_eq!(v["d"].as_f64(), Some(2.5));
        assert!(v["e"].is_null());
    }

    #[test]
    fn nested_blocks() {
        let v = parse_str("outer:\n  inner:\n    leaf: 7\n  other: x\ntop: y").unwrap();
        assert_eq!(v["outer"]["inner"]["leaf"].as_i64(), Some(7));
        assert_eq!(v["outer"]["other"].as_str(), Some("x"));
        assert_eq!(v["top"].as_str(), Some("y"));
    }

    #[test]
    fn sequences_block_and_flow() {
        let v = parse_str("items:\n  - 1\n  - 2\nflow: [3, 4, five]").unwrap();
        assert_eq!(v["items"][0].as_i64(), Some(1));
        assert_eq!(v["items"][1].as_i64(), Some(2));
        assert_eq!(v["flow"][2].as_str(), Some("five"));
    }

    #[test]
    fn sequence_at_key_indent() {
        // Kubernetes style: sequence dashes at the same column as the key.
        let v = parse_str("containers:\n- name: a\n- name: b").unwrap();
        assert_eq!(v["containers"].as_seq().unwrap().len(), 2);
        assert_eq!(v["containers"][1]["name"].as_str(), Some("b"));
    }

    #[test]
    fn compact_mapping_in_sequence() {
        let v = parse_str("ports:\n  - containerPort: 80\n    protocol: TCP").unwrap();
        assert_eq!(v["ports"][0]["containerPort"].as_i64(), Some(80));
        assert_eq!(v["ports"][0]["protocol"].as_str(), Some("TCP"));
    }

    #[test]
    fn nested_sequences() {
        let v = parse_str("m:\n  - - 1\n    - 2\n  - - 3").unwrap();
        assert_eq!(v["m"][0][1].as_i64(), Some(2));
        assert_eq!(v["m"][1][0].as_i64(), Some(3));
    }

    #[test]
    fn quoted_strings() {
        let v = parse_str(
            "a: \"hello: world # not comment\"\nb: 'it''s'\nc: \"tab\\there\"",
        )
        .unwrap();
        assert_eq!(v["a"].as_str(), Some("hello: world # not comment"));
        assert_eq!(v["b"].as_str(), Some("it's"));
        assert_eq!(v["c"].as_str(), Some("tab\there"));
    }

    #[test]
    fn comments_and_blanks() {
        let v = parse_str("# header\n\na: 1 # trailing\n\n# middle\nb: 2\n").unwrap();
        assert_eq!(v["a"].as_i64(), Some(1));
        assert_eq!(v["b"].as_i64(), Some(2));
    }

    #[test]
    fn flow_mapping() {
        let v = parse_str("limits: {cpu: 2, memory: 4Gi, debug: true}").unwrap();
        assert_eq!(v["limits"]["cpu"].as_i64(), Some(2));
        assert_eq!(v["limits"]["memory"].as_str(), Some("4Gi"));
        assert_eq!(v["limits"]["debug"].as_bool(), Some(true));
    }

    #[test]
    fn nested_flow() {
        let v = parse_str("x: {a: [1, {b: 2}], c: []}").unwrap();
        assert_eq!(v["x"]["a"][1]["b"].as_i64(), Some(2));
        assert_eq!(v["x"]["c"].as_seq().unwrap().len(), 0);
    }

    #[test]
    fn empty_flow_collections() {
        let v = parse_str("a: {}\nb: []").unwrap();
        assert_eq!(v["a"], Value::Map(vec![]));
        assert_eq!(v["b"], Value::Seq(vec![]));
    }

    #[test]
    fn literal_block_scalar() {
        let v = parse_str("script: |\n  line one\n  line two\nafter: 1").unwrap();
        assert_eq!(v["script"].as_str(), Some("line one\nline two\n"));
        assert_eq!(v["after"].as_i64(), Some(1));
    }

    #[test]
    fn literal_block_scalar_strip() {
        let v = parse_str("script: |-\n  just this").unwrap();
        assert_eq!(v["script"].as_str(), Some("just this"));
    }

    #[test]
    fn folded_block_scalar() {
        let v = parse_str("msg: >\n  folded into\n  one line\n\n  second para").unwrap();
        assert_eq!(v["msg"].as_str(), Some("folded into one line\nsecond para\n"));
    }

    #[test]
    fn multi_document() {
        let docs = parse_documents("---\na: 1\n---\nb: 2\n").unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0]["a"].as_i64(), Some(1));
        assert_eq!(docs[1]["b"].as_i64(), Some(2));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(parse_str("").unwrap(), Value::Null);
        assert_eq!(parse_str("# only a comment\n").unwrap(), Value::Null);
        assert_eq!(parse_documents("").unwrap().len(), 0);
    }

    #[test]
    fn values_with_colons_in_urls() {
        let v = parse_str("image: gcr.io/tensorflow-serving/resnet:latest").unwrap();
        // `:` not followed by space is part of the scalar.
        assert_eq!(v["image"].as_str(), Some("gcr.io/tensorflow-serving/resnet:latest"));
    }

    #[test]
    fn duplicate_keys_rejected() {
        let e = parse_str("a: 1\na: 2").unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn bad_indent_rejected() {
        assert!(parse_str("a: 1\n   b: 2").is_err());
    }

    #[test]
    fn tabs_in_indent_rejected() {
        assert!(parse_str("a:\n\tb: 1").is_err());
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(parse_str("a: \"oops").is_err());
        assert!(parse_str("a: 'oops").is_err());
    }

    #[test]
    fn negative_and_signed_numbers() {
        let v = parse_str("a: -3\nb: +4\nc: -2.5e2").unwrap();
        assert_eq!(v["a"].as_i64(), Some(-3));
        assert_eq!(v["b"].as_i64(), Some(4));
        assert_eq!(v["c"].as_f64(), Some(-250.0));
    }

    #[test]
    fn version_like_strings_stay_strings() {
        let v = parse_str("tag: 1.23.2\nport: 80").unwrap();
        assert_eq!(v["tag"].as_str(), Some("1.23.2"));
        assert_eq!(v["port"].as_i64(), Some(80));
    }

    #[test]
    fn full_k8s_deployment() {
        let text = r#"
apiVersion: apps/v1
kind: Deployment
metadata:
  name: nginx-deployment
  labels:
    app: nginx
    edge.service: "_demo.example.com:80"
spec:
  replicas: 0
  selector:
    matchLabels:
      app: nginx
  template:
    metadata:
      labels:
        app: nginx
    spec:
      schedulerName: edge-scheduler
      containers:
        - name: nginx
          image: nginx:1.23.2
          ports:
            - containerPort: 80
          volumeMounts:
            - name: content
              mountPath: /usr/share/nginx/html
      volumes:
        - name: content
          hostPath:
            path: /srv/edge/content
"#;
        let v = parse_str(text).unwrap();
        assert_eq!(v["kind"].as_str(), Some("Deployment"));
        assert_eq!(v["metadata"]["labels"]["edge.service"].as_str(), Some("_demo.example.com:80"));
        assert_eq!(v["spec"]["replicas"].as_i64(), Some(0));
        let c = &v["spec"]["template"]["spec"]["containers"][0];
        assert_eq!(c["image"].as_str(), Some("nginx:1.23.2"));
        assert_eq!(c["ports"][0]["containerPort"].as_i64(), Some(80));
        assert_eq!(
            v.path("spec/template/spec/volumes/0/hostPath/path").and_then(Value::as_str),
            Some("/srv/edge/content")
        );
    }
}
