//! Block-style YAML emission.
//!
//! The emitter produces the conventional Kubernetes manifest layout:
//! two-space indentation, sequences with inline compact mappings
//! (`- name: nginx`), and quoting only where a plain scalar would be
//! misparsed. Output is designed to round-trip through [`crate::parse_str`].

use crate::value::Value;

/// Renders a value as a YAML document (no leading `---`, trailing newline).
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    match value {
        Value::Map(m) if !m.is_empty() => emit_map(&mut out, m, 0),
        Value::Seq(s) if !s.is_empty() => emit_seq(&mut out, s, 0),
        other => {
            out.push_str(&scalar_repr(other));
            out.push('\n');
        }
    }
    out
}

fn indent_str(n: usize) -> String {
    " ".repeat(n)
}

fn emit_map(out: &mut String, entries: &[(String, Value)], indent: usize) {
    for (k, v) in entries {
        out.push_str(&indent_str(indent));
        out.push_str(&quote_if_needed(k));
        out.push(':');
        emit_value_after_key(out, v, indent);
    }
}

fn emit_value_after_key(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Map(m) if !m.is_empty() => {
            out.push('\n');
            emit_map(out, m, indent + 2);
        }
        Value::Seq(s) if !s.is_empty() => {
            out.push('\n');
            emit_seq(out, s, indent + 2);
        }
        Value::Map(_) => out.push_str(" {}\n"),
        Value::Seq(_) => out.push_str(" []\n"),
        Value::Str(s) if s.contains('\n') => emit_literal_block(out, s, indent + 2),
        scalar => {
            out.push(' ');
            out.push_str(&scalar_repr(scalar));
            out.push('\n');
        }
    }
}

fn emit_seq(out: &mut String, items: &[Value], indent: usize) {
    for item in items {
        out.push_str(&indent_str(indent));
        out.push('-');
        match item {
            Value::Map(m) if !m.is_empty() => {
                // Compact style: first entry on the dash line, the rest
                // aligned two columns deeper.
                let (k0, v0) = &m[0];
                out.push(' ');
                out.push_str(&quote_if_needed(k0));
                out.push(':');
                emit_value_after_key(out, v0, indent + 2);
                emit_map(out, &m[1..], indent + 2);
            }
            Value::Seq(s) if !s.is_empty() => {
                out.push('\n');
                emit_seq(out, s, indent + 2);
            }
            Value::Map(_) => out.push_str(" {}\n"),
            Value::Seq(_) => out.push_str(" []\n"),
            Value::Str(s) if s.contains('\n') => emit_literal_block(out, s, indent + 2),
            scalar => {
                out.push(' ');
                out.push_str(&scalar_repr(scalar));
                out.push('\n');
            }
        }
    }
}

fn emit_literal_block(out: &mut String, text: &str, indent: usize) {
    let strip = !text.ends_with('\n');
    out.push_str(if strip { " |-\n" } else { " |\n" });
    let body = if strip { text } else { &text[..text.len() - 1] };
    for line in body.split('\n') {
        if line.is_empty() {
            out.push('\n');
        } else {
            out.push_str(&indent_str(indent));
            out.push_str(line);
            out.push('\n');
        }
    }
}

fn scalar_repr(v: &Value) -> String {
    match v {
        Value::Null => "null".to_owned(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        // `{:?}` for f64 always produces a string that parses back to the
        // same value and always includes a `.` or exponent.
        Value::Float(f) => format!("{f:?}"),
        Value::Str(s) => quote_if_needed(s),
        Value::Seq(_) | Value::Map(_) => unreachable!("collections handled by callers"),
    }
}

/// Quotes a string scalar when a plain rendering would change its meaning.
fn quote_if_needed(s: &str) -> String {
    if needs_quoting(s) {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                '\0' => out.push_str("\\0"),
                other => out.push(other),
            }
        }
        out.push('"');
        out
    } else {
        s.to_owned()
    }
}

fn needs_quoting(s: &str) -> bool {
    if s.is_empty() {
        return true;
    }
    // Values the parser would resolve to something other than a string.
    if matches!(
        s,
        "~" | "null" | "Null" | "NULL" | "true" | "True" | "TRUE" | "false" | "False" | "FALSE"
    ) {
        return true;
    }
    if s.parse::<i64>().is_ok() {
        return true;
    }
    if crate::parser_numeric_check(s) && s.parse::<f64>().is_ok() {
        return true;
    }
    if s.starts_with(' ')
        || s.ends_with(' ')
        || s.starts_with('-') && (s.len() == 1 || s.as_bytes()[1] == b' ')
        || s.starts_with(['#', '[', ']', '{', '}', '&', '*', '!', '|', '>', '\'', '"', '%', '@'])
    {
        return true;
    }
    // `: ` or trailing `:` would be read as a key separator; ` #` starts a comment.
    let bytes = s.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b':' if i + 1 == bytes.len() || bytes[i + 1] == b' ' => return true,
            b'#' if i > 0 && bytes[i - 1] == b' ' => return true,
            b'\n' | b'\t' | b'\r' | 0 => return true,
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_str;

    fn roundtrip(v: &Value) -> Value {
        parse_str(&to_string(v)).unwrap()
    }

    #[test]
    fn scalars() {
        assert_eq!(to_string(&Value::Null), "null\n");
        assert_eq!(to_string(&Value::Bool(true)), "true\n");
        assert_eq!(to_string(&Value::Int(-7)), "-7\n");
        assert_eq!(to_string(&Value::Float(2.5)), "2.5\n");
        assert_eq!(to_string(&Value::from("hello")), "hello\n");
    }

    #[test]
    fn strings_that_look_like_other_types_get_quoted() {
        for s in ["true", "null", "42", "-1", "3.5", "", " padded ", "- dash", "a: b", "#x"] {
            let v = Value::from(s);
            assert_eq!(roundtrip(&v), v, "failed for {s:?}");
        }
    }

    #[test]
    fn version_strings_stay_plain() {
        // "1.23.2" is not a float, so no quotes needed.
        assert_eq!(to_string(&Value::from("1.23.2")), "1.23.2\n");
        assert_eq!(to_string(&Value::from("nginx:1.23.2")), "nginx:1.23.2\n");
    }

    #[test]
    fn nested_structure_layout() {
        let mut spec = Value::new_map();
        spec.insert("replicas", Value::Int(0));
        let mut container = Value::new_map();
        container.insert("name", Value::from("nginx"));
        container.insert("image", Value::from("nginx:1.23.2"));
        spec.insert("containers", Value::Seq(vec![container]));
        let mut root = Value::new_map();
        root.insert("spec", spec);

        let text = to_string(&root);
        assert_eq!(
            text,
            "spec:\n  replicas: 0\n  containers:\n    - name: nginx\n      image: nginx:1.23.2\n"
        );
        assert_eq!(roundtrip(&root), root);
    }

    #[test]
    fn empty_collections() {
        let mut root = Value::new_map();
        root.insert("m", Value::new_map());
        root.insert("s", Value::new_seq());
        assert_eq!(to_string(&root), "m: {}\ns: []\n");
        assert_eq!(roundtrip(&root), root);
    }

    #[test]
    fn multiline_strings_become_literal_blocks() {
        let mut root = Value::new_map();
        root.insert("script", Value::from("line one\nline two\n"));
        root.insert("nonl", Value::from("a\nb"));
        let text = to_string(&root);
        assert!(text.contains("script: |\n"), "{text}");
        assert!(text.contains("nonl: |-\n"), "{text}");
        assert_eq!(roundtrip(&root), root);
    }

    #[test]
    fn sequence_of_scalars() {
        let v = Value::Seq(vec![Value::Int(1), Value::from("two"), Value::Bool(false)]);
        assert_eq!(to_string(&v), "- 1\n- two\n- false\n");
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn deep_nesting_roundtrips() {
        let mut leaf = Value::new_map();
        leaf.insert("path", Value::from("/srv/edge"));
        let mut mid = Value::new_map();
        mid.insert("hostPath", leaf);
        mid.insert("name", Value::from("content"));
        let mut root = Value::new_map();
        root.insert("volumes", Value::Seq(vec![mid, Value::Null]));
        assert_eq!(roundtrip(&root), root);
    }
}
