//! Parse errors with source locations.

use std::fmt;

/// Result alias for yamlite operations.
pub type Result<T> = std::result::Result<T, ParseError>;

/// A parse failure, carrying the 1-based source line where it occurred.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Creates an error at `line` with the given message.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "yaml parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = ParseError::new(7, "bad indent");
        assert_eq!(e.to_string(), "yaml parse error at line 7: bad indent");
    }
}
