//! `yamlite` — a small, dependency-free YAML subset parser and emitter.
//!
//! The transparent-edge controller consumes Kubernetes-`Deployment`-style
//! service definition files and re-emits annotated manifests. Those files use
//! a well-behaved subset of YAML 1.2, which this crate implements from
//! scratch:
//!
//! * block mappings and sequences with indentation-based nesting,
//! * plain / single-quoted / double-quoted scalars with type resolution
//!   (null, bool, int, float, string),
//! * flow collections (`[a, b]`, `{k: v}`),
//! * literal (`|`) and folded (`>`) block scalars,
//! * comments, blank lines and multi-document streams (`---`).
//!
//! Anchors, aliases, tags and complex keys are intentionally out of scope —
//! Kubernetes manifests do not use them.
//!
//! ```
//! let doc = yamlite::parse_str("
//! apiVersion: apps/v1
//! kind: Deployment
//! spec:
//!   replicas: 0
//!   template:
//!     spec:
//!       containers:
//!         - name: nginx
//!           image: nginx:1.23.2
//! ").unwrap();
//! assert_eq!(doc["kind"].as_str(), Some("Deployment"));
//! assert_eq!(doc["spec"]["replicas"].as_i64(), Some(0));
//! assert_eq!(doc["spec"]["template"]["spec"]["containers"][0]["image"].as_str(),
//!            Some("nginx:1.23.2"));
//! ```

#![warn(missing_docs)]

mod emitter;
mod error;
mod parser;
mod value;

pub(crate) use parser::looks_numeric as parser_numeric_check;

pub use emitter::to_string;
pub use error::{ParseError, Result};
pub use parser::{parse_documents, parse_str};
pub use value::Value;
