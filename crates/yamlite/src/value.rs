//! The YAML data model.

use std::fmt;
use std::ops::Index;

/// A parsed YAML value.
///
/// Mappings preserve insertion order (Kubernetes manifests are written and
/// compared with field order intact), so they are stored as a vector of
/// key/value pairs rather than a hash map. Key lookup is linear, which is
/// ample for manifest-sized documents.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`, `~` or an empty value.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string scalar.
    Str(String),
    /// A sequence (`- item` or `[a, b]`).
    Seq(Vec<Value>),
    /// A mapping (`key: value` or `{k: v}`), in insertion order.
    Map(Vec<(String, Value)>),
}

/// Shared "absent value" returned by out-of-range indexing, so `doc["a"]["b"]`
/// chains never panic.
static NULL: Value = Value::Null;

impl Value {
    /// An empty mapping.
    pub fn new_map() -> Value {
        Value::Map(Vec::new())
    }

    /// An empty sequence.
    pub fn new_seq() -> Value {
        Value::Seq(Vec::new())
    }

    /// `true` if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrows the string if this is a string scalar.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer if this is an int scalar.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the number as a float if this is an int or float scalar.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the boolean if this is a bool scalar.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrows the elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Mutably borrows the elements if this is a sequence.
    pub fn as_seq_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the entries if this is a mapping.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up `key` in a mapping; `None` for missing keys or non-mappings.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable lookup of `key` in a mapping.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Map(m) => m.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Inserts or replaces `key` in a mapping, preserving the position of an
    /// existing key.
    ///
    /// # Panics
    /// Panics if `self` is not a mapping (callers decide the shape first).
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        match self {
            Value::Map(m) => {
                if let Some(slot) = m.iter_mut().find(|(k, _)| *k == key) {
                    slot.1 = value;
                } else {
                    m.push((key, value));
                }
            }
            _ => panic!("Value::insert on non-mapping"),
        }
    }

    /// Removes `key` from a mapping, returning the removed value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        match self {
            Value::Map(m) => {
                let idx = m.iter().position(|(k, _)| k == key)?;
                Some(m.remove(idx).1)
            }
            _ => None,
        }
    }

    /// `true` if a mapping contains `key`.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Navigates a `/`-separated path of mapping keys and sequence indices,
    /// e.g. `spec/template/spec/containers/0/image`.
    pub fn path(&self, path: &str) -> Option<&Value> {
        let mut cur = self;
        for part in path.split('/').filter(|p| !p.is_empty()) {
            cur = match cur {
                Value::Map(_) => cur.get(part)?,
                Value::Seq(s) => s.get(part.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Ensures `key` exists as a mapping and returns it mutably, creating an
    /// empty mapping (or replacing a `Null`) if needed.
    ///
    /// # Panics
    /// Panics if `self` is not a mapping or if `key` holds a non-mapping,
    /// non-null value.
    pub fn entry_map(&mut self, key: &str) -> &mut Value {
        if !self.contains_key(key) || self.get(key).is_some_and(Value::is_null) {
            self.insert(key, Value::new_map());
        }
        let v = self.get_mut(key).expect("just inserted");
        assert!(matches!(v, Value::Map(_)), "entry_map: `{key}` is not a mapping");
        v
    }
}

impl Index<&str> for Value {
    type Output = Value;
    /// Mapping lookup; returns `Null` for anything missing (never panics).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    /// Sequence lookup; returns `Null` out of range (never panics).
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Seq(s) => s.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::emitter::to_string(self))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Float(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        let mut m = Value::new_map();
        m.insert("name", Value::from("edge"));
        m.insert("replicas", Value::from(3i64));
        m.insert("enabled", Value::from(true));
        m.insert("ratio", Value::from(0.5));
        m.insert(
            "items",
            Value::Seq(vec![Value::from("a"), Value::from("b")]),
        );
        m
    }

    #[test]
    fn accessors() {
        let v = sample();
        assert_eq!(v["name"].as_str(), Some("edge"));
        assert_eq!(v["replicas"].as_i64(), Some(3));
        assert_eq!(v["replicas"].as_f64(), Some(3.0));
        assert_eq!(v["enabled"].as_bool(), Some(true));
        assert_eq!(v["ratio"].as_f64(), Some(0.5));
        assert_eq!(v["items"][1].as_str(), Some("b"));
        assert!(v["missing"].is_null());
        assert!(v["items"][99].is_null());
        assert!(v["name"][0].is_null());
    }

    #[test]
    fn insert_replaces_in_place() {
        let mut v = sample();
        v.insert("name", Value::from("other"));
        let keys: Vec<&str> = v.as_map().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys[0], "name");
        assert_eq!(v["name"].as_str(), Some("other"));
    }

    #[test]
    fn remove_and_contains() {
        let mut v = sample();
        assert!(v.contains_key("ratio"));
        assert_eq!(v.remove("ratio"), Some(Value::Float(0.5)));
        assert!(!v.contains_key("ratio"));
        assert_eq!(v.remove("ratio"), None);
    }

    #[test]
    fn path_navigation() {
        let mut root = Value::new_map();
        root.insert("spec", sample());
        assert_eq!(root.path("spec/items/0").and_then(Value::as_str), Some("a"));
        assert_eq!(root.path("spec/replicas").and_then(Value::as_i64), Some(3));
        assert!(root.path("spec/missing/x").is_none());
        assert!(root.path("spec/items/notanumber").is_none());
    }

    #[test]
    fn entry_map_creates_and_reuses() {
        let mut v = Value::new_map();
        v.entry_map("metadata").insert("name", Value::from("x"));
        v.entry_map("metadata").insert("ns", Value::from("y"));
        assert_eq!(v["metadata"]["name"].as_str(), Some("x"));
        assert_eq!(v["metadata"]["ns"].as_str(), Some("y"));
        // Null values are upgraded to maps.
        v.insert("labels", Value::Null);
        v.entry_map("labels").insert("app", Value::from("z"));
        assert_eq!(v["labels"]["app"].as_str(), Some("z"));
    }

    #[test]
    #[should_panic(expected = "not a mapping")]
    fn entry_map_rejects_scalars() {
        let mut v = Value::new_map();
        v.insert("x", Value::from(1i64));
        v.entry_map("x");
    }
}
