//! Runtime-chaos recovery bench: the self-healing control plane in numbers.
//!
//! Like [`crate::mobility`] this is plain `std` (no criterion) so the
//! `repro recovery` subcommand can run it directly and emit the
//! machine-readable `BENCH_recovery.json` summary that tracks the
//! self-healing numbers across PRs. It replays the deterministic
//! runtime-chaos scenario behind `testbed::experiments::recovery` — once per
//! [`HandoverPolicy`] — and reduces each run to the injected-fault counts,
//! the client-visible repair work (retransmits), and the two acceptance
//! gates: permanently stranded sessions and the residual of the final
//! switch-table reconciliation pass (both must be 0).

use edgectl::HandoverPolicy;
use std::path::PathBuf;
use testbed::experiments;

/// One policy's measurements.
#[derive(Clone, Debug)]
pub struct PolicyPoint {
    /// Policy label (`anchored` / `redispatch`).
    pub policy: &'static str,
    /// Ready instances killed mid-run.
    pub crashes: u64,
    /// Whole-zone outage windows injected.
    pub outages: u64,
    /// Switch↔controller channel drops injected.
    pub channel_losses: u64,
    /// Control messages lost to a down channel.
    pub ctrl_dropped: u64,
    /// Client retransmissions (lost SYNs and pings resent).
    pub retransmits: u64,
    /// Pings sent.
    pub pings_sent: u64,
    /// Pings answered.
    pub pings_done: u64,
    /// Sessions permanently stranded after recovery settled (want 0).
    pub stranded: u64,
    /// Fixes issued by the final reconciliation sweep.
    pub reconcile_fixes: u64,
    /// Fixes the second sweep still wanted (want 0).
    pub reconcile_residual: u64,
}

/// The full recovery report.
#[derive(Clone, Debug)]
pub struct Report {
    /// Seed the scenario ran under.
    pub seed: u64,
    /// Per-zone / per-channel runtime-fault probability.
    pub fault_rate: f64,
    /// Smoke (short) or full trace.
    pub smoke: bool,
    /// One row per handover policy.
    pub points: Vec<PolicyPoint>,
}

impl Report {
    /// Permanently stranded sessions across both policies (want: 0).
    pub fn total_stranded(&self) -> u64 {
        self.points.iter().map(|p| p.stranded).sum()
    }

    /// Residual reconciliation fixes across both policies (want: 0 — the
    /// switch tables diff clean against the controller's bookkeeping).
    pub fn total_residual(&self) -> u64 {
        self.points.iter().map(|p| p.reconcile_residual).sum()
    }

    /// Renders the hand-rolled JSON summary (`serde` is deliberately not a
    /// dependency of this workspace).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\n  \"bench\": \"recovery\",\n  \"seed\": {},\n  \"fault_rate\": {},\n  \
             \"smoke\": {},\n  \"policies\": [\n",
            self.seed, self.fault_rate, self.smoke
        );
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"policy\": \"{}\", \"crashes\": {}, \"outages\": {}, \
                 \"channel_losses\": {}, \"ctrl_dropped\": {}, \"retransmits\": {}, \
                 \"pings_sent\": {}, \"pings_done\": {}, \"stranded\": {}, \
                 \"reconcile_fixes\": {}, \"reconcile_residual\": {}}}{}\n",
                p.policy,
                p.crashes,
                p.outages,
                p.channel_losses,
                p.ctrl_dropped,
                p.retransmits,
                p.pings_sent,
                p.pings_done,
                p.stranded,
                p.reconcile_fixes,
                p.reconcile_residual,
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "  ],\n  \"total_stranded\": {},\n  \"total_reconcile_residual\": {}\n}}\n",
            self.total_stranded(),
            self.total_residual()
        ));
        s
    }

    /// Renders a human-readable table.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "policy       crashes  outages  ch.drops  ctrl lost  retransmits    pings  answered  stranded  fix/resid\n",
        );
        for p in &self.points {
            s.push_str(&format!(
                "{:<12} {:>7}  {:>7}  {:>8}  {:>9}  {:>11}  {:>7}  {:>8}  {:>8}  {:>4}/{}\n",
                p.policy,
                p.crashes,
                p.outages,
                p.channel_losses,
                p.ctrl_dropped,
                p.retransmits,
                p.pings_sent,
                p.pings_done,
                p.stranded,
                p.reconcile_fixes,
                p.reconcile_residual
            ));
        }
        s.push_str(&format!(
            "total stranded {} (want 0), reconcile residual {} (want 0)\n",
            self.total_stranded(),
            self.total_residual()
        ));
        s
    }
}

/// Where `BENCH_recovery.json` is written: the repository root.
pub fn default_output_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_recovery.json")
}

/// Runs the runtime-chaos scenario under both policies and reduces the
/// results.
pub fn run(seed: u64, fault_rate: f64, smoke: bool) -> Report {
    let points = [HandoverPolicy::Anchored, HandoverPolicy::Redispatch]
        .into_iter()
        .map(|policy| {
            let s = experiments::recovery_stats(policy, seed, fault_rate, smoke);
            PolicyPoint {
                policy: policy.label(),
                crashes: s.instance_crashes,
                outages: s.zone_outages,
                channel_losses: s.channel_losses,
                ctrl_dropped: s.ctrl_dropped,
                retransmits: s.retransmits,
                pings_sent: s.pings_sent,
                pings_done: s.pings_done,
                stranded: s.stranded,
                reconcile_fixes: s.reconcile_fixes,
                reconcile_residual: s.reconcile_residual,
            }
        })
        .collect();
    Report { seed, fault_rate, smoke, points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let r = Report {
            seed: 7,
            fault_rate: 1.0,
            smoke: true,
            points: vec![PolicyPoint {
                policy: "anchored",
                crashes: 2,
                outages: 3,
                channel_losses: 3,
                ctrl_dropped: 5,
                retransmits: 4,
                pings_sent: 300,
                pings_done: 300,
                stranded: 0,
                reconcile_fixes: 1,
                reconcile_residual: 0,
            }],
        };
        let j = r.to_json();
        assert!(j.contains("\"bench\": \"recovery\""));
        assert!(j.contains("\"policy\": \"anchored\""));
        assert!(j.contains("\"channel_losses\": 3"));
        assert!(j.contains("\"total_stranded\": 0"));
        assert!(j.contains("\"total_reconcile_residual\": 0"));
        assert!(r.render().contains("want 0"));
    }

    #[test]
    fn full_chaos_smoke_run_self_heals() {
        let r = run(7, 1.0, true);
        assert_eq!(r.points.len(), 2);
        assert_eq!(r.total_stranded(), 0, "no session permanently stranded");
        assert_eq!(r.total_residual(), 0, "switch tables reconcile clean");
        assert!(r.points.iter().all(|p| p.outages > 0 && p.channel_losses > 0));
        assert!(r.points.iter().all(|p| p.pings_done > 0));
    }

    #[test]
    fn repro_artifact_is_deterministic() {
        // The whole BENCH_recovery.json artifact — not just the figure —
        // must be byte-identical per seed on the calendar event core.
        let a = run(7, 1.0, true);
        let b = run(7, 1.0, true);
        assert_eq!(a.to_json(), b.to_json(), "same seed ⇒ same artifact");
    }
}
