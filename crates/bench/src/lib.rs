//! Shared helpers for the benchmark suite and the `repro` binary.

#![warn(missing_docs)]

pub mod engine;
pub mod fastpath;
pub mod ha;
pub mod migrate;
pub mod mobility;
pub mod recovery;
pub mod scale;
pub mod summary;
pub mod telemetry;
pub mod tournament;

use testbed::experiments::{self, EvalRuns, Figure};

/// Regenerates every table/figure of the paper (and the ablations) for one
/// seed, in publication order.
pub fn all_figures(seed: u64) -> Vec<Figure> {
    let mut out = Vec::new();
    out.push(experiments::table1());
    out.push(experiments::fig9(seed));
    out.push(experiments::fig10(seed));
    let scale_up = EvalRuns::collect(true, seed);
    let create_scale = EvalRuns::collect(false, seed);
    out.push(experiments::fig11(&scale_up));
    out.push(experiments::fig12(&create_scale));
    out.push(experiments::fig13(32));
    out.push(experiments::fig14(&scale_up));
    out.push(experiments::fig15(&create_scale));
    out.push(experiments::fig16(&scale_up));
    out.push(experiments::hybrid(seed));
    out.push(experiments::waiting_comparison(seed));
    out.push(experiments::timeout_sweep(seed));
    out.push(experiments::proactive(seed));
    out.push(experiments::local_scheduler(seed));
    out.push(experiments::hierarchy(seed));
    out
}

/// Regenerates a single figure by id (`table1`, `fig9` ... `fig16`,
/// `hybrid`, `waiting`, `timeout-sweep`).
pub fn figure_by_id(id: &str, seed: u64) -> Option<Figure> {
    Some(match id {
        "table1" => experiments::table1(),
        "fig9" => experiments::fig9(seed),
        "fig10" => experiments::fig10(seed),
        "fig11" => experiments::fig11(&EvalRuns::collect(true, seed)),
        "fig12" => experiments::fig12(&EvalRuns::collect(false, seed)),
        "fig13" => experiments::fig13(32),
        "fig14" => experiments::fig14(&EvalRuns::collect(true, seed)),
        "fig15" => experiments::fig15(&EvalRuns::collect(false, seed)),
        "fig16" => experiments::fig16(&EvalRuns::collect(true, seed)),
        "hybrid" => experiments::hybrid(seed),
        "waiting" => experiments::waiting_comparison(seed),
        "timeout-sweep" => experiments::timeout_sweep(seed),
        "proactive" => experiments::proactive(seed),
        "local-scheduler" => experiments::local_scheduler(seed),
        "hierarchy" => experiments::hierarchy(seed),
        _ => return None,
    })
}

/// The chaos experiment: fault injection over the deployment pipeline.
/// Not part of [`all_figures`] — its output depends on the fault rate, so
/// the `repro chaos` subcommand drives it explicitly.
pub fn chaos_figure(seed: u64, fault_rate: f64, smoke: bool) -> Figure {
    experiments::chaos(seed, fault_rate, smoke)
}

/// The chaos experiment with span recording on: the same figure plus the
/// merged span log and metrics snapshot (`repro chaos --telemetry`).
pub fn chaos_figure_traced(
    seed: u64,
    fault_rate: f64,
    smoke: bool,
) -> (Figure, ::telemetry::SpanLog, ::telemetry::MetricsRegistry) {
    experiments::chaos_traced(seed, fault_rate, smoke)
}

/// The mobility experiment: multi-gNB handover under user mobility. Like
/// chaos, not part of [`all_figures`] — the `repro mobility` subcommand
/// drives it explicitly (and writes `BENCH_mobility.json`).
pub fn mobility_figure(seed: u64, smoke: bool) -> Figure {
    experiments::mobility(seed, smoke)
}

/// The mobility experiment with span recording on: the same figure plus the
/// merged span log and metrics snapshot (`repro mobility --telemetry`).
pub fn mobility_figure_traced(
    seed: u64,
    smoke: bool,
) -> (Figure, ::telemetry::SpanLog, ::telemetry::MetricsRegistry) {
    experiments::mobility_traced(seed, smoke)
}

/// The recovery experiment: runtime chaos (instance crashes, zone outages,
/// channel loss) against the self-healing control plane. Like chaos, not
/// part of [`all_figures`] — the `repro recovery` subcommand drives it
/// explicitly (and writes `BENCH_recovery.json`).
pub fn recovery_figure(seed: u64, fault_rate: f64, smoke: bool) -> Figure {
    experiments::recovery(seed, fault_rate, smoke)
}

/// The recovery experiment with span recording on: the same figure plus the
/// merged span log and metrics snapshot (`repro recovery --telemetry`).
pub fn recovery_figure_traced(
    seed: u64,
    fault_rate: f64,
    smoke: bool,
) -> (Figure, ::telemetry::SpanLog, ::telemetry::MetricsRegistry) {
    experiments::recovery_traced(seed, fault_rate, smoke)
}

/// The figure ids `figure_by_id` accepts, in order.
pub const FIGURE_IDS: &[&str] = &[
    "table1", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "hybrid",
    "waiting", "timeout-sweep", "proactive", "local-scheduler", "hierarchy",
];
