//! Live-migration bench: interruption and transfer cost as session state
//! grows.
//!
//! Like [`crate::mobility`] this is plain `std` (no criterion) so the
//! `repro migrate` subcommand can run it directly and emit the
//! machine-readable `BENCH_migrate.json` summary. It replays the
//! deterministic mobility scenario twice per swept state size:
//!
//! * **live** — anchored handovers plus `edgectl::migrate` chasing the
//!   client (snapshot + background transfer + make-before-break flip);
//! * **cold** — the PR 4 re-dispatch baseline: the session is re-placed
//!   through the Global Scheduler and its state is lost, so the replacement
//!   instance must re-fetch an equivalent snapshot over the same metro link
//!   *before it can answer* — a client-visible rebuild that grows with the
//!   state, where live's transfer runs in the background.
//!
//! The claim under test: the live flip keeps the client-visible interruption
//! flat while state grows — the transfer cost scales linearly in bytes, but
//! the source keeps serving throughout — so live p99 stays below cold p99 at
//! every swept size.

use desim::Summary;
use std::path::PathBuf;
use testbed::experiments;

/// One swept state size: the live arm and its cold baseline, side by side
/// (times in milliseconds).
#[derive(Clone, Debug)]
pub struct SizePoint {
    /// Session-state growth per served request, bytes.
    pub state_bytes_per_request: u64,
    /// Live migrations completed.
    pub migrations: u64,
    /// Migrations abandoned mid-transfer.
    pub aborted: u64,
    /// Session-state bytes shipped zone-to-zone (live, background).
    pub state_bytes_transferred: u64,
    /// Redirect flows flipped make-before-break.
    pub flows_flipped: u64,
    /// Background transfer-time median, ms (cost, not interruption).
    pub transfer_p50_ms: f64,
    /// Background transfer-time 99th percentile, ms.
    pub transfer_p99_ms: f64,
    /// Live move-interruption median, ms (handover + migration flips).
    pub p50_ms: f64,
    /// Live move-interruption 99th percentile, ms.
    pub p99_ms: f64,
    /// Pings answered on the live arm (== pings sent on a clean run).
    pub pings: u64,
    /// Live pings lost + frames dropped (want 0).
    pub dropped: u64,
    /// Cold-arm handovers performed.
    pub cold_handovers: u64,
    /// Cold move-interruption median, ms (re-dispatch + state rebuild).
    pub cold_p50_ms: f64,
    /// Cold move-interruption 99th percentile, ms.
    pub cold_p99_ms: f64,
    /// Cold pings lost + frames dropped (want 0).
    pub cold_dropped: u64,
}

/// The full migration report.
#[derive(Clone, Debug)]
pub struct Report {
    /// Seed the scenario ran under.
    pub seed: u64,
    /// Smoke (short) or full sweep.
    pub smoke: bool,
    /// One live-vs-cold row per swept state size, ascending.
    pub sizes: Vec<SizePoint>,
}

impl Report {
    /// Pings lost or frames dropped across every run, both arms (want: 0).
    pub fn total_dropped(&self) -> u64 {
        self.sizes.iter().map(|p| p.dropped + p.cold_dropped).sum()
    }

    /// The headline gate: live interruption p99 at the *largest* swept state
    /// size must not exceed the cold baseline's p99 at that same size —
    /// otherwise migrating the state bought nothing over re-deploying cold.
    pub fn gate_holds(&self) -> bool {
        self.sizes
            .last()
            .map(|p| p.p99_ms <= p.cold_p99_ms)
            .unwrap_or(false)
    }

    /// Renders the hand-rolled JSON summary (`serde` is deliberately not a
    /// dependency of this workspace).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\n  \"bench\": \"migrate\",\n  \"seed\": {},\n  \"smoke\": {},\n  \
             \"sizes\": [\n",
            self.seed, self.smoke
        );
        for (i, p) in self.sizes.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"state_bytes_per_request\": {}, \"migrations\": {}, \
                 \"aborted\": {}, \"state_bytes_transferred\": {}, \
                 \"flows_flipped\": {}, \"transfer_p50_ms\": {:.3}, \
                 \"transfer_p99_ms\": {:.3}, \"interruption_p50_ms\": {:.3}, \
                 \"interruption_p99_ms\": {:.3}, \"pings\": {}, \"dropped\": {}, \
                 \"cold_handovers\": {}, \"cold_interruption_p50_ms\": {:.3}, \
                 \"cold_interruption_p99_ms\": {:.3}, \"cold_dropped\": {}}}{}\n",
                p.state_bytes_per_request,
                p.migrations,
                p.aborted,
                p.state_bytes_transferred,
                p.flows_flipped,
                p.transfer_p50_ms,
                p.transfer_p99_ms,
                p.p50_ms,
                p.p99_ms,
                p.pings,
                p.dropped,
                p.cold_handovers,
                p.cold_p50_ms,
                p.cold_p99_ms,
                p.cold_dropped,
                if i + 1 < self.sizes.len() { "," } else { "" }
            ));
        }
        let last = self.sizes.last();
        s.push_str(&format!(
            "  ],\n  \"largest_state_bytes_per_request\": {},\n  \
             \"live_p99_ms_at_largest\": {:.3},\n  \"cold_p99_ms\": {:.3},\n  \
             \"total_migrations\": {},\n  \"total_state_bytes_transferred\": {},\n  \
             \"gate_live_p99_le_cold_p99\": {},\n  \"total_dropped\": {}\n}}\n",
            last.map(|p| p.state_bytes_per_request).unwrap_or(0),
            last.map(|p| p.p99_ms).unwrap_or(f64::NAN),
            last.map(|p| p.cold_p99_ms).unwrap_or(f64::NAN),
            self.sizes.iter().map(|p| p.migrations).sum::<u64>(),
            self.sizes.iter().map(|p| p.state_bytes_transferred).sum::<u64>(),
            self.gate_holds(),
            self.total_dropped()
        ));
        s
    }

    /// Renders a human-readable table.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "bytes/req   migs  state [B]   transfer p50/p99 [ms]  \
             live p50/p99 [ms]  cold p50/p99 [ms]  dropped\n",
        );
        for p in &self.sizes {
            s.push_str(&format!(
                "{:>9}  {:>5}  {:>9}  {:>10.1}/{:>8.1}  {:>7.2}/{:>7.2}  {:>7.1}/{:>7.1}  {:>7}\n",
                p.state_bytes_per_request,
                p.migrations,
                p.state_bytes_transferred,
                p.transfer_p50_ms,
                p.transfer_p99_ms,
                p.p50_ms,
                p.p99_ms,
                p.cold_p50_ms,
                p.cold_p99_ms,
                p.dropped + p.cold_dropped
            ));
        }
        s.push_str(&format!(
            "gate: live p99 at largest state {} cold p99 ({})\n\
             total dropped {} (want 0)\n",
            if self.gate_holds() { "<=" } else { "EXCEEDS" },
            if self.gate_holds() { "holds" } else { "FAILS" },
            self.total_dropped()
        ));
        s
    }
}

/// Where `BENCH_migrate.json` is written: the repository root.
pub fn default_output_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_migrate.json")
}

fn pct(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    Summary::new(xs.to_vec()).percentile(p).unwrap_or(0.0) * 1e3
}

/// The swept per-request state sizes: 0 bytes (the degenerate case — a live
/// migration is then exactly the PR 4 make-before-break handover, and the
/// cold rebuild is a bare metro round trip) up past the point where a
/// snapshot takes visible fractions of a second on the 200 Mbps metro link.
pub fn swept_sizes(smoke: bool) -> &'static [u64] {
    if smoke {
        &[0, 4_096, 65_536]
    } else {
        &[0, 4_096, 65_536, 262_144]
    }
}

/// Runs the live arm and the cold baseline once per swept state size.
pub fn run(seed: u64, smoke: bool) -> Report {
    let sizes = swept_sizes(smoke)
        .iter()
        .map(|&bytes| {
            let s = experiments::migration_stats(true, bytes, seed, smoke);
            let c = experiments::migration_stats(false, bytes, seed, smoke);
            SizePoint {
                state_bytes_per_request: bytes,
                migrations: s.migrations,
                aborted: s.migrations_aborted,
                state_bytes_transferred: s.state_bytes_transferred,
                flows_flipped: s.flows_flipped,
                transfer_p50_ms: pct(&s.transfers, 50.0),
                transfer_p99_ms: pct(&s.transfers, 99.0),
                p50_ms: pct(&s.interruptions, 50.0),
                p99_ms: pct(&s.interruptions, 99.0),
                pings: s.pings_done,
                dropped: (s.pings_sent - s.pings_done) + s.drops,
                cold_handovers: c.handovers,
                cold_p50_ms: pct(&c.interruptions, 50.0),
                cold_p99_ms: pct(&c.interruptions, 99.0),
                cold_dropped: (c.pings_sent - c.pings_done) + c.drops,
            }
        })
        .collect();
    Report { seed, smoke, sizes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn size(bytes: u64, p99: f64, transfer_p99: f64, cold_p99: f64) -> SizePoint {
        SizePoint {
            state_bytes_per_request: bytes,
            migrations: 5,
            aborted: 0,
            state_bytes_transferred: bytes * 100,
            flows_flipped: 18,
            transfer_p50_ms: transfer_p99 / 2.0,
            transfer_p99_ms: transfer_p99,
            p50_ms: p99 / 2.0,
            p99_ms: p99,
            pings: 300,
            dropped: 0,
            cold_handovers: 9,
            cold_p50_ms: cold_p99 / 2.0,
            cold_p99_ms: cold_p99,
            cold_dropped: 0,
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let r = Report {
            seed: 7,
            smoke: true,
            sizes: vec![size(0, 3.4, 2.0, 502.0), size(65_536, 3.4, 850.0, 900.0)],
        };
        let j = r.to_json();
        assert!(j.contains("\"bench\": \"migrate\""));
        assert!(j.contains("\"state_bytes_per_request\": 65536"));
        assert!(j.contains("\"transfer_p99_ms\": 850.000"));
        assert!(j.contains("\"cold_interruption_p99_ms\": 900.000"));
        assert!(j.contains("\"largest_state_bytes_per_request\": 65536"));
        assert!(j.contains("\"live_p99_ms_at_largest\": 3.400"));
        assert!(j.contains("\"cold_p99_ms\": 900.000"));
        assert!(j.contains("\"total_migrations\": 10"));
        assert!(j.contains("\"gate_live_p99_le_cold_p99\": true"));
        assert!(j.contains("\"total_dropped\": 0"));
        assert!(r.render().contains("holds"));
    }

    #[test]
    fn gate_compares_the_largest_size_only() {
        let mut r = Report {
            seed: 7,
            smoke: true,
            sizes: vec![size(0, 3.0, 2.0, 10.0), size(65_536, 50.0, 850.0, 10.0)],
        };
        assert!(!r.gate_holds(), "largest size exceeds cold");
        r.sizes[1].p99_ms = 9.0;
        assert!(r.gate_holds());
        r.sizes.clear();
        assert!(!r.gate_holds(), "an empty sweep proves nothing");
    }

    #[test]
    fn smoke_run_meets_the_gate_and_scales_linearly() {
        let r = run(7, true);
        assert_eq!(r.sizes.len(), swept_sizes(true).len());
        assert_eq!(r.total_dropped(), 0, "no ping lost, no frame dropped");
        assert!(r.sizes.iter().all(|p| p.cold_handovers > 0));
        assert!(r.sizes.iter().all(|p| p.migrations > 0), "live arm migrated");
        assert!(r.gate_holds(), "live p99 must not exceed cold p99");
        // Live interruption stays below cold at *every* swept size, not just
        // the largest — the flip cost does not grow with state, while the
        // cold rebuild pays at least a metro round trip even at state zero.
        for p in &r.sizes {
            assert!(
                p.p99_ms <= p.cold_p99_ms,
                "live p99 {:.2} ms above cold {:.2} ms at {} B/req",
                p.p99_ms,
                p.cold_p99_ms,
                p.state_bytes_per_request
            );
        }
        // Transfer cost grows with state: strictly more bytes shipped, and
        // no cheaper p99 transfer, at every step up the sweep. The cold
        // rebuild grows alongside — its p99 never shrinks as state grows.
        for w in r.sizes.windows(2) {
            assert!(w[1].state_bytes_transferred > w[0].state_bytes_transferred);
            assert!(w[1].transfer_p99_ms >= w[0].transfer_p99_ms);
            assert!(w[1].cold_p99_ms >= w[0].cold_p99_ms);
        }
    }

    #[test]
    fn repro_artifact_is_deterministic() {
        let a = run(7, true);
        let b = run(7, true);
        assert_eq!(a.to_json(), b.to_json(), "same seed ⇒ same artifact");
    }
}
