//! Event-core throughput: the desim calendar queue vs the naive binary heap.
//!
//! This module is plain `std` (no criterion) so it can run both from the
//! `repro engine` subcommand and from the `engine` criterion bench; it emits
//! the machine-readable `BENCH_engine.json` summary that tracks the perf
//! trajectory across PRs. Three workload shapes, each run over both queue
//! implementations with identical seeds:
//!
//! * **schedule_heavy** — push a large batch of uniformly-spread future
//!   events, then drain. Dominated by insertion cost.
//! * **pop_heavy** — pre-fill the queue (untimed), then time the drain
//!   alone. Dominated by extraction cost.
//! * **mixed** — the mobility-shaped steady state: a fixed pending
//!   population where every pop schedules a successor, 80% near-future
//!   (sub-2 ms timers, frames, ticks) and 20% far-future (idle expiries,
//!   think times). This is the cycle real testbed runs spend their time in
//!   and the one the CI floor gates.
//!
//! The headline acceptance numbers: mixed-workload calendar throughput at
//! least [`MIXED_SPEEDUP_FLOOR`]× the naive baseline measured in the same
//! run, and at least [`EVENTS_PER_SEC_FLOOR`] events/sec absolute (full
//! runs; smoke runs check only the relative bar, which is
//! machine-independent).

use desim::{EventQueue, NaiveEventQueue, SimRng, SimTime};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Relative bar: calendar mixed throughput over naive, same run (want ≥ 3).
pub const MIXED_SPEEDUP_FLOOR: f64 = 3.0;

/// Absolute CI floor on full-run mixed calendar throughput, in events/sec.
/// Set to one quarter of the number measured on the reference machine when
/// this bench landed, so CI machine jitter does not flake the gate while a
/// real regression (a reverted fast path pops at well under half) still
/// trips it.
pub const EVENTS_PER_SEC_FLOOR: f64 = 3_800_000.0;

/// One workload measured over both queue implementations.
#[derive(Clone, Debug)]
pub struct WorkloadPoint {
    /// Workload id: `schedule_heavy`, `pop_heavy`, or `mixed`.
    pub name: &'static str,
    /// Events pushed through each queue.
    pub events: usize,
    /// Calendar-queue throughput (events through the queue per wall second).
    pub calendar_events_per_sec: f64,
    /// Binary-heap reference throughput, same seed and schedule.
    pub naive_events_per_sec: f64,
    /// Highest pending-event count the workload reaches.
    pub peak_pending: usize,
}

impl WorkloadPoint {
    /// Calendar over naive throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.calendar_events_per_sec / self.naive_events_per_sec
    }
}

/// The full engine-throughput report.
#[derive(Clone, Debug)]
pub struct Report {
    /// One row per workload shape.
    pub points: Vec<WorkloadPoint>,
    /// `true` when sizes were scaled down for a smoke run (absolute floor
    /// not asserted).
    pub smoke: bool,
}

impl Report {
    /// The mixed-workload row — the one the acceptance gates read.
    pub fn mixed(&self) -> &WorkloadPoint {
        self.points
            .iter()
            .find(|p| p.name == "mixed")
            .expect("mixed workload always measured")
    }

    /// Mixed-workload calendar speedup over the naive baseline.
    pub fn mixed_speedup(&self) -> f64 {
        self.mixed().speedup()
    }

    /// `true` when the absolute events/sec floor holds (only meaningful for
    /// full runs; smoke runs scale the workload down).
    pub fn floor_met(&self) -> bool {
        self.mixed().calendar_events_per_sec >= EVENTS_PER_SEC_FLOOR
    }

    /// Renders the hand-rolled JSON summary (`serde` is deliberately not a
    /// dependency of this workspace).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\n  \"bench\": \"engine\",\n  \"smoke\": {},\n  \"workloads\": [\n",
            self.smoke
        );
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"events\": {}, \
                 \"calendar_events_per_sec\": {:.0}, \"naive_events_per_sec\": {:.0}, \
                 \"speedup\": {:.2}, \"peak_pending\": {}}}{}\n",
                p.name,
                p.events,
                p.calendar_events_per_sec,
                p.naive_events_per_sec,
                p.speedup(),
                p.peak_pending,
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "  ],\n  \"mixed_speedup\": {:.2},\n  \
             \"events_per_sec_floor\": {:.0},\n  \"floor_met\": {}\n}}\n",
            self.mixed_speedup(),
            EVENTS_PER_SEC_FLOOR,
            self.floor_met()
        ));
        s
    }

    /// Renders a human-readable table.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "workload         events     calendar ev/s      naive ev/s   speedup   peak depth\n",
        );
        for p in &self.points {
            s.push_str(&format!(
                "{:<16} {:>7}   {:>13.0}   {:>13.0}   {:>6.2}x   {:>10}\n",
                p.name,
                p.events,
                p.calendar_events_per_sec,
                p.naive_events_per_sec,
                p.speedup(),
                p.peak_pending
            ));
        }
        s.push_str(&format!(
            "mixed speedup {:.2}x (want >= {:.0}); calendar mixed {:.2}M ev/s (floor {:.1}M{})\n",
            self.mixed_speedup(),
            MIXED_SPEEDUP_FLOOR,
            self.mixed().calendar_events_per_sec / 1e6,
            EVENTS_PER_SEC_FLOOR / 1e6,
            if self.smoke {
                ", not asserted in smoke mode"
            } else {
                ""
            }
        ));
        s
    }
}

/// Where `BENCH_engine.json` is written: the repository root.
pub fn default_output_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json")
}

/// The two queue implementations measured, behind one trait so every
/// workload is a single generic function (identical code for both sides).
pub trait BenchQueue {
    /// Creates a queue pre-sized for `cap` pending events.
    fn with_capacity(cap: usize) -> Self;
    /// Inserts an event to fire at `t`.
    fn push(&mut self, t: SimTime, v: u64);
    /// Removes the earliest event, FIFO among ties.
    fn pop(&mut self) -> Option<(SimTime, u64)>;
}

impl BenchQueue for EventQueue<u64> {
    fn with_capacity(cap: usize) -> Self {
        EventQueue::with_capacity(cap)
    }
    fn push(&mut self, t: SimTime, v: u64) {
        EventQueue::push(self, t, v)
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        EventQueue::pop(self)
    }
}

impl BenchQueue for NaiveEventQueue<u64> {
    fn with_capacity(cap: usize) -> Self {
        NaiveEventQueue::with_capacity(cap)
    }
    fn push(&mut self, t: SimTime, v: u64) {
        NaiveEventQueue::push(self, t, v)
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        NaiveEventQueue::pop(self)
    }
}

/// The mobility-shaped successor delay: 80% near-future (200 µs – 2 ms:
/// frame turnarounds, controller ticks), 20% far (0.5 s – 5 s: idle
/// expiries, client think time). Nanoseconds.
fn mixed_delay(rng: &mut SimRng) -> u64 {
    if rng.below(5) < 4 {
        200_000 + rng.below(1_800_000)
    } else {
        500_000_000 + rng.below(4_500_000_000)
    }
}

/// schedule_heavy: `n` pushes at uniform offsets over a 60 s horizon, then a
/// full drain. Returns (elapsed_secs, peak_pending).
fn run_schedule_heavy<Q: BenchQueue>(n: usize, seed: u64) -> (f64, usize) {
    let mut rng = SimRng::new(seed);
    let mut q = Q::with_capacity(n);
    let start = Instant::now();
    for i in 0..n {
        q.push(SimTime::from_nanos(rng.below(60_000_000_000)), i as u64);
    }
    while let Some(e) = q.pop() {
        black_box(e);
    }
    (start.elapsed().as_secs_f64(), n)
}

/// pop_heavy: pre-fill untimed, time the drain alone.
fn run_pop_heavy<Q: BenchQueue>(n: usize, seed: u64) -> (f64, usize) {
    let mut rng = SimRng::new(seed);
    let mut q = Q::with_capacity(n);
    for i in 0..n {
        q.push(SimTime::from_nanos(rng.below(60_000_000_000)), i as u64);
    }
    let start = Instant::now();
    while let Some(e) = q.pop() {
        black_box(e);
    }
    (start.elapsed().as_secs_f64(), n)
}

/// mixed: steady-state population of `depth` pending events; `n` pop-then-
/// reschedule cycles with mobility-shaped delays. One full population
/// turnover runs untimed first so both queues are measured at steady state
/// (warm slabs, warm caches), not during their fill transient.
fn run_mixed<Q: BenchQueue>(n: usize, depth: usize, seed: u64) -> (f64, usize) {
    let mut rng = SimRng::new(seed);
    let mut q = Q::with_capacity(depth);
    for i in 0..depth {
        q.push(SimTime::from_nanos(mixed_delay(&mut rng)), i as u64);
    }
    for _ in 0..depth {
        let (now, v) = q.pop().expect("population is closed");
        q.push(now + desim::Duration::from_nanos(mixed_delay(&mut rng)), v);
    }
    let start = Instant::now();
    for _ in 0..n {
        let (now, v) = q.pop().expect("population is closed");
        q.push(now + desim::Duration::from_nanos(mixed_delay(&mut rng)), v);
    }
    (start.elapsed().as_secs_f64(), depth)
}

fn point(
    name: &'static str,
    events: usize,
    calendar: (f64, usize),
    naive: (f64, usize),
) -> WorkloadPoint {
    assert_eq!(
        calendar.1, naive.1,
        "both implementations must see the same schedule"
    );
    WorkloadPoint {
        name,
        events,
        calendar_events_per_sec: events as f64 / calendar.0,
        naive_events_per_sec: events as f64 / naive.0,
        peak_pending: calendar.1,
    }
}

/// Runs the full workload matrix over both implementations. Full runs take
/// a few seconds; `smoke` scales the (ungated) batch workloads down ~20×
/// for CI. The mixed workload is NOT scaled in either dimension: its depth
/// drives the naive heap's `log n` factor (shrinking it would flatter the
/// baseline), and its cycle count keeps the timed section hundreds of
/// milliseconds long (shrinking it would hand the relative gate to
/// scheduler noise).
pub fn run(smoke: bool) -> Report {
    let scale = if smoke { 20 } else { 1 };
    run_sized(400_000 / scale, 2_000_000, 100_000, smoke)
}

/// Workload matrix with explicit sizes — `run` picks the real ones; tests
/// use tiny counts to exercise the shape without paying measurement time.
fn run_sized(n_batch: usize, n_mixed: usize, depth: usize, smoke: bool) -> Report {
    let seed = 0xE1137;
    let points = vec![
        point(
            "schedule_heavy",
            n_batch,
            run_schedule_heavy::<EventQueue<u64>>(n_batch, seed),
            run_schedule_heavy::<NaiveEventQueue<u64>>(n_batch, seed),
        ),
        point(
            "pop_heavy",
            n_batch,
            run_pop_heavy::<EventQueue<u64>>(n_batch, seed),
            run_pop_heavy::<NaiveEventQueue<u64>>(n_batch, seed),
        ),
        point(
            "mixed",
            n_mixed,
            run_mixed::<EventQueue<u64>>(n_mixed, depth, seed),
            run_mixed::<NaiveEventQueue<u64>>(n_mixed, depth, seed),
        ),
    ];
    Report { points, smoke }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let r = Report {
            points: vec![WorkloadPoint {
                name: "mixed",
                events: 100,
                calendar_events_per_sec: 2.0e7,
                naive_events_per_sec: 4.0e6,
                peak_pending: 50,
            }],
            smoke: true,
        };
        let j = r.to_json();
        assert!(j.contains("\"bench\": \"engine\""));
        assert!(j.contains("\"smoke\": true"));
        assert!(j.contains("\"name\": \"mixed\""));
        assert!(j.contains("\"speedup\": 5.00"));
        assert!(j.contains("\"mixed_speedup\": 5.00"));
        assert!(j.contains("\"events_per_sec_floor\""));
        assert!(j.contains("\"floor_met\": true"));
        assert!(r.render().contains("mixed speedup"));
    }

    #[test]
    fn both_queues_agree_on_the_mixed_schedule() {
        // The bench is only meaningful if both sides replay the identical
        // event sequence: a cycle-by-cycle shadow run must match.
        let mut rng_a = SimRng::new(1);
        let mut rng_b = SimRng::new(1);
        let mut a: EventQueue<u64> = BenchQueue::with_capacity(64);
        let mut b: NaiveEventQueue<u64> = BenchQueue::with_capacity(64);
        for i in 0..64u64 {
            a.push(SimTime::from_nanos(mixed_delay(&mut rng_a)), i);
            b.push(SimTime::from_nanos(mixed_delay(&mut rng_b)), i);
        }
        for _ in 0..5_000 {
            let ea = a.pop().unwrap();
            let eb = b.pop().unwrap();
            assert_eq!(ea, eb);
            a.push(ea.0 + desim::Duration::from_nanos(mixed_delay(&mut rng_a)), ea.1);
            b.push(eb.0 + desim::Duration::from_nanos(mixed_delay(&mut rng_b)), eb.1);
        }
    }

    #[test]
    fn smoke_run_emits_all_three_workloads() {
        let r = run_sized(2_000, 5_000, 1_000, true);
        assert_eq!(r.points.len(), 3);
        let names: Vec<&str> = r.points.iter().map(|p| p.name).collect();
        assert_eq!(names, ["schedule_heavy", "pop_heavy", "mixed"]);
        for p in &r.points {
            assert!(p.calendar_events_per_sec > 0.0);
            assert!(p.naive_events_per_sec > 0.0);
            assert!(p.peak_pending > 0);
        }
    }
}
