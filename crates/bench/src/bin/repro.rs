//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro all [--seed N] [--csv] [--telemetry]   # everything, publication order
//! repro fig11 [--seed N] [--csv]    # one figure
//! repro list                        # available figure ids
//! repro summary [--seed N]          # verify every textual claim
//! repro fastpath                    # data-plane bench -> BENCH_flowtable.json
//! repro engine [--smoke]            # event-core bench -> BENCH_engine.json
//! repro telemetry                   # telemetry-overhead bench
//! repro chaos [--seed N] [--fault-rate F] [--smoke] [--telemetry]
//! repro mobility [--seed N] [--smoke] [--telemetry]   # -> BENCH_mobility.json
//! repro recovery [--seed N] [--fault-rate F] [--smoke] [--telemetry]
//!                                   # runtime chaos -> BENCH_recovery.json
//! repro scale [--seed N] [--smoke]  # fleet-scale controller (1M clients,
//!                                   # aggregated vs exact) -> BENCH_scale.json
//! repro tournament [--seed N] [--smoke]   # scheduler tournament, bursty
//!                                   # workload -> BENCH_tournament.json
//! repro migrate [--seed N] [--smoke]   # live migration, state-size sweep
//!                                   # -> BENCH_migrate.json
//! repro ha [--seed N] [--smoke]     # controller crash-recovery, warm vs
//!                                   # cold restart -> BENCH_ha.json
//! ```
//!
//! `--telemetry` turns observability output on: `chaos` records per-request
//! span trees (printed as a one-line JSON log, a validation line, and an
//! ASCII timeline of the busiest request); every mode appends a `metrics:`
//! JSON snapshot. Simulation results are byte-identical either way.

use std::env;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut id: Option<String> = None;
    let mut seed = 7u64;
    let mut csv = false;
    let mut fault_rate = 0.1f64;
    let mut smoke = false;
    let mut telemetry_on = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => s,
                    None => {
                        eprintln!("--seed needs an integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--fault-rate" => {
                i += 1;
                fault_rate = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(r) if (0.0..=1.0).contains(&r) => r,
                    _ => {
                        eprintln!("--fault-rate needs a number in [0, 1]");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--smoke" => smoke = true,
            "--csv" => csv = true,
            "--telemetry" => telemetry_on = true,
            other if id.is_none() => id = Some(other.to_owned()),
            other => {
                eprintln!("unexpected argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let id = id.unwrap_or_else(|| "all".to_owned());
    // Figure modes collect metrics through the process-global registry
    // (every finished testbed run merges its snapshot); chaos records and
    // prints its own, richer output below.
    if telemetry_on && id != "chaos" && id != "mobility" && id != "recovery" {
        telemetry::global::enable();
    }

    match id.as_str() {
        "summary" => {
            println!("transparent-edge-rs — paper claims, measured fresh (seed {seed})\n");
            let claims = bench::summary::verify_claims(seed);
            print!("{}", bench::summary::render(&claims));
            let all_hold = claims.iter().all(|c| c.holds);
            println!("\n{} / {} claims hold", claims.iter().filter(|c| c.holds).count(), claims.len());
            println!("\nperf trajectory (committed BENCH_*.json artifacts):\n");
            print!(
                "{}",
                bench::summary::render_trajectory(&bench::summary::perf_trajectory())
            );
            print_global_metrics(telemetry_on);
            if all_hold {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "fastpath" => {
            println!("transparent-edge-rs — data-plane fast path (naive vs indexed vs microflow)\n");
            let report = bench::fastpath::run();
            print!("{}", report.render());
            let path = bench::fastpath::default_output_path();
            match std::fs::write(&path, report.to_json()) {
                Ok(()) => {
                    println!("\nwrote {}", path.display());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cannot write {}: {e}", path.display());
                    ExitCode::FAILURE
                }
            }
        }
        "engine" => {
            println!(
                "transparent-edge-rs — event-core throughput (calendar queue vs naive heap)\n"
            );
            let report = bench::engine::run(smoke);
            print!("{}", report.render());
            let path = bench::engine::default_output_path();
            if let Err(e) = std::fs::write(&path, report.to_json()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("\nwrote {}", path.display());
            if report.mixed_speedup() < bench::engine::MIXED_SPEEDUP_FLOOR {
                eprintln!(
                    "mixed speedup {:.2}x below the {:.0}x floor",
                    report.mixed_speedup(),
                    bench::engine::MIXED_SPEEDUP_FLOOR
                );
                return ExitCode::FAILURE;
            }
            // The absolute floor is machine-dependent; smoke runs (scaled
            // ~20x down for CI) check only the relative bar above.
            if !smoke && !report.floor_met() {
                eprintln!(
                    "calendar mixed throughput {:.0} ev/s below the {:.0} ev/s floor",
                    report.mixed().calendar_events_per_sec,
                    bench::engine::EVENTS_PER_SEC_FLOOR
                );
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        "chaos" => {
            println!(
                "transparent-edge-rs — chaos: deployment pipeline under faults \
(seed {seed}, rate {fault_rate})\n"
            );
            let (fig, traced) = if telemetry_on {
                let (fig, log, metrics) = bench::chaos_figure_traced(seed, fault_rate, smoke);
                (fig, Some((log, metrics)))
            } else {
                (bench::chaos_figure(seed, fault_rate, smoke), None)
            };
            if csv {
                print!("{}", fig.table.to_csv());
                // Keep the machine-readable summary even in CSV mode.
                if let Some(line) = fig.body.lines().find(|l| l.starts_with("chaos-summary ")) {
                    println!("{line}");
                }
            } else {
                println!("{}", fig.body);
            }
            if let Some((log, metrics)) = traced {
                println!("spans: {}", log.to_json());
                println!("{}", log.check().to_json_line());
                if let Some(busiest) = log
                    .request_ids()
                    .into_iter()
                    .max_by_key(|r| log.spans_for_request(*r).count())
                {
                    println!("\nbusiest request timeline:");
                    print!("{}", testbed::report::span_timeline(&log, busiest, 48));
                }
                println!("\nmetrics: {}", metrics.to_json());
            }
            ExitCode::SUCCESS
        }
        "mobility" => {
            println!(
                "transparent-edge-rs — mobility: multi-gNB handover, anchored vs re-dispatch \
(seed {seed})\n"
            );
            let (fig, traced) = if telemetry_on {
                let (fig, log, metrics) = bench::mobility_figure_traced(seed, smoke);
                (fig, Some((log, metrics)))
            } else {
                (bench::mobility_figure(seed, smoke), None)
            };
            if csv {
                print!("{}", fig.table.to_csv());
                if let Some(line) = fig.body.lines().find(|l| l.starts_with("mobility-summary ")) {
                    println!("{line}");
                }
            } else {
                println!("{}", fig.body);
            }
            if let Some((log, metrics)) = traced {
                println!("spans: {}", log.to_json());
                println!("{}", log.check().to_json_line());
                println!("\nmetrics: {}", metrics.to_json());
            }
            let report = bench::mobility::run(seed, smoke);
            print!("{}", report.render());
            let path = bench::mobility::default_output_path();
            match std::fs::write(&path, report.to_json()) {
                Ok(()) => {
                    println!("\nwrote {}", path.display());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cannot write {}: {e}", path.display());
                    ExitCode::FAILURE
                }
            }
        }
        "recovery" => {
            println!(
                "transparent-edge-rs — recovery: self-healing control plane under runtime \
chaos (seed {seed}, rate {fault_rate})\n"
            );
            let (fig, traced) = if telemetry_on {
                let (fig, log, metrics) = bench::recovery_figure_traced(seed, fault_rate, smoke);
                (fig, Some((log, metrics)))
            } else {
                (bench::recovery_figure(seed, fault_rate, smoke), None)
            };
            if csv {
                print!("{}", fig.table.to_csv());
                if let Some(line) = fig.body.lines().find(|l| l.starts_with("recovery-summary ")) {
                    println!("{line}");
                }
            } else {
                println!("{}", fig.body);
            }
            if let Some((log, metrics)) = traced {
                println!("spans: {}", log.to_json());
                println!("{}", log.check().to_json_line());
                println!("\nmetrics: {}", metrics.to_json());
            }
            let report = bench::recovery::run(seed, fault_rate, smoke);
            print!("{}", report.render());
            let path = bench::recovery::default_output_path();
            match std::fs::write(&path, report.to_json()) {
                Ok(()) => {
                    println!("\nwrote {}", path.display());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cannot write {}: {e}", path.display());
                    ExitCode::FAILURE
                }
            }
        }
        "scale" => {
            println!(
                "transparent-edge-rs — fleet scale: sharded controller, aggregated vs \
exact rules (seed {seed}{})\n",
                if smoke { ", smoke" } else { "" }
            );
            let report = bench::scale::run(seed, smoke);
            print!("{}", report.render());
            let path = bench::scale::default_output_path();
            if let Err(e) = std::fs::write(&path, report.to_json()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("\nwrote {}", path.display());
            if report.aggregated().table_flows >= report.exact().table_flows {
                eprintln!(
                    "aggregated table ({} flows) not smaller than exact ({} flows)",
                    report.aggregated().table_flows,
                    report.exact().table_flows
                );
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        "tournament" => {
            println!(
                "transparent-edge-rs — scheduler tournament: bursty workload, autoscaling \
on (seed {seed}{})\n",
                if smoke { ", smoke" } else { "" }
            );
            let report = bench::tournament::run(seed, smoke);
            print!("{}", report.render());
            let path = bench::tournament::default_output_path();
            if let Err(e) = std::fs::write(&path, report.to_json()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("\nwrote {}", path.display());
            let lc = report.arm("least-connections").p99_ms;
            let random = report.arm("random").p99_ms;
            if lc > random {
                eprintln!(
                    "least-connections p99 ({lc:.2} ms) worse than random ({random:.2} ms)"
                );
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        "migrate" => {
            println!(
                "transparent-edge-rs — live migration: interruption vs state size, live \
vs cold re-dispatch (seed {seed}{})\n",
                if smoke { ", smoke" } else { "" }
            );
            let report = bench::migrate::run(seed, smoke);
            print!("{}", report.render());
            let path = bench::migrate::default_output_path();
            if let Err(e) = std::fs::write(&path, report.to_json()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("\nwrote {}", path.display());
            if report.total_dropped() > 0 {
                eprintln!("{} pings/frames dropped (want 0)", report.total_dropped());
                return ExitCode::FAILURE;
            }
            if !report.gate_holds() {
                let live = report.sizes.last().map(|p| p.p99_ms).unwrap_or(f64::NAN);
                let cold = report.sizes.last().map(|p| p.cold_p99_ms).unwrap_or(f64::NAN);
                eprintln!(
                    "live interruption p99 ({live:.2} ms) at the largest state size \
exceeds the cold baseline ({cold:.2} ms)"
                );
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        "ha" => {
            println!(
                "transparent-edge-rs — crash recovery: warm journal replay vs cold \
restart, crash rate 1.0 (seed {seed}{})\n",
                if smoke { ", smoke" } else { "" }
            );
            let report = bench::ha::run(seed, smoke);
            print!("{}", report.render());
            let path = bench::ha::default_output_path();
            if let Err(e) = std::fs::write(&path, report.to_json()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("\nwrote {}", path.display());
            if report.panics > 0 {
                eprintln!("{} restart runs panicked (want 0)", report.panics);
                return ExitCode::FAILURE;
            }
            if report.total_stranded() > 0 {
                eprintln!(
                    "{} sessions permanently stranded (want 0)",
                    report.total_stranded()
                );
                return ExitCode::FAILURE;
            }
            if report.total_residual() > 0 {
                eprintln!(
                    "reconciliation left {} residual fixes (want 0)",
                    report.total_residual()
                );
                return ExitCode::FAILURE;
            }
            if !report.warm_gate_holds() {
                let warm = report.points.last().map(|p| p.warm_p99_ms).unwrap_or(f64::NAN);
                let cold = report.points.last().map(|p| p.cold_p99_ms).unwrap_or(f64::NAN);
                eprintln!(
                    "warm recovery p99 ({warm:.2} ms) at the largest state size \
exceeds the cold baseline ({cold:.2} ms)"
                );
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        "telemetry" => {
            println!("transparent-edge-rs — telemetry overhead (disabled path vs fast path)\n");
            let report = bench::telemetry::run();
            print!("{}", report.render());
            println!("{}", report.summary_line());
            if report.overhead_pct() < 2.0 {
                ExitCode::SUCCESS
            } else {
                eprintln!("disabled telemetry overhead exceeds the 2% budget");
                ExitCode::FAILURE
            }
        }
        "list" => {
            for f in bench::FIGURE_IDS {
                println!("{f}");
            }
            println!("fastpath");
            println!("engine");
            println!("telemetry");
            println!("chaos");
            println!("mobility");
            println!("recovery");
            println!("scale");
            println!("tournament");
            println!("migrate");
            println!("ha");
            ExitCode::SUCCESS
        }
        "all" => {
            println!("transparent-edge-rs — reproducing the full evaluation (seed {seed})\n");
            for fig in bench::all_figures(seed) {
                if csv {
                    println!("# {}: {}", fig.id, fig.title);
                    print!("{}", fig.table.to_csv());
                    println!();
                } else {
                    println!("{}", fig.body);
                }
            }
            print_global_metrics(telemetry_on);
            ExitCode::SUCCESS
        }
        other => match bench::figure_by_id(other, seed) {
            Some(fig) => {
                if csv {
                    print!("{}", fig.table.to_csv());
                } else {
                    println!("{}", fig.body);
                }
                print_global_metrics(telemetry_on);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown figure `{other}`; try `repro list`");
                ExitCode::FAILURE
            }
        },
    }
}

/// Prints the process-global metrics snapshot (`--telemetry` figure modes).
fn print_global_metrics(telemetry_on: bool) {
    if telemetry_on {
        println!("metrics: {}", telemetry::global::snapshot_json());
    }
}
