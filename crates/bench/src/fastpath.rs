//! Data-plane fast-path measurement: naive vs indexed flow table, plus the
//! switch's microflow cache, at several table sizes.
//!
//! This module is plain `std` (no criterion) so it can run both from the
//! `repro fastpath` subcommand and from the tail of the `flowtable` criterion
//! bench, where it emits the machine-readable `BENCH_flowtable.json` summary
//! that tracks the perf trajectory across PRs. The headline acceptance
//! numbers live here:
//!
//! * indexed lookup at 100k installed flows within 3× of the 10-flow cost
//!   (size-independent exact-match classification), and
//! * a warm microflow-cache hit at least 10× faster than the seed's
//!   linear-scan lookup at 100k flows.

use desim::{Duration, SimTime};
use netsim::addr::{Ipv4Addr, MacAddr, ServiceAddr};
use netsim::TcpFrame;
use openflow::actions::{Action, Instruction};
use openflow::messages::{FlowModCommand, Message};
use openflow::oxm::{Match, MatchView};
use openflow::table::{entry, FlowEntry, FlowTable};
use openflow::{NaiveFlowTable, OFP_NO_BUFFER};
use ovs::{Switch, SwitchConfig};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Table sizes the fast path is measured at.
pub const SIZES: [usize; 3] = [10, 1_000, 100_000];

/// Measurements at one table size (all ns per operation).
#[derive(Clone, Copy, Debug)]
pub struct SizePoint {
    /// Installed flow count.
    pub flows: usize,
    /// Seed implementation: linear scan over the sorted `Vec`.
    pub naive_lookup_ns: f64,
    /// Indexed table: tuple-space hash classification.
    pub indexed_lookup_ns: f64,
    /// Full switch path for a repeated packet (microflow-cache hit,
    /// including frame decode, actions, and re-encode).
    pub microflow_hit_ns: f64,
}

/// The full fast-path report.
#[derive(Clone, Debug)]
pub struct Report {
    /// One row per entry of [`SIZES`].
    pub points: Vec<SizePoint>,
    /// Microflow hit rate over the warm-switch measurement loops.
    pub cache_hit_rate: f64,
}

impl Report {
    /// Indexed-lookup cost ratio of the largest size over the smallest —
    /// the "size-independence" acceptance number (want: ≤ 3).
    pub fn indexed_scaling_ratio(&self) -> f64 {
        let first = self.points.first().map_or(1.0, |p| p.indexed_lookup_ns);
        let last = self.points.last().map_or(1.0, |p| p.indexed_lookup_ns);
        last / first
    }

    /// Warm microflow hit speedup over the naive linear scan at the largest
    /// size (want: ≥ 10).
    pub fn microflow_speedup(&self) -> f64 {
        self.points
            .last()
            .map_or(1.0, |p| p.naive_lookup_ns / p.microflow_hit_ns)
    }

    /// Renders the hand-rolled JSON summary (`serde` is deliberately not a
    /// dependency of this workspace).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"bench\": \"flowtable\",\n  \"sizes\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"flows\": {}, \"naive_lookup_ns\": {:.1}, \
                 \"indexed_lookup_ns\": {:.1}, \"microflow_hit_ns\": {:.1}}}{}\n",
                p.flows,
                p.naive_lookup_ns,
                p.indexed_lookup_ns,
                p.microflow_hit_ns,
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "  ],\n  \"cache_hit_rate\": {:.6},\n  \"indexed_100k_over_10_ratio\": {:.3},\n  \
             \"microflow_speedup_vs_naive_100k\": {:.1}\n}}\n",
            self.cache_hit_rate,
            self.indexed_scaling_ratio(),
            self.microflow_speedup()
        ));
        s
    }

    /// Renders a human-readable table.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "flows      naive ns/op   indexed ns/op   microflow ns/op\n",
        );
        for p in &self.points {
            s.push_str(&format!(
                "{:<10} {:>11.1}   {:>13.1}   {:>15.1}\n",
                p.flows, p.naive_lookup_ns, p.indexed_lookup_ns, p.microflow_hit_ns
            ));
        }
        s.push_str(&format!(
            "cache hit rate {:.4}; indexed 100k/10 ratio {:.2}x (want <=3); \
             microflow vs naive@100k {:.0}x (want >=10)\n",
            self.cache_hit_rate,
            self.indexed_scaling_ratio(),
            self.microflow_speedup()
        ));
        s
    }
}

/// Where `BENCH_flowtable.json` is written: the repository root.
pub fn default_output_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_flowtable.json")
}

/// The i-th per-connection redirect flow (distinct src ip/port for every
/// `i < 8M`, all sharing the service-side destination — the shape the
/// controller actually installs).
fn connection_entry(i: usize) -> FlowEntry {
    let m = Match::connection(src_ip(i), src_port(i), [203, 0, 113, 10], 80);
    entry(
        m,
        100,
        i as u64,
        vec![Instruction::ApplyActions(vec![Action::output(2)])],
        Duration::from_secs(600),
        Duration::ZERO,
        0,
    )
}

pub(crate) fn src_ip(i: usize) -> [u8; 4] {
    [192, 168, (i >> 8) as u8, i as u8]
}

pub(crate) fn src_port(i: usize) -> u16 {
    50_000 + (i % 1000) as u16
}

/// The packet view that hits flow `i`.
fn view_for(i: usize) -> MatchView {
    MatchView {
        in_port: 1,
        eth_dst: [2, 0, 0, 0, 0, 9],
        eth_src: [2, 0, 0, 0, 0, 1],
        eth_type: 0x0800,
        ip_proto: 6,
        ipv4_src: src_ip(i),
        ipv4_dst: [203, 0, 113, 10],
        tcp_src: src_port(i),
        tcp_dst: 80,
    }
}

/// A spread of views hitting flows across the whole table, so the naive
/// linear scan is measured at its *average* depth, not its best case.
fn sample_views(size: usize) -> Vec<MatchView> {
    let n = size.min(256);
    (0..n).map(|k| view_for(k * size / n)).collect()
}

fn ns_per_op(iters: usize, mut op: impl FnMut(usize)) -> f64 {
    let start = Instant::now();
    for k in 0..iters {
        op(k);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// A switch preloaded (through the real control channel) with `size`
/// per-connection flows.
pub(crate) fn loaded_switch(size: usize) -> Switch {
    let mut sw = Switch::new(SwitchConfig {
        datapath_id: 1,
        n_buffers: 64,
        miss_send_len: 128,
        ports: vec![1, 2],
    });
    for i in 0..size {
        let e = connection_entry(i);
        let fm = Message::FlowMod {
            cookie: e.cookie,
            table_id: 0,
            command: FlowModCommand::Add,
            idle_timeout: 600,
            hard_timeout: 0,
            priority: e.priority,
            buffer_id: OFP_NO_BUFFER,
            flags: 0,
            match_: e.match_,
            instructions: e.instructions,
        };
        sw.handle_controller(SimTime::ZERO, &fm.encode(i as u32))
            .expect("flow-mod accepted");
    }
    sw
}

/// Runs the whole measurement matrix. Iteration counts are scaled so the
/// naive O(n) baseline stays tractable at 100k flows; total runtime is a few
/// seconds.
pub fn run() -> Report {
    let mut points = Vec::new();
    let mut hits = 0u64;
    let mut total = 0u64;
    for size in SIZES {
        let entries: Vec<FlowEntry> = (0..size).map(connection_entry).collect();
        let mut naive = NaiveFlowTable::with_entries(entries.clone(), SimTime::ZERO);
        let mut indexed = FlowTable::new();
        for e in entries {
            indexed.add(e, SimTime::ZERO);
        }
        let views = sample_views(size);
        let naive_iters = (20_000_000 / size).clamp(200, 200_000);
        let naive_lookup_ns = ns_per_op(naive_iters, |k| {
            black_box(naive.lookup(black_box(&views[k % views.len()]), 64, SimTime::ZERO));
        });
        let indexed_lookup_ns = ns_per_op(200_000, |k| {
            black_box(indexed.lookup(black_box(&views[k % views.len()]), 64, SimTime::ZERO));
        });

        // Warm switch path: the same connection's packets, repeated — the
        // microflow cache serves every packet after the first.
        let mut sw = loaded_switch(size);
        let frame = TcpFrame::syn(
            MacAddr::from_id(1),
            MacAddr::from_id(100),
            Ipv4Addr(src_ip(size / 2)),
            src_port(size / 2),
            ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80),
        )
        .encode();
        let microflow_hit_ns = ns_per_op(100_000, |_| {
            black_box(sw.handle_frame(SimTime::ZERO, 1, black_box(&frame)));
        });
        hits += sw.microflow_hits;
        total += sw.microflow_hits + sw.microflow_misses;

        points.push(SizePoint {
            flows: size,
            naive_lookup_ns,
            indexed_lookup_ns,
            microflow_hit_ns,
        });
    }
    Report {
        points,
        cache_hit_rate: hits as f64 / total as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let r = Report {
            points: vec![SizePoint {
                flows: 10,
                naive_lookup_ns: 12.5,
                indexed_lookup_ns: 30.0,
                microflow_hit_ns: 100.0,
            }],
            cache_hit_rate: 0.5,
        };
        let j = r.to_json();
        assert!(j.contains("\"bench\": \"flowtable\""));
        assert!(j.contains("\"flows\": 10"));
        assert!(j.contains("\"cache_hit_rate\": 0.500000"));
        assert!(r.render().contains("cache hit rate"));
    }
}
