//! Fleet-scale controller bench: 1M clients, 10M packet-ins per arm.
//!
//! Like [`crate::mobility`] this is plain `std` (no criterion) so the
//! `repro scale` subcommand can run it directly and emit the
//! machine-readable `BENCH_scale.json` artifact. It bypasses the emulated
//! switch entirely and drives [`edgectl::Controller`] with hand-built
//! `PACKET_IN` messages — the switch would absorb repeat connections on its
//! fast path long before 10M misses, so to exercise the *controller* at
//! fleet scale every connection must arrive as a genuine table miss.
//!
//! Two arms over the identical workload:
//!
//! * **aggregated** — [`edgectl::ControllerConfig::aggregate_rules`] on: one
//!   wildcard pair per `(service, ingress, instance)`, covered misses
//!   answered with a bare `PACKET_OUT`;
//! * **exact** — the default per-connection pairs, two flows per miss.
//!
//! The headline is the switch-table footprint (`flow_adds`) of each arm at
//! the same client population, plus controller packet-in throughput and the
//! process peak RSS.

use desim::{Duration, SimRng, SimTime};
use edgectl::annotate_deployment;
use edgectl::{Controller, ControllerConfig, DockerCluster, EdgeService, PortMap};
use edgectl::{IngressId, ProximityScheduler};
use dockersim::DockerEngine;
use netsim::addr::{Ipv4Addr, MacAddr};
use netsim::{ServiceAddr, TcpFrame};
use openflow::messages::Message;
use openflow::oxm::{Match, OxmField};
use openflow::PacketInReason;
use std::collections::HashMap;
use std::path::PathBuf;
use testbed::{client_ip_for, fleet_client_ip};

/// Ingress-side port clients arrive on (every gNB uses the same layout).
const CLIENT_PORT: u32 = 1;
/// Egress port toward the edge cluster, on every ingress.
const EDGE_PORT: u32 = 2;
/// Port toward the cloud uplink.
const CLOUD_PORT: u32 = 3;

/// Workload dimensions for one run.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Ingress switches (gNBs) under one controller.
    pub ingresses: u32,
    /// Registered edge services; each client opens one connection to each.
    pub services: u16,
    /// Simulated clients attached to each ingress.
    pub clients_per_ingress: usize,
}

impl Params {
    /// The full run: 16 gNBs × 62 500 clients = 1M clients; one connection
    /// per client per service = 10M packet-ins per arm.
    pub fn full() -> Params {
        Params { ingresses: 16, services: 10, clients_per_ingress: 62_500 }
    }

    /// CI-sized smoke run (same shape, ~4k packet-ins per arm).
    pub fn smoke() -> Params {
        Params { ingresses: 4, services: 2, clients_per_ingress: 500 }
    }

    /// Total simulated clients.
    pub fn clients(&self) -> usize {
        self.ingresses as usize * self.clients_per_ingress
    }
}

/// One arm's measurements.
#[derive(Clone, Debug)]
pub struct ArmStats {
    /// Arm label (`aggregated` / `exact`).
    pub arm: &'static str,
    /// Packet-ins driven through the controller (measured loop only).
    pub packet_ins: u64,
    /// Misses answered through an existing aggregate (no table change).
    pub covered: u64,
    /// Messages the controller sent back toward the switches.
    pub messages_out: u64,
    /// Wall-clock seconds for the measured loop.
    pub wall_s: f64,
    /// Controller packet-in throughput.
    pub packet_ins_per_sec: f64,
    /// Flow adds sent to the switches (switch-table footprint; nothing is
    /// ever removed during the run).
    pub table_flows: u64,
    /// FlowMemory entries at the end of the run.
    pub memory_entries: u64,
    /// Process peak RSS (`VmHWM`) sampled after the arm, MB. Monotone per
    /// process: the aggregated arm runs first so its sample is its own.
    pub peak_rss_mb: f64,
}

/// The full scale report.
#[derive(Clone, Debug)]
pub struct Report {
    /// Seed the workload ran under.
    pub seed: u64,
    /// Smoke (CI-sized) or full 1M-client run.
    pub smoke: bool,
    /// Workload dimensions.
    pub params: Params,
    /// Aggregated arm first, then exact.
    pub arms: Vec<ArmStats>,
}

impl Report {
    /// The aggregated arm.
    pub fn aggregated(&self) -> &ArmStats {
        &self.arms[0]
    }

    /// The exact (per-connection pairs) arm.
    pub fn exact(&self) -> &ArmStats {
        &self.arms[1]
    }

    /// How many times smaller the aggregated switch table is.
    pub fn table_reduction(&self) -> f64 {
        self.exact().table_flows as f64 / (self.aggregated().table_flows as f64).max(1.0)
    }

    /// Renders the hand-rolled JSON artifact (`serde` is deliberately not a
    /// dependency of this workspace).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\n  \"bench\": \"scale\",\n  \"seed\": {},\n  \"smoke\": {},\n  \
             \"ingresses\": {},\n  \"services\": {},\n  \"clients\": {},\n  \"arms\": [\n",
            self.seed,
            self.smoke,
            self.params.ingresses,
            self.params.services,
            self.params.clients()
        );
        for (i, a) in self.arms.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"arm\": \"{}\", \"packet_ins\": {}, \"covered\": {}, \
                 \"messages_out\": {}, \"wall_s\": {:.3}, \"packet_ins_per_sec\": {:.0}, \
                 \"table_flows\": {}, \"memory_entries\": {}, \"peak_rss_mb\": {:.1}}}{}\n",
                a.arm,
                a.packet_ins,
                a.covered,
                a.messages_out,
                a.wall_s,
                a.packet_ins_per_sec,
                a.table_flows,
                a.memory_entries,
                a.peak_rss_mb,
                if i + 1 < self.arms.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "  ],\n  \"aggregated_table_flows\": {},\n  \"exact_table_flows\": {},\n  \
             \"table_reduction_x\": {:.1}\n}}\n",
            self.aggregated().table_flows,
            self.exact().table_flows,
            self.table_reduction()
        ));
        s
    }

    /// Renders a human-readable table.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{} clients over {} ingresses, {} services, {} packet-ins per arm\n\n",
            self.params.clients(),
            self.params.ingresses,
            self.params.services,
            self.arms[0].packet_ins
        );
        s.push_str("arm          packet-ins   covered     pkt-in/s  table flows   memory  peak RSS [MB]\n");
        for a in &self.arms {
            s.push_str(&format!(
                "{:<12} {:>10}  {:>8}  {:>10.0}  {:>11}  {:>7}  {:>13.1}\n",
                a.arm,
                a.packet_ins,
                a.covered,
                a.packet_ins_per_sec,
                a.table_flows,
                a.memory_entries,
                a.peak_rss_mb
            ));
        }
        s.push_str(&format!(
            "aggregation shrinks the switch table {:.0}x (want > 1x)\n",
            self.table_reduction()
        ));
        s
    }
}

/// Where `BENCH_scale.json` is written: the repository root.
pub fn default_output_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scale.json")
}

/// Process peak RSS from `/proc/self/status` (`VmHWM`), MB; 0 where absent.
fn peak_rss_mb() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<f64>().ok())
        })
        .map(|kb| kb / 1024.0)
        .unwrap_or(0.0)
}

/// An edge service at `203.0.113.10:port` backed by the (cached) `asm`
/// profile — service names are address-derived, so one profile can back any
/// number of registered services.
fn scale_service(port: u16) -> EdgeService {
    let profile = containerd::ServiceSet::by_key("asm").unwrap();
    let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), port);
    let yaml = format!(
        "spec:\n  template:\n    spec:\n      containers:\n        - name: main\n          image: {}\n          ports:\n            - containerPort: {}\n",
        profile.manifests[0].reference, profile.listen_port
    );
    let annotated = annotate_deployment(&yaml, addr, None).unwrap();
    EdgeService { addr, name: annotated.service_name.clone(), annotated, profile }
}

/// Builds the fleet controller: one Docker cluster reachable from every
/// ingress, every service registered, image pre-pulled.
fn build_controller(p: Params, aggregate: bool, rng: &mut SimRng) -> Controller {
    let mut engine = DockerEngine::with_defaults();
    engine.pull(&containerd::ServiceSet::by_key("asm").unwrap().manifests, rng);
    let cluster = DockerCluster::new(
        "edge-docker",
        engine,
        MacAddr::from_id(200),
        Ipv4Addr::new(10, 0, 0, 10),
        Duration::from_micros(150),
    );
    let mut ctl = Controller::new(
        Box::<ProximityScheduler>::default(),
        PortMap { cluster_ports: HashMap::new(), cloud_port: CLOUD_PORT },
        ControllerConfig {
            aggregate_rules: aggregate,
            // The point of the bench is throughput/footprint, not the
            // request log: 10M RequestRecords would measure the log.
            record_requests: false,
            ..ControllerConfig::default()
        },
    );
    ctl.add_cluster(Box::new(cluster), EDGE_PORT);
    for g in 1..p.ingresses {
        let id = ctl.add_ingress(PortMap {
            cluster_ports: HashMap::new(),
            cloud_port: CLOUD_PORT,
        });
        assert_eq!(id, IngressId(g));
        ctl.map_cluster_port(id, "edge-docker", EDGE_PORT);
    }
    for s in 0..p.services {
        ctl.register_service(scale_service(8000 + s));
    }
    ctl
}

/// Encodes a `PACKET_IN` carrying `frame`, as the ingress switch would send
/// it on a table miss.
fn packet_in(frame: &TcpFrame, buffer_id: u32) -> Vec<u8> {
    let data = frame.encode();
    Message::PacketIn {
        buffer_id,
        total_len: data.len() as u16,
        reason: PacketInReason::NoMatch,
        table_id: 0,
        cookie: 0,
        match_: Match::any().with(OxmField::InPort(CLIENT_PORT)),
        data,
    }
    .encode(1)
}

/// Runs one arm: deploys every service through a warm-up client, then
/// drives one table miss per `(client, service)` through the controller.
fn run_arm(arm: &'static str, aggregate: bool, p: Params, seed: u64) -> ArmStats {
    let mut rng = SimRng::new(seed);
    let mut ctl = build_controller(p, aggregate, &mut rng);
    let gw_mac = MacAddr::from_id(900);

    // Warm-up: one connection per service from a legacy-range client
    // deploys the instances (the on-demand `Waited` path), spaced out so
    // each deployment completes in sim time before the measured loop.
    let warm_ip = client_ip_for(0);
    for s in 0..p.services {
        let t = SimTime::from_secs(1 + u64::from(s));
        let frame = TcpFrame::syn(
            MacAddr::from_id(999),
            gw_mac,
            warm_ip,
            1000 + s,
            ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 8000 + s),
        );
        ctl.handle_switch_message(t, &packet_in(&frame, u32::from(s)), &mut rng)
            .expect("warm-up packet-in");
    }

    // Measured loop: every instance is ready, every miss is a fresh flow.
    let mut t = SimTime::from_secs(600);
    let mut n: u64 = 0;
    let mut messages_out: u64 = 0;
    let tick = Duration::from_micros(1);
    let start = std::time::Instant::now();
    for s in 0..p.services {
        let svc = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 8000 + s);
        let src_port = 10_000 + s;
        for g in 0..p.ingresses {
            let ingress = IngressId(g);
            for i in 0..p.clients_per_ingress {
                let cid = g * p.clients_per_ingress as u32 + i as u32;
                let frame = TcpFrame::syn(
                    MacAddr::from_id(1_000 + cid),
                    gw_mac,
                    fleet_client_ip(g, i),
                    src_port,
                    svc,
                );
                // Real buffer ids (never OFP_NO_BUFFER): covered misses are
                // answered by releasing the switch buffer, not by carrying
                // the frame back.
                let msg = packet_in(&frame, (n as u32) & 0x00ff_ffff);
                let out = ctl
                    .handle_switch_message_from(ingress, t, &msg, &mut rng)
                    .expect("packet-in");
                messages_out += out.len() as u64;
                t += tick;
                n += 1;
            }
        }
    }
    let wall_s = start.elapsed().as_secs_f64();

    ArmStats {
        arm,
        packet_ins: n,
        covered: ctl.telemetry.metrics.counter("aggregate_covered"),
        messages_out,
        wall_s,
        packet_ins_per_sec: n as f64 / wall_s.max(1e-9),
        table_flows: ctl.flow_adds,
        memory_entries: ctl.memory().len() as u64,
        peak_rss_mb: peak_rss_mb(),
    }
}

/// Runs both arms over the identical workload. The aggregated arm goes
/// first so its peak-RSS sample is not inflated by the exact arm's
/// per-connection bookkeeping.
pub fn run(seed: u64, smoke: bool) -> Report {
    let params = if smoke { Params::smoke() } else { Params::full() };
    let arms = vec![
        run_arm("aggregated", true, params, seed),
        run_arm("exact", false, params, seed),
    ];
    Report { seed, smoke, params, arms }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let stats = |arm, table_flows| ArmStats {
            arm,
            packet_ins: 4000,
            covered: 3990,
            messages_out: 4000,
            wall_s: 0.5,
            packet_ins_per_sec: 8000.0,
            table_flows,
            memory_entries: 4000,
            peak_rss_mb: 12.0,
        };
        let r = Report {
            seed: 7,
            smoke: true,
            params: Params::smoke(),
            arms: vec![stats("aggregated", 20), stats("exact", 8004)],
        };
        let j = r.to_json();
        assert!(j.contains("\"bench\": \"scale\""));
        assert!(j.contains("\"arm\": \"aggregated\""));
        assert!(j.contains("\"aggregated_table_flows\": 20"));
        assert!(j.contains("\"exact_table_flows\": 8004"));
        assert!(j.contains("\"table_reduction_x\": 400.2"));
        assert!(r.render().contains("want > 1x"));
    }

    #[test]
    fn smoke_run_shrinks_the_table() {
        let r = run(7, true);
        let p = Params::smoke();
        let per_arm = (p.clients() * p.services as usize) as u64;
        for a in &r.arms {
            assert_eq!(a.packet_ins, per_arm);
            assert!(a.messages_out >= per_arm, "every miss is answered");
        }
        // Exact: two flows per miss plus the warm-up pairs.
        assert_eq!(
            r.exact().table_flows,
            2 * (per_arm + u64::from(p.services))
        );
        assert_eq!(r.exact().covered, 0);
        // Aggregated: one pair per (ingress, service) plus the warm-up
        // pairs; everything after the first miss per pair is covered.
        assert_eq!(
            r.aggregated().table_flows,
            2 * u64::from(p.ingresses * u32::from(p.services) + u32::from(p.services))
        );
        assert_eq!(
            r.aggregated().covered,
            per_arm - u64::from(p.ingresses) * u64::from(p.services)
        );
        assert!(r.table_reduction() > 100.0, "got {:.1}x", r.table_reduction());
        // Both arms memorize every flow: controller-side per-client state is
        // independent of the switch-table representation.
        assert_eq!(r.exact().memory_entries, r.aggregated().memory_entries);
    }

    #[test]
    fn repro_artifact_is_deterministic() {
        // Timing fields vary run to run; every counted field must not.
        let key = |r: &Report| {
            r.arms
                .iter()
                .map(|a| (a.arm, a.packet_ins, a.covered, a.messages_out, a.table_flows, a.memory_entries))
                .collect::<Vec<_>>()
        };
        let a = run(7, true);
        let b = run(7, true);
        assert_eq!(key(&a), key(&b), "same seed ⇒ same counters");
    }
}
