//! Mobility/handover bench: per-policy handover-interruption percentiles.
//!
//! Like [`crate::fastpath`] this is plain `std` (no criterion) so the
//! `repro mobility` subcommand can run it directly and emit the
//! machine-readable `BENCH_mobility.json` summary that tracks the handover
//! numbers across PRs. It replays the same deterministic mobility scenario
//! as `testbed::experiments::mobility` — once per [`HandoverPolicy`] — and
//! reduces each run to handover counts plus the interruption distribution
//! (announce → last new-switch install) at p50/p95/p99.

use desim::Summary;
use edgectl::HandoverPolicy;
use std::path::PathBuf;
use testbed::experiments;

/// One policy's measurements (times in milliseconds).
#[derive(Clone, Debug)]
pub struct PolicyPoint {
    /// Policy label (`anchored` / `redispatch`).
    pub policy: &'static str,
    /// Inter-gNB handovers performed.
    pub handovers: u64,
    /// FlowMemory entries migrated across all handovers.
    pub flows_migrated: u64,
    /// Sessions re-placed through the Global Scheduler.
    pub redispatched: u64,
    /// Handover-interruption median, ms.
    pub p50_ms: f64,
    /// Handover-interruption 95th percentile, ms.
    pub p95_ms: f64,
    /// Handover-interruption 99th percentile, ms.
    pub p99_ms: f64,
    /// Pings answered (== pings sent on a clean run).
    pub pings: u64,
    /// Pings lost + frames dropped (want 0).
    pub dropped: u64,
}

/// The full mobility report.
#[derive(Clone, Debug)]
pub struct Report {
    /// Seed the scenario ran under.
    pub seed: u64,
    /// Smoke (short) or full trace.
    pub smoke: bool,
    /// One row per handover policy.
    pub points: Vec<PolicyPoint>,
}

impl Report {
    /// Pings lost or frames dropped across both policies (want: 0).
    pub fn total_dropped(&self) -> u64 {
        self.points.iter().map(|p| p.dropped).sum()
    }

    /// Renders the hand-rolled JSON summary (`serde` is deliberately not a
    /// dependency of this workspace).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\n  \"bench\": \"mobility\",\n  \"seed\": {},\n  \"smoke\": {},\n  \"policies\": [\n",
            self.seed, self.smoke
        );
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"policy\": \"{}\", \"handovers\": {}, \"flows_migrated\": {}, \
                 \"redispatched\": {}, \"interruption_p50_ms\": {:.3}, \
                 \"interruption_p95_ms\": {:.3}, \"interruption_p99_ms\": {:.3}, \
                 \"pings\": {}, \"dropped\": {}}}{}\n",
                p.policy,
                p.handovers,
                p.flows_migrated,
                p.redispatched,
                p.p50_ms,
                p.p95_ms,
                p.p99_ms,
                p.pings,
                p.dropped,
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "  ],\n  \"total_dropped\": {}\n}}\n",
            self.total_dropped()
        ));
        s
    }

    /// Renders a human-readable table.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "policy       handovers  migrated  redispatched  p50/p95/p99 [ms]      pings  dropped\n",
        );
        for p in &self.points {
            s.push_str(&format!(
                "{:<12} {:>9}  {:>8}  {:>12}  {:>6.1}/{:>6.1}/{:>6.1}  {:>7}  {:>7}\n",
                p.policy,
                p.handovers,
                p.flows_migrated,
                p.redispatched,
                p.p50_ms,
                p.p95_ms,
                p.p99_ms,
                p.pings,
                p.dropped
            ));
        }
        s.push_str(&format!("total dropped {} (want 0)\n", self.total_dropped()));
        s
    }
}

/// Where `BENCH_mobility.json` is written: the repository root.
pub fn default_output_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_mobility.json")
}

fn pct(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    Summary::new(xs.to_vec()).percentile(p).unwrap_or(0.0) * 1e3
}

/// Runs the mobility scenario under both policies and reduces the results.
pub fn run(seed: u64, smoke: bool) -> Report {
    let points = [HandoverPolicy::Anchored, HandoverPolicy::Redispatch]
        .into_iter()
        .map(|policy| {
            let s = experiments::mobility_stats(policy, seed, smoke);
            PolicyPoint {
                policy: policy.label(),
                handovers: s.handovers,
                flows_migrated: s.flows_migrated,
                redispatched: s.redispatched,
                p50_ms: pct(&s.interruptions, 50.0),
                p95_ms: pct(&s.interruptions, 95.0),
                p99_ms: pct(&s.interruptions, 99.0),
                pings: s.pings_done,
                dropped: (s.pings_sent - s.pings_done) + s.drops,
            }
        })
        .collect();
    Report { seed, smoke, points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let r = Report {
            seed: 7,
            smoke: true,
            points: vec![PolicyPoint {
                policy: "anchored",
                handovers: 4,
                flows_migrated: 4,
                redispatched: 0,
                p50_ms: 0.35,
                p95_ms: 0.4,
                p99_ms: 0.4,
                pings: 300,
                dropped: 0,
            }],
        };
        let j = r.to_json();
        assert!(j.contains("\"bench\": \"mobility\""));
        assert!(j.contains("\"policy\": \"anchored\""));
        assert!(j.contains("\"interruption_p99_ms\": 0.400"));
        assert!(j.contains("\"total_dropped\": 0"));
        assert!(r.render().contains("want 0"));
    }

    #[test]
    fn smoke_run_is_clean() {
        let r = run(7, true);
        assert_eq!(r.points.len(), 2);
        assert_eq!(r.total_dropped(), 0, "no ping lost, no frame dropped");
        assert!(r.points.iter().all(|p| p.handovers > 0));
        assert!(r.points.iter().any(|p| p.p99_ms > 0.0));
    }

    #[test]
    fn repro_artifact_is_deterministic() {
        // The whole BENCH_mobility.json artifact — not just the figure —
        // must be byte-identical per seed on the calendar event core.
        let a = run(7, true);
        let b = run(7, true);
        assert_eq!(a.to_json(), b.to_json(), "same seed ⇒ same artifact");
    }
}
