//! Telemetry overhead measurement: what the instrumented call sites cost
//! when tracing is disabled (the production configuration), held against
//! the data-plane fast path they must not slow down.
//!
//! Like [`crate::fastpath`] this is plain `std` (no criterion) so the
//! `repro telemetry` subcommand can run it directly and emit a
//! machine-readable `telemetry-bench` line for CI. The acceptance number:
//! the full disabled span/event sequence of one request — what every
//! packet-in pays when telemetry is off — must cost **< 2%** of a single
//! warm microflow-cache hit, the cheapest operation on the critical path.
//! (The switch itself contains no telemetry calls at all, so the fast path
//! proper is untouched by construction; this bench bounds the controller
//! side.)

use crate::fastpath::{loaded_switch, src_ip, src_port};
use desim::SimTime;
use netsim::addr::{Ipv4Addr, MacAddr, ServiceAddr};
use netsim::TcpFrame;
use std::hint::black_box;
use std::time::Instant;
use telemetry::{SpanId, Telemetry};

/// Measured costs, all ns per operation.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Warm microflow-cache hit through the full switch path (decode,
    /// cache lookup, actions, re-encode) — the fast-path yardstick.
    pub switch_hit_ns: f64,
    /// One request's complete telemetry call sequence against the
    /// disabled endpoint (spans, events, closes — all never-taken
    /// branches; detail closures must not run).
    pub disabled_request_ns: f64,
    /// The same sequence against a recording tracer, for scale.
    pub recording_request_ns: f64,
}

impl Report {
    /// Disabled-telemetry cost as a percentage of one microflow hit
    /// (want: < 2).
    pub fn overhead_pct(&self) -> f64 {
        self.disabled_request_ns / self.switch_hit_ns * 100.0
    }

    /// The machine-readable one-line form CI greps.
    pub fn summary_line(&self) -> String {
        format!(
            "telemetry-bench {{\"switch_hit_ns\":{:.1},\"disabled_request_ns\":{:.1},\
\"recording_request_ns\":{:.1},\"overhead_pct\":{:.3}}}",
            self.switch_hit_ns,
            self.disabled_request_ns,
            self.recording_request_ns,
            self.overhead_pct()
        )
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        format!(
            "microflow hit          {:>8.1} ns/op\n\
             telemetry off/request  {:>8.1} ns/op\n\
             telemetry on/request   {:>8.1} ns/op\n\
             disabled overhead vs fast path {:.3}% (want < 2%)\n",
            self.switch_hit_ns,
            self.disabled_request_ns,
            self.recording_request_ns,
            self.overhead_pct()
        )
    }
}

fn ns_per_op(iters: usize, mut op: impl FnMut(usize)) -> f64 {
    let start = Instant::now();
    for k in 0..iters {
        op(k);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// One request's worth of telemetry calls, mirroring the controller's
/// instrumentation of a memory-hit packet-in (root span, packet-in event,
/// schedule child span, flow-install event, close).
fn request_sequence(tele: &mut Telemetry, k: usize, now: SimTime) {
    let root = tele.span(k as u64, SpanId::NONE, "request", now);
    tele.event(root, "packet-in", now, || format!("client=10.0.0.{k}"));
    let sched = tele.span(k as u64, root, "schedule", now);
    tele.event(sched, "decision", now, || "fast=Some(0) best=None".into());
    tele.end_span(sched, now);
    tele.event(root, "flow-install", now, || "MemoryHit: 2 message(s)".into());
    tele.end_span(root, now);
    black_box(root);
}

/// Runs the measurement. Total runtime well under a second.
pub fn run() -> Report {
    // The yardstick: a warm microflow hit on a realistically loaded switch.
    let mut sw = loaded_switch(1_000);
    let frame = TcpFrame::syn(
        MacAddr::from_id(1),
        MacAddr::from_id(100),
        Ipv4Addr(src_ip(500)),
        src_port(500),
        ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80),
    )
    .encode();
    let switch_hit_ns = ns_per_op(100_000, |_| {
        black_box(sw.handle_frame(SimTime::ZERO, 1, black_box(&frame)));
    });

    let now = SimTime::from_secs(1);
    let mut disabled = Telemetry::disabled();
    let disabled_request_ns = ns_per_op(1_000_000, |k| request_sequence(&mut disabled, k, now));
    assert!(
        disabled.metrics.is_empty() && disabled.span_log().is_none(),
        "disabled endpoint must record nothing"
    );

    // Recording, for scale (bounded iterations: the log is kept in memory).
    let mut recording = Telemetry::recording();
    let recording_request_ns = ns_per_op(100_000, |k| request_sequence(&mut recording, k, now));

    Report {
        switch_hit_ns,
        disabled_request_ns,
        recording_request_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_line_shape_is_stable() {
        let r = Report {
            switch_hit_ns: 250.0,
            disabled_request_ns: 2.5,
            recording_request_ns: 500.0,
        };
        assert!((r.overhead_pct() - 1.0).abs() < 1e-9);
        let line = r.summary_line();
        assert!(line.starts_with("telemetry-bench {"));
        assert!(line.contains("\"overhead_pct\":1.000"), "{line}");
        assert!(r.render().contains("want < 2%"));
    }

    #[test]
    fn disabled_sequence_is_pure() {
        let mut tele = Telemetry::disabled();
        request_sequence(&mut tele, 3, SimTime::ZERO);
        assert!(tele.metrics.is_empty());
        assert!(tele.span_log().is_none());
        let mut rec = Telemetry::recording();
        request_sequence(&mut rec, 3, SimTime::ZERO);
        let log = rec.span_log().unwrap();
        assert_eq!(log.len(), 2);
        assert!(log.check().ok());
    }
}
