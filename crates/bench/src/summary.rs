//! The claim-by-claim verdict table: every quantitative statement in the
//! paper's evaluation text, measured fresh and judged — plus the perf
//! trajectory folded from the committed `BENCH_*.json` artifacts.

use desim::Summary;
use std::path::PathBuf;
use testbed::experiments::{self, run_trace_experiment};
use testbed::report::Table;
use testbed::ClusterKind;
use workload::{Trace, TraceConfig};

fn median(v: &[f64]) -> f64 {
    Summary::new(v.to_vec()).median().unwrap_or(f64::NAN)
}

/// One verified claim.
pub struct Claim {
    /// Where the paper states it.
    pub source: &'static str,
    /// The claim, paraphrased.
    pub statement: &'static str,
    /// What we measured.
    pub measured: String,
    /// Whether the measurement supports the claim.
    pub holds: bool,
}

/// Measures every textual claim of the evaluation section for `seed`.
pub fn verify_claims(seed: u64) -> Vec<Claim> {
    let d_nginx = run_trace_experiment(ClusterKind::Docker, &svc("nginx"), true, seed);
    let d_asm = run_trace_experiment(ClusterKind::Docker, &svc("asm"), true, seed);
    let d_resnet = run_trace_experiment(ClusterKind::Docker, &svc("resnet"), true, seed);
    let k_nginx = run_trace_experiment(ClusterKind::K8s, &svc("nginx"), true, seed);
    let d_nginx_cs = run_trace_experiment(ClusterKind::Docker, &svc("nginx"), false, seed);

    let dn = median(&d_nginx.firsts);
    let da = median(&d_asm.firsts);
    let kn = median(&k_nginx.firsts);
    let create_delta = median(&d_nginx_cs.firsts) - dn;
    let resnet_total = median(&d_resnet.firsts);
    let resnet_wait = median(&d_resnet.waits);
    let warm_n = median(&d_nginx.warm);
    let warm_r = median(&d_resnet.warm);

    let fig13 = experiments::fig13(32);
    let saving: f64 = fig13
        .table
        .rows
        .iter()
        .find(|r| r[0] == "nginx")
        .map(|r| r[3].trim_end_matches(" s").parse().unwrap())
        .unwrap_or(f64::NAN);

    let trace = Trace::generate(TraceConfig::default(), seed);
    let counts = trace.per_service_counts();

    vec![
        Claim {
            source: "Abstract / §VII",
            statement: "nginx first request via Docker can be as low as ~0.5 s",
            measured: format!("{dn:.3} s"),
            holds: (0.35..0.75).contains(&dn),
        },
        Claim {
            source: "§VI (Fig. 11)",
            statement: "Docker scale-up stays under one second (cached images)",
            measured: format!("asm {da:.3} s, nginx {dn:.3} s"),
            holds: da < 1.0 && dn < 1.0,
        },
        Claim {
            source: "§VI (Fig. 11)",
            statement: "Kubernetes takes around three seconds for the same container",
            measured: format!("{kn:.3} s ({:.1}x Docker)", kn / dn),
            holds: (2.0..4.0).contains(&kn) && kn / dn > 3.0,
        },
        Claim {
            source: "§VI",
            statement: "no notable difference between asm and nginx start",
            measured: format!("|{da:.3} - {dn:.3}| = {:.3} s", (da - dn).abs()),
            holds: (da - dn).abs() < 0.25,
        },
        Claim {
            source: "§VI (Fig. 12)",
            statement: "creating the containers adds around 100 ms",
            measured: format!("+{create_delta:.3} s"),
            holds: (0.04..0.35).contains(&create_delta),
        },
        Claim {
            source: "§VI (Fig. 14)",
            statement: "ResNet wait alone exceeds a fourth of its total",
            measured: format!(
                "wait {resnet_wait:.3} s / total {resnet_total:.3} s = {:.0} %",
                100.0 * resnet_wait / resnet_total
            ),
            holds: resnet_wait / resnet_total > 0.25,
        },
        Claim {
            source: "§VI (Fig. 13)",
            statement: "private registry improves pulls by about 1.5–2 s",
            measured: format!("{saving:.2} s (nginx)"),
            holds: (1.0..3.0).contains(&saving),
        },
        Claim {
            source: "§VI (Fig. 16)",
            statement: "short responses ~milliseconds; ResNet significantly longer",
            measured: format!("nginx {:.1} ms, resnet {:.0} ms", warm_n * 1e3, warm_r * 1e3),
            holds: warm_n < 0.01 && warm_r / warm_n > 20.0,
        },
        Claim {
            source: "§VI (Figs. 9/10)",
            statement: "1708 requests, 42 services, ≥20 requests each",
            measured: format!(
                "{} requests, {} services, min {}",
                trace.requests.len(),
                counts.len(),
                counts.iter().min().unwrap()
            ),
            holds: trace.requests.len() == 1708
                && counts.len() == 42
                && *counts.iter().min().unwrap() >= 20,
        },
        Claim {
            source: "§VI (port polling)",
            statement: "held requests never hit a closed port (no RSTs)",
            measured: format!(
                "{} resets over {} requests",
                d_nginx.resets + k_nginx.resets + d_resnet.resets,
                d_nginx.warm.len() + d_nginx.firsts.len()
            ),
            holds: d_nginx.resets + k_nginx.resets + d_resnet.resets == 0,
        },
    ]
}

fn svc(key: &str) -> containerd::ServiceProfile {
    containerd::ServiceSet::by_key(key).expect("known profile")
}

/// Renders the claim table.
pub fn render(claims: &[Claim]) -> String {
    let mut t = Table::new(&["Source", "Claim", "Measured", "Verdict"]);
    for c in claims {
        t.row(vec![
            c.source.to_string(),
            c.statement.to_string(),
            c.measured.clone(),
            if c.holds { "HOLDS".into() } else { "FAILS".into() },
        ]);
    }
    t.render()
}

/// One row of the perf trajectory: the headline number of a committed
/// `BENCH_*.json` artifact.
pub struct PerfPoint {
    /// Artifact file name at the repository root.
    pub artifact: &'static str,
    /// The subsystem the bench measures.
    pub subsystem: &'static str,
    /// Its headline number, formatted.
    pub headline: String,
    /// Supporting numbers.
    pub detail: String,
}

/// Pulls the number following `"key":` out of hand-rolled bench JSON
/// (`serde` is deliberately not a workspace dependency). Matches the first
/// occurrence at any nesting depth.
fn json_number(json: &str, key: &str) -> Option<f64> {
    let tail = &json[json.find(&format!("\"{key}\":"))? + key.len() + 3..];
    tail.trim_start()
        .split([',', '}', '\n', ']'])
        .next()?
        .trim()
        .parse()
        .ok()
}

/// Like [`json_number`], but scoped to the text after `anchor` — used to
/// reach into a specific element of a JSON array (e.g. the `mixed` workload
/// row) without a parser.
fn json_number_after(json: &str, anchor: &str, key: &str) -> Option<f64> {
    json_number(&json[json.find(anchor)?..], key)
}

/// Reads the seven committed bench artifacts and condenses each into one
/// trajectory row. Artifacts that have not been generated yet show up as
/// `missing` rather than failing the summary.
pub fn perf_trajectory() -> Vec<PerfPoint> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let read = |name: &str| std::fs::read_to_string(root.join(name)).ok();
    let missing = || ("(missing — see README for the repro command)".to_string(), String::new());

    let flowtable = read("BENCH_flowtable.json")
        .and_then(|j| {
            Some((
                format!(
                    "microflow {:.0}x vs naive lookup @100k flows",
                    json_number(&j, "microflow_speedup_vs_naive_100k")?
                ),
                format!("cache hit rate {:.4}", json_number(&j, "cache_hit_rate")?),
            ))
        })
        .unwrap_or_else(missing);
    let engine = read("BENCH_engine.json")
        .and_then(|j| {
            Some((
                format!(
                    "calendar {:.2}M ev/s mixed ({:.2}x naive)",
                    json_number_after(&j, "\"name\": \"mixed\"", "calendar_events_per_sec")? / 1e6,
                    json_number(&j, "mixed_speedup")?
                ),
                format!(
                    "CI floor {:.1}M ev/s, met: {}",
                    json_number(&j, "events_per_sec_floor")? / 1e6,
                    j.contains("\"floor_met\": true")
                ),
            ))
        })
        .unwrap_or_else(missing);
    let mobility = read("BENCH_mobility.json")
        .and_then(|j| {
            Some((
                format!(
                    "anchored p99 interruption {:.3} ms",
                    json_number(&j, "interruption_p99_ms")?
                ),
                format!(
                    "{:.0} handovers, {:.0} pings dropped",
                    json_number(&j, "handovers")?,
                    json_number(&j, "total_dropped")?
                ),
            ))
        })
        .unwrap_or_else(missing);
    let recovery = read("BENCH_recovery.json")
        .and_then(|j| {
            Some((
                format!(
                    "{:.0} stranded, {:.0} reconcile residual",
                    json_number(&j, "total_stranded")?,
                    json_number(&j, "total_reconcile_residual")?
                ),
                format!(
                    "{:.0} crashes, {:.0} outages survived",
                    json_number(&j, "crashes")?,
                    json_number(&j, "outages")?
                ),
            ))
        })
        .unwrap_or_else(missing);
    let scale = read("BENCH_scale.json")
        .and_then(|j| {
            Some((
                format!(
                    "aggregated table {:.0}x smaller @{:.0}M clients",
                    json_number(&j, "table_reduction_x")?,
                    json_number(&j, "clients")? / 1e6
                ),
                format!(
                    "{:.0} vs {:.0} flows, {:.0}k pkt-in/s",
                    json_number(&j, "aggregated_table_flows")?,
                    json_number(&j, "exact_table_flows")?,
                    json_number_after(&j, "\"arm\": \"aggregated\"", "packet_ins_per_sec")?
                        / 1e3
                ),
            ))
        })
        .unwrap_or_else(missing);
    let migrate = read("BENCH_migrate.json")
        .and_then(|j| {
            Some((
                format!(
                    "live p99 {:.2} ms vs cold {:.1} ms at largest state",
                    json_number(&j, "live_p99_ms_at_largest")?,
                    json_number(&j, "cold_p99_ms")?
                ),
                format!(
                    "{:.0} migrations, {:.1} MB shipped, {:.0} dropped",
                    json_number(&j, "total_migrations")?,
                    json_number(&j, "total_state_bytes_transferred")? / 1e6,
                    json_number(&j, "total_dropped")?
                ),
            ))
        })
        .unwrap_or_else(missing);
    let ha = read("BENCH_ha.json")
        .and_then(|j| {
            Some((
                format!(
                    "warm p99 {:.1} ms vs cold {:.1} ms at largest state",
                    json_number(&j, "warm_p99_ms_at_largest")?,
                    json_number(&j, "cold_p99_ms_at_largest")?
                ),
                format!(
                    "{:.0} stranded, {:.0} residual, {:.0} panics at crash rate {:.0}",
                    json_number(&j, "total_stranded")?,
                    json_number(&j, "total_reconcile_residual")?,
                    json_number(&j, "panics")?,
                    json_number(&j, "crash_rate")?
                ),
            ))
        })
        .unwrap_or_else(missing);
    let tournament = read("BENCH_tournament.json")
        .and_then(|j| {
            Some((
                format!(
                    "least-connections p99 {:.1} ms vs random {:.1} ms",
                    json_number(&j, "least_connections_p99_ms")?,
                    json_number(&j, "random_p99_ms")?
                ),
                format!(
                    "{:.0} arms, lc cost {:.2} mean replicas",
                    ARMS_IN_TOURNAMENT,
                    json_number_after(&j, "\"arm\": \"least-connections\"", "mean_replicas")?
                ),
            ))
        })
        .unwrap_or_else(missing);

    vec![
        PerfPoint {
            artifact: "BENCH_flowtable.json",
            subsystem: "data plane",
            headline: flowtable.0,
            detail: flowtable.1,
        },
        PerfPoint {
            artifact: "BENCH_engine.json",
            subsystem: "event core",
            headline: engine.0,
            detail: engine.1,
        },
        PerfPoint {
            artifact: "BENCH_mobility.json",
            subsystem: "handover",
            headline: mobility.0,
            detail: mobility.1,
        },
        PerfPoint {
            artifact: "BENCH_recovery.json",
            subsystem: "self-healing",
            headline: recovery.0,
            detail: recovery.1,
        },
        PerfPoint {
            artifact: "BENCH_scale.json",
            subsystem: "fleet scale",
            headline: scale.0,
            detail: scale.1,
        },
        PerfPoint {
            artifact: "BENCH_tournament.json",
            subsystem: "load-aware scheduling",
            headline: tournament.0,
            detail: tournament.1,
        },
        PerfPoint {
            artifact: "BENCH_migrate.json",
            subsystem: "live migration",
            headline: migrate.0,
            detail: migrate.1,
        },
        PerfPoint {
            artifact: "BENCH_ha.json",
            subsystem: "crash recovery",
            headline: ha.0,
            detail: ha.1,
        },
    ]
}

/// Arms in the scheduler tournament (kept in sync with
/// [`crate::tournament::ARMS`]).
const ARMS_IN_TOURNAMENT: usize = crate::tournament::ARMS.len();

/// Renders the perf trajectory table.
pub fn render_trajectory(points: &[PerfPoint]) -> String {
    let mut t = Table::new(&["Artifact", "Subsystem", "Headline", "Detail"]);
    for p in points {
        t.row(vec![
            p.artifact.to_string(),
            p.subsystem.to_string(),
            p.headline.clone(),
            p.detail.clone(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_extractor_reads_ints_floats_and_anchored_keys() {
        let j = "{\n  \"a\": 3,\n  \"rows\": [\n    {\"name\": \"x\", \"v\": 1.5},\n    {\"name\": \"y\", \"v\": 2.5}\n  ],\n  \"last\": 0.25\n}\n";
        assert_eq!(json_number(j, "a"), Some(3.0));
        assert_eq!(json_number(j, "v"), Some(1.5), "first match wins");
        assert_eq!(json_number_after(j, "\"name\": \"y\"", "v"), Some(2.5));
        assert_eq!(json_number(j, "last"), Some(0.25));
        assert_eq!(json_number(j, "absent"), None);
        assert_eq!(json_number_after(j, "no-such-anchor", "v"), None);
    }

    #[test]
    fn trajectory_always_has_all_eight_rows() {
        let points = perf_trajectory();
        assert_eq!(points.len(), 8);
        assert_eq!(points[1].artifact, "BENCH_engine.json");
        assert_eq!(points[4].artifact, "BENCH_scale.json");
        assert_eq!(points[5].artifact, "BENCH_tournament.json");
        assert_eq!(points[6].artifact, "BENCH_migrate.json");
        assert_eq!(points[7].artifact, "BENCH_ha.json");
        let text = render_trajectory(&points);
        assert!(text.contains("event core"));
        assert!(text.contains("data plane"));
        assert!(text.contains("load-aware scheduling"));
        assert!(text.contains("live migration"));
        assert!(text.contains("crash recovery"));
    }

    #[test]
    fn every_claim_holds() {
        let claims = verify_claims(7);
        assert_eq!(claims.len(), 10);
        for c in &claims {
            assert!(c.holds, "{}: {} — measured {}", c.source, c.statement, c.measured);
        }
        let text = render(&claims);
        assert!(text.contains("HOLDS"));
        assert!(!text.contains("FAILS"));
    }
}
