//! The claim-by-claim verdict table: every quantitative statement in the
//! paper's evaluation text, measured fresh and judged.

use desim::Summary;
use testbed::experiments::{self, run_trace_experiment};
use testbed::report::Table;
use testbed::ClusterKind;
use workload::{Trace, TraceConfig};

fn median(v: &[f64]) -> f64 {
    Summary::new(v.to_vec()).median().unwrap_or(f64::NAN)
}

/// One verified claim.
pub struct Claim {
    /// Where the paper states it.
    pub source: &'static str,
    /// The claim, paraphrased.
    pub statement: &'static str,
    /// What we measured.
    pub measured: String,
    /// Whether the measurement supports the claim.
    pub holds: bool,
}

/// Measures every textual claim of the evaluation section for `seed`.
pub fn verify_claims(seed: u64) -> Vec<Claim> {
    let d_nginx = run_trace_experiment(ClusterKind::Docker, &svc("nginx"), true, seed);
    let d_asm = run_trace_experiment(ClusterKind::Docker, &svc("asm"), true, seed);
    let d_resnet = run_trace_experiment(ClusterKind::Docker, &svc("resnet"), true, seed);
    let k_nginx = run_trace_experiment(ClusterKind::K8s, &svc("nginx"), true, seed);
    let d_nginx_cs = run_trace_experiment(ClusterKind::Docker, &svc("nginx"), false, seed);

    let dn = median(&d_nginx.firsts);
    let da = median(&d_asm.firsts);
    let kn = median(&k_nginx.firsts);
    let create_delta = median(&d_nginx_cs.firsts) - dn;
    let resnet_total = median(&d_resnet.firsts);
    let resnet_wait = median(&d_resnet.waits);
    let warm_n = median(&d_nginx.warm);
    let warm_r = median(&d_resnet.warm);

    let fig13 = experiments::fig13(32);
    let saving: f64 = fig13
        .table
        .rows
        .iter()
        .find(|r| r[0] == "nginx")
        .map(|r| r[3].trim_end_matches(" s").parse().unwrap())
        .unwrap_or(f64::NAN);

    let trace = Trace::generate(TraceConfig::default(), seed);
    let counts = trace.per_service_counts();

    vec![
        Claim {
            source: "Abstract / §VII",
            statement: "nginx first request via Docker can be as low as ~0.5 s",
            measured: format!("{dn:.3} s"),
            holds: (0.35..0.75).contains(&dn),
        },
        Claim {
            source: "§VI (Fig. 11)",
            statement: "Docker scale-up stays under one second (cached images)",
            measured: format!("asm {da:.3} s, nginx {dn:.3} s"),
            holds: da < 1.0 && dn < 1.0,
        },
        Claim {
            source: "§VI (Fig. 11)",
            statement: "Kubernetes takes around three seconds for the same container",
            measured: format!("{kn:.3} s ({:.1}x Docker)", kn / dn),
            holds: (2.0..4.0).contains(&kn) && kn / dn > 3.0,
        },
        Claim {
            source: "§VI",
            statement: "no notable difference between asm and nginx start",
            measured: format!("|{da:.3} - {dn:.3}| = {:.3} s", (da - dn).abs()),
            holds: (da - dn).abs() < 0.25,
        },
        Claim {
            source: "§VI (Fig. 12)",
            statement: "creating the containers adds around 100 ms",
            measured: format!("+{create_delta:.3} s"),
            holds: (0.04..0.35).contains(&create_delta),
        },
        Claim {
            source: "§VI (Fig. 14)",
            statement: "ResNet wait alone exceeds a fourth of its total",
            measured: format!(
                "wait {resnet_wait:.3} s / total {resnet_total:.3} s = {:.0} %",
                100.0 * resnet_wait / resnet_total
            ),
            holds: resnet_wait / resnet_total > 0.25,
        },
        Claim {
            source: "§VI (Fig. 13)",
            statement: "private registry improves pulls by about 1.5–2 s",
            measured: format!("{saving:.2} s (nginx)"),
            holds: (1.0..3.0).contains(&saving),
        },
        Claim {
            source: "§VI (Fig. 16)",
            statement: "short responses ~milliseconds; ResNet significantly longer",
            measured: format!("nginx {:.1} ms, resnet {:.0} ms", warm_n * 1e3, warm_r * 1e3),
            holds: warm_n < 0.01 && warm_r / warm_n > 20.0,
        },
        Claim {
            source: "§VI (Figs. 9/10)",
            statement: "1708 requests, 42 services, ≥20 requests each",
            measured: format!(
                "{} requests, {} services, min {}",
                trace.requests.len(),
                counts.len(),
                counts.iter().min().unwrap()
            ),
            holds: trace.requests.len() == 1708
                && counts.len() == 42
                && *counts.iter().min().unwrap() >= 20,
        },
        Claim {
            source: "§VI (port polling)",
            statement: "held requests never hit a closed port (no RSTs)",
            measured: format!(
                "{} resets over {} requests",
                d_nginx.resets + k_nginx.resets + d_resnet.resets,
                d_nginx.warm.len() + d_nginx.firsts.len()
            ),
            holds: d_nginx.resets + k_nginx.resets + d_resnet.resets == 0,
        },
    ]
}

fn svc(key: &str) -> containerd::ServiceProfile {
    containerd::ServiceSet::by_key(key).expect("known profile")
}

/// Renders the claim table.
pub fn render(claims: &[Claim]) -> String {
    let mut t = Table::new(&["Source", "Claim", "Measured", "Verdict"]);
    for c in claims {
        t.row(vec![
            c.source.to_string(),
            c.statement.to_string(),
            c.measured.clone(),
            if c.holds { "HOLDS".into() } else { "FAILS".into() },
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_claim_holds() {
        let claims = verify_claims(7);
        assert_eq!(claims.len(), 10);
        for c in &claims {
            assert!(c.holds, "{}: {} — measured {}", c.source, c.statement, c.measured);
        }
        let text = render(&claims);
        assert!(text.contains("HOLDS"));
        assert!(!text.contains("FAILS"));
    }
}
