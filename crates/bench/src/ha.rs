//! Controller crash-recovery bench: warm journal replay vs cold restart.
//!
//! Like [`crate::recovery`] this is plain `std` (no criterion) so the
//! `repro ha` subcommand can run it directly and emit the machine-readable
//! `BENCH_ha.json` summary. Per swept session count (the recoverable-state
//! knob) it replays the deterministic mobility scenario twice under a
//! `controller_crash` fault at rate 1.0:
//!
//! * **warm** — the restarted controller restores the journal's compacted
//!   snapshot and replays the tail, so its bookkeeping comes back exactly
//!   as it was and reconciliation finds (almost) nothing to fix;
//! * **cold** — the restart starts from empty state: reconciliation,
//!   `FLOW_REMOVED` and packet-in re-dispatch must rebuild everything on
//!   demand, at client-visible cost.
//!
//! The same fault seed gives both modes the *same* crash instant and
//! blackout window, so they race the same outage. Throughout the blackout
//! switches keep forwarding on installed rules — data-plane continuity —
//! and the acceptance gates are: no session permanently stranded, a clean
//! second reconciliation pass, zero panics, and warm recovery p99 no worse
//! than cold at the largest swept state.

use desim::Summary;
use edgectl::RecoveryMode;
use std::path::PathBuf;
use testbed::experiments::{self, HaStats};

/// One swept session count: warm and cold racing the same blackout (times
/// in milliseconds unless noted).
#[derive(Clone, Debug)]
pub struct SizePoint {
    /// Client sessions driven (recoverable state grows with this).
    pub sessions: u64,
    /// Control-plane blackout: crash → restart.
    pub blackout_ms: f64,
    /// Journal events appended across the warm run (mutation volume).
    pub journal_appended: u64,
    /// Compactions the journal performed.
    pub snapshots_taken: u64,
    /// Tail events the warm restart replayed.
    pub replayed_events: u64,
    /// Entries the warm restart restored from the compacted snapshot.
    pub snapshot_entries: u64,
    /// Wall-clock nanoseconds the warm rebuild took (machine-dependent).
    pub replay_wall_ns: u64,
    /// Replay throughput: (snapshot entries + tail events) per wall second.
    pub replay_events_per_sec: f64,
    /// Warm per-session recovery median (first ping answered after restart).
    pub warm_p50_ms: f64,
    /// Warm per-session recovery 99th percentile.
    pub warm_p99_ms: f64,
    /// Sessions with a measured warm recovery.
    pub warm_recovered: u64,
    /// Cold per-session recovery median.
    pub cold_p50_ms: f64,
    /// Cold per-session recovery 99th percentile.
    pub cold_p99_ms: f64,
    /// Sessions with a measured cold recovery.
    pub cold_recovered: u64,
    /// Flow mods the warm restart's reconcile issued (tables should already
    /// match the replayed state, so ≈0).
    pub warm_restart_fixes: u64,
    /// Flow mods the cold restart's reconcile issued (every surviving rule
    /// is torn down — grows with state size).
    pub cold_restart_fixes: u64,
    /// In-flight migrations the restarts aborted (warm + cold).
    pub aborted_migrations: u64,
    /// Attachment changes that happened during the blackout (warm + cold).
    pub missed_handovers: u64,
    /// Control messages lost while the controller was dead (warm + cold).
    pub ctrl_dropped: u64,
    /// Client retransmissions (warm + cold).
    pub retransmits: u64,
    /// Sessions permanently stranded, warm + cold (want 0).
    pub stranded: u64,
    /// Fixes the final reconciliation issued, warm + cold.
    pub reconcile_fixes: u64,
    /// Fixes the second pass still wanted, warm + cold (want 0).
    pub reconcile_residual: u64,
}

/// The full HA report.
#[derive(Clone, Debug)]
pub struct Report {
    /// Seed the scenario ran under.
    pub seed: u64,
    /// Controller-crash probability (the bench pins 1.0).
    pub crash_rate: f64,
    /// Smoke (short) or full sweep.
    pub smoke: bool,
    /// Runs that panicked instead of recovering (want 0).
    pub panics: u64,
    /// One warm-vs-cold row per swept session count, ascending.
    pub points: Vec<SizePoint>,
}

impl Report {
    /// Permanently stranded sessions across every run (want: 0).
    pub fn total_stranded(&self) -> u64 {
        self.points.iter().map(|p| p.stranded).sum()
    }

    /// Residual reconciliation fixes across every run (want: 0).
    pub fn total_residual(&self) -> u64 {
        self.points.iter().map(|p| p.reconcile_residual).sum()
    }

    /// The headline gate: at the *largest* swept state size, warm recovery
    /// p99 must not exceed cold recovery p99 — otherwise replaying the
    /// journal bought nothing over rebuilding from scratch.
    pub fn warm_gate_holds(&self) -> bool {
        self.points
            .last()
            .map(|p| p.warm_p99_ms <= p.cold_p99_ms)
            .unwrap_or(false)
    }

    /// Renders the hand-rolled JSON summary (`serde` is deliberately not a
    /// dependency of this workspace).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\n  \"bench\": \"ha\",\n  \"seed\": {},\n  \"crash_rate\": {},\n  \
             \"smoke\": {},\n  \"sizes\": [\n",
            self.seed, self.crash_rate, self.smoke
        );
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"sessions\": {}, \"blackout_ms\": {:.3}, \
                 \"journal_appended\": {}, \"snapshots_taken\": {}, \
                 \"replayed_events\": {}, \"snapshot_entries\": {}, \
                 \"replay_wall_ns\": {}, \"replay_events_per_sec\": {:.0}, \
                 \"warm_recovery_p50_ms\": {:.3}, \"warm_recovery_p99_ms\": {:.3}, \
                 \"warm_recovered\": {}, \"cold_recovery_p50_ms\": {:.3}, \
                 \"cold_recovery_p99_ms\": {:.3}, \"cold_recovered\": {}, \
                 \"warm_restart_fixes\": {}, \"cold_restart_fixes\": {}, \
                 \"aborted_migrations\": {}, \"missed_handovers\": {}, \
                 \"ctrl_dropped\": {}, \"retransmits\": {}, \"stranded\": {}, \
                 \"reconcile_fixes\": {}, \"reconcile_residual\": {}}}{}\n",
                p.sessions,
                p.blackout_ms,
                p.journal_appended,
                p.snapshots_taken,
                p.replayed_events,
                p.snapshot_entries,
                p.replay_wall_ns,
                p.replay_events_per_sec,
                p.warm_p50_ms,
                p.warm_p99_ms,
                p.warm_recovered,
                p.cold_p50_ms,
                p.cold_p99_ms,
                p.cold_recovered,
                p.warm_restart_fixes,
                p.cold_restart_fixes,
                p.aborted_migrations,
                p.missed_handovers,
                p.ctrl_dropped,
                p.retransmits,
                p.stranded,
                p.reconcile_fixes,
                p.reconcile_residual,
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        let last = self.points.last();
        s.push_str(&format!(
            "  ],\n  \"largest_sessions\": {},\n  \"warm_p99_ms_at_largest\": {:.3},\n  \
             \"cold_p99_ms_at_largest\": {:.3},\n  \
             \"gate_warm_p99_le_cold_p99\": {},\n  \"total_stranded\": {},\n  \
             \"total_reconcile_residual\": {},\n  \"panics\": {}\n}}\n",
            last.map(|p| p.sessions).unwrap_or(0),
            last.map(|p| p.warm_p99_ms).unwrap_or(f64::NAN),
            last.map(|p| p.cold_p99_ms).unwrap_or(f64::NAN),
            self.warm_gate_holds(),
            self.total_stranded(),
            self.total_residual(),
            self.panics
        ));
        s
    }

    /// Renders a human-readable table.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "sessions  blackout[ms]  journal  replay(snap+tail)  ev/s      \
             warm p50/p99 [ms]  cold p50/p99 [ms]  fixes w/c  stranded  resid\n",
        );
        for p in &self.points {
            s.push_str(&format!(
                "{:>8}  {:>12.1}  {:>7}  {:>8}+{:<8}  {:>8.0}  {:>7.1}/{:>8.1}  {:>7.1}/{:>8.1}  {:>4}/{:<4}  {:>8}  {:>5}\n",
                p.sessions,
                p.blackout_ms,
                p.journal_appended,
                p.snapshot_entries,
                p.replayed_events,
                p.replay_events_per_sec,
                p.warm_p50_ms,
                p.warm_p99_ms,
                p.cold_p50_ms,
                p.cold_p99_ms,
                p.warm_restart_fixes,
                p.cold_restart_fixes,
                p.stranded,
                p.reconcile_residual
            ));
        }
        s.push_str(&format!(
            "gate: warm recovery p99 at largest state {} cold p99 ({})\n\
             total stranded {} (want 0), reconcile residual {} (want 0), panics {} (want 0)\n",
            if self.warm_gate_holds() { "<=" } else { "EXCEEDS" },
            if self.warm_gate_holds() { "holds" } else { "FAILS" },
            self.total_stranded(),
            self.total_residual(),
            self.panics
        ));
        s
    }
}

/// Where `BENCH_ha.json` is written: the repository root.
pub fn default_output_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_ha.json")
}

fn pct(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    Summary::new(xs.to_vec()).percentile(p).unwrap_or(0.0) * 1e3
}

/// The swept session counts: recoverable state (FlowMemory entries,
/// installed pairs, client locations, the session ledger) grows with the
/// number of moving clients.
pub fn swept_sessions(smoke: bool) -> &'static [usize] {
    if smoke {
        &[3, 6]
    } else {
        &[4, 8, 16]
    }
}

/// Runs the warm arm and the cold baseline once per swept session count,
/// catching panics so a crashing restart path is reported rather than
/// aborting the artifact.
pub fn run(seed: u64, smoke: bool) -> Report {
    let crash_rate = 1.0;
    let mut panics = 0u64;
    let mut run_one = |mode: RecoveryMode, n: usize| {
        match std::panic::catch_unwind(|| experiments::ha_stats(mode, n, seed, crash_rate, smoke)) {
            Ok(s) => s,
            Err(_) => {
                panics += 1;
                HaStats::default()
            }
        }
    };
    let points = swept_sessions(smoke)
        .iter()
        .map(|&n| {
            let w = run_one(RecoveryMode::Warm, n);
            let c = run_one(RecoveryMode::Cold, n);
            let replayed_total = w.replayed_events + w.snapshot_entries;
            let replay_events_per_sec = if w.replay_wall_ns > 0 {
                replayed_total as f64 / (w.replay_wall_ns as f64 / 1e9)
            } else {
                0.0
            };
            SizePoint {
                sessions: n as u64,
                blackout_ms: w.blackout_secs * 1e3,
                journal_appended: w.journal_appended,
                snapshots_taken: w.snapshots_taken,
                replayed_events: w.replayed_events,
                snapshot_entries: w.snapshot_entries,
                replay_wall_ns: w.replay_wall_ns,
                replay_events_per_sec,
                warm_p50_ms: pct(&w.recovery_secs, 50.0),
                warm_p99_ms: pct(&w.recovery_secs, 99.0),
                warm_recovered: w.recovery_secs.len() as u64,
                cold_p50_ms: pct(&c.recovery_secs, 50.0),
                cold_p99_ms: pct(&c.recovery_secs, 99.0),
                cold_recovered: c.recovery_secs.len() as u64,
                warm_restart_fixes: w.restart_fixes,
                cold_restart_fixes: c.restart_fixes,
                aborted_migrations: w.aborted_migrations + c.aborted_migrations,
                missed_handovers: w.missed_handovers + c.missed_handovers,
                ctrl_dropped: w.ctrl_dropped + c.ctrl_dropped,
                retransmits: w.retransmits + c.retransmits,
                stranded: w.stranded + c.stranded,
                reconcile_fixes: w.reconcile_fixes + c.reconcile_fixes,
                reconcile_residual: w.reconcile_residual + c.reconcile_residual,
            }
        })
        .collect();
    Report { seed, crash_rate, smoke, panics, points }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(sessions: u64, warm_p99: f64, cold_p99: f64) -> SizePoint {
        SizePoint {
            sessions,
            blackout_ms: 3000.0,
            journal_appended: 400,
            snapshots_taken: 3,
            replayed_events: 20,
            snapshot_entries: 60,
            replay_wall_ns: 40_000,
            replay_events_per_sec: 2_000_000.0,
            warm_p50_ms: warm_p99 / 2.0,
            warm_p99_ms: warm_p99,
            warm_recovered: sessions,
            cold_p50_ms: cold_p99 / 2.0,
            cold_p99_ms: cold_p99,
            cold_recovered: sessions,
            warm_restart_fixes: 0,
            cold_restart_fixes: 12,
            aborted_migrations: 1,
            missed_handovers: 2,
            ctrl_dropped: 5,
            retransmits: 4,
            stranded: 0,
            reconcile_fixes: 3,
            reconcile_residual: 0,
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let r = Report {
            seed: 7,
            crash_rate: 1.0,
            smoke: true,
            panics: 0,
            points: vec![point(3, 5.0, 40.0), point(6, 6.0, 90.0)],
        };
        let j = r.to_json();
        assert!(j.contains("\"bench\": \"ha\""));
        assert!(j.contains("\"crash_rate\": 1"));
        assert!(j.contains("\"sessions\": 6"));
        assert!(j.contains("\"warm_recovery_p99_ms\": 6.000"));
        assert!(j.contains("\"cold_recovery_p99_ms\": 90.000"));
        assert!(j.contains("\"replay_events_per_sec\": 2000000"));
        assert!(j.contains("\"largest_sessions\": 6"));
        assert!(j.contains("\"gate_warm_p99_le_cold_p99\": true"));
        assert!(j.contains("\"total_stranded\": 0"));
        assert!(j.contains("\"total_reconcile_residual\": 0"));
        assert!(j.contains("\"panics\": 0"));
        assert!(r.render().contains("holds"));
    }

    #[test]
    fn gate_compares_the_largest_size_only() {
        let mut r = Report {
            seed: 7,
            crash_rate: 1.0,
            smoke: true,
            panics: 0,
            points: vec![point(3, 50.0, 10.0), point(6, 5.0, 40.0)],
        };
        assert!(r.warm_gate_holds(), "only the largest size gates");
        r.points[1].warm_p99_ms = 100.0;
        assert!(!r.warm_gate_holds());
        r.points.clear();
        assert!(!r.warm_gate_holds(), "an empty sweep proves nothing");
    }

    #[test]
    fn smoke_run_recovers_cleanly_in_both_modes() {
        let r = run(7, true);
        assert_eq!(r.points.len(), swept_sessions(true).len());
        assert_eq!(r.panics, 0, "no restart path panicked");
        assert_eq!(r.total_stranded(), 0, "no session permanently stranded");
        assert_eq!(r.total_residual(), 0, "switch tables reconcile clean");
        assert!(r.warm_gate_holds(), "warm p99 must not exceed cold p99");
        for p in &r.points {
            assert!(p.blackout_ms > 0.0, "the crash fired at rate 1.0");
            assert!(p.journal_appended > 0, "the journal recorded");
            assert!(
                p.replayed_events + p.snapshot_entries > 0,
                "warm restart recovered state"
            );
            assert!(p.warm_recovered > 0, "warm recovery was measured");
            assert!(p.cold_recovered > 0, "cold recovery was measured");
            assert!(p.cold_restart_fixes > 0, "cold restart rebuilt the tables");
            assert!(
                p.warm_restart_fixes < p.cold_restart_fixes,
                "warm replay left less for the reconcile to fix"
            );
        }
        // More sessions ⇒ more recoverable state in the journal.
        for w in r.points.windows(2) {
            assert!(w[1].journal_appended > w[0].journal_appended);
        }
    }

    #[test]
    fn repro_artifact_is_deterministic_up_to_wall_clock() {
        // Everything except the wall-clock replay fields is byte-stable per
        // seed; the rebuild's nanosecond timing is machine noise.
        let strip = |r: &Report| {
            let mut j = String::new();
            for p in &r.points {
                j.push_str(&format!(
                    "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}\n",
                    p.sessions,
                    p.blackout_ms,
                    p.journal_appended,
                    p.snapshots_taken,
                    p.replayed_events,
                    p.snapshot_entries,
                    p.warm_p50_ms,
                    p.warm_p99_ms,
                    p.warm_recovered,
                    p.cold_p50_ms,
                    p.cold_p99_ms,
                    p.cold_recovered,
                    p.warm_restart_fixes,
                    p.cold_restart_fixes,
                    p.missed_handovers,
                    p.retransmits,
                    p.stranded,
                    p.reconcile_residual,
                ));
            }
            j
        };
        let a = run(7, true);
        let b = run(7, true);
        assert_eq!(strip(&a), strip(&b), "same seed ⇒ same simulation");
    }
}
