//! Scheduler tournament under a bursty workload with autoscaling on.
//!
//! Every registered scheduler runs the identical [`workload::BurstConfig`]
//! trace against the same two-cluster testbed — a near edge zone (150 µs)
//! and a far one (900 µs), images pre-pulled — with per-instance queueing
//! and the horizontal autoscaler enabled. Bursts slam one hot service at a
//! time hard enough to saturate a single replica, so the ranking separates
//! schedulers by what they *see*: load-blind ones (proximity, random) pile
//! the burst onto one queue and pay in tail latency and queue rejections,
//! while instance-granular ones (least-connections, latency-ewma) spread it
//! across the replicas the autoscaler adds.
//!
//! Like [`crate::scale`] this is plain `std` (no criterion): the
//! `repro tournament` subcommand runs it directly and emits
//! `BENCH_tournament.json`. Every reported field is sim-derived — no
//! wall-clock values — so the artifact is byte-identical per `(seed, smoke)`.

use desim::{Duration, SimRng, SimTime};
use edgectl::annotate_deployment;
use edgectl::{AutoscaleConfig, QueueConfig};
use edgectl::{Controller, ControllerConfig, DockerCluster, EdgeService, PortMap};
use dockersim::DockerEngine;
use netsim::addr::{Ipv4Addr, MacAddr};
use netsim::{ServiceAddr, TcpFrame};
use openflow::messages::Message;
use openflow::oxm::{Match, OxmField};
use openflow::PacketInReason;
use std::collections::HashMap;
use std::path::PathBuf;
use testbed::client_ip_for;
use workload::BurstConfig;

/// Ingress-side port clients arrive on.
const CLIENT_PORT: u32 = 1;
/// Egress port toward the near edge cluster.
const NEAR_PORT: u32 = 2;
/// Port toward the cloud uplink.
const CLOUD_PORT: u32 = 3;
/// Egress port toward the far edge cluster.
const FAR_PORT: u32 = 4;

/// The schedulers entered into the tournament, in report order.
pub const ARMS: &[&str] = &[
    "proximity",
    "round-robin",
    "random",
    "least-connections",
    "latency-ewma",
    "predictive",
];

/// One arm's measurements (all sim-derived; no wall-clock fields).
#[derive(Clone, Debug)]
pub struct ArmStats {
    /// Scheduler name (one of [`ARMS`]).
    pub arm: &'static str,
    /// Requests replayed (equals the trace length).
    pub requests: u64,
    /// Median answer delay, ms.
    pub p50_ms: f64,
    /// 99th-percentile answer delay, ms — the headline column.
    pub p99_ms: f64,
    /// Mean answer delay, ms.
    pub mean_ms: f64,
    /// Fraction of requests answered by the cloud (scheduler fallback or
    /// queue rejection overflow).
    pub fallback_rate: f64,
    /// Requests bounced off a full instance queue.
    pub rejections: u64,
    /// `rejections / requests`.
    pub rejection_rate: f64,
    /// Autoscaler scale-up operations across the run.
    pub scale_ups: u64,
    /// Autoscaler scale-down operations across the run.
    pub scale_downs: u64,
    /// Mean concurrently-provisioned replicas over the trace (replica-seconds
    /// divided by the trace duration) — the capacity cost of the arm.
    pub mean_replicas: f64,
}

/// The full tournament report.
#[derive(Clone, Debug)]
pub struct Report {
    /// Seed the workload ran under.
    pub seed: u64,
    /// Smoke (CI-sized) or full run.
    pub smoke: bool,
    /// Services in the workload.
    pub services: usize,
    /// Requests per arm.
    pub requests: u64,
    /// One entry per scheduler, in [`ARMS`] order.
    pub arms: Vec<ArmStats>,
}

impl Report {
    /// The named arm's stats.
    pub fn arm(&self, name: &str) -> &ArmStats {
        self.arms
            .iter()
            .find(|a| a.arm == name)
            .unwrap_or_else(|| panic!("no arm `{name}`"))
    }

    /// Renders the hand-rolled JSON artifact (`serde` is deliberately not a
    /// dependency of this workspace).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\n  \"bench\": \"tournament\",\n  \"seed\": {},\n  \"smoke\": {},\n  \
             \"services\": {},\n  \"requests\": {},\n  \"arms\": [\n",
            self.seed, self.smoke, self.services, self.requests
        );
        for (i, a) in self.arms.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"arm\": \"{}\", \"requests\": {}, \"p50_ms\": {:.3}, \
                 \"p99_ms\": {:.3}, \"mean_ms\": {:.3}, \"fallback_rate\": {:.4}, \
                 \"rejections\": {}, \"rejection_rate\": {:.4}, \"scale_ups\": {}, \
                 \"scale_downs\": {}, \"mean_replicas\": {:.3}}}{}\n",
                a.arm,
                a.requests,
                a.p50_ms,
                a.p99_ms,
                a.mean_ms,
                a.fallback_rate,
                a.rejections,
                a.rejection_rate,
                a.scale_ups,
                a.scale_downs,
                a.mean_replicas,
                if i + 1 < self.arms.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "  ],\n  \"least_connections_p99_ms\": {:.3},\n  \"random_p99_ms\": {:.3}\n}}\n",
            self.arm("least-connections").p99_ms,
            self.arm("random").p99_ms
        ));
        s
    }

    /// Renders a human-readable table.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{} requests over {} services per arm, autoscaling on\n\n",
            self.requests, self.services
        );
        s.push_str(
            "arm                p50 [ms]  p99 [ms]  mean [ms]  fallback  rejects  ups  downs  replicas\n",
        );
        for a in &self.arms {
            s.push_str(&format!(
                "{:<17} {:>9.2} {:>9.2} {:>10.2} {:>9.3} {:>8} {:>4} {:>6} {:>9.2}\n",
                a.arm,
                a.p50_ms,
                a.p99_ms,
                a.mean_ms,
                a.fallback_rate,
                a.rejections,
                a.scale_ups,
                a.scale_downs,
                a.mean_replicas
            ));
        }
        s.push_str(&format!(
            "least-connections p99 {:.2} ms vs random {:.2} ms (want <=)\n",
            self.arm("least-connections").p99_ms,
            self.arm("random").p99_ms
        ));
        s
    }
}

/// Where `BENCH_tournament.json` is written: the repository root.
pub fn default_output_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_tournament.json")
}

/// An edge service at `203.0.113.20:port` backed by the cached `asm`
/// profile.
fn tournament_service(port: u16) -> EdgeService {
    let profile = containerd::ServiceSet::by_key("asm").unwrap();
    let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 20), port);
    let yaml = format!(
        "spec:\n  template:\n    spec:\n      containers:\n        - name: main\n          image: {}\n          ports:\n            - containerPort: {}\n",
        profile.manifests[0].reference, profile.listen_port
    );
    let annotated = annotate_deployment(&yaml, addr, None).unwrap();
    EdgeService { addr, name: annotated.service_name.clone(), annotated, profile }
}

/// The tournament's autoscale policy: replicas of 100 req/s each
/// (20 ms service time, 2 in-flight slots), a short backlog, and a sweep
/// fast enough to react inside a burst.
fn autoscale_policy() -> AutoscaleConfig {
    AutoscaleConfig {
        enabled: true,
        min_replicas: 1,
        max_replicas: 4,
        cooldown: Duration::from_millis(300),
        sweep_interval: Duration::from_millis(100),
        queue: QueueConfig {
            service_time: Duration::from_millis(20),
            concurrency: 2,
            backlog: 6,
        },
        ..AutoscaleConfig::default()
    }
}

/// Builds the two-zone controller for one arm: near (150 µs) and far
/// (900 µs) Docker clusters, images pre-pulled, every service registered.
fn build_controller(scheduler: &str, services: usize, rng: &mut SimRng) -> Controller {
    let manifests = &containerd::ServiceSet::by_key("asm").unwrap().manifests;
    let mut near_engine = DockerEngine::with_defaults();
    near_engine.pull(manifests, rng);
    let mut far_engine = DockerEngine::with_defaults();
    far_engine.pull(manifests, rng);
    let near = DockerCluster::new(
        "edge-near",
        near_engine,
        MacAddr::from_id(200),
        Ipv4Addr::new(10, 0, 0, 20),
        Duration::from_micros(150),
    );
    let far = DockerCluster::new(
        "edge-far",
        far_engine,
        MacAddr::from_id(201),
        Ipv4Addr::new(10, 0, 1, 20),
        Duration::from_micros(900),
    );
    let mut ctl = Controller::new(
        edgectl::scheduler_by_name(scheduler).unwrap_or_else(|e| panic!("{e}")),
        PortMap { cluster_ports: HashMap::new(), cloud_port: CLOUD_PORT },
        ControllerConfig {
            autoscale: autoscale_policy(),
            ..ControllerConfig::default()
        },
    );
    ctl.add_cluster(Box::new(near), NEAR_PORT);
    ctl.add_cluster(Box::new(far), FAR_PORT);
    for s in 0..services {
        ctl.register_service(tournament_service(9000 + s as u16));
    }
    ctl
}

/// Encodes a `PACKET_IN` carrying `frame`, as the ingress switch would send
/// it on a table miss.
fn packet_in(frame: &TcpFrame, buffer_id: u32) -> Vec<u8> {
    let data = frame.encode();
    Message::PacketIn {
        buffer_id,
        total_len: data.len() as u16,
        reason: PacketInReason::NoMatch,
        table_id: 0,
        cookie: 0,
        match_: Match::any().with(OxmField::InPort(CLIENT_PORT)),
        data,
    }
    .encode(1)
}

/// `q`-th percentile (nearest-rank) of an unsorted sample, in ms.
fn percentile_ms(delays_ns: &mut [u64], q: f64) -> f64 {
    if delays_ns.is_empty() {
        return 0.0;
    }
    delays_ns.sort_unstable();
    let idx = ((delays_ns.len() - 1) as f64 * q).round() as usize;
    delays_ns[idx] as f64 / 1e6
}

/// Runs one arm: replays the bursty trace through the controller, sweeping
/// the autoscaler every `sweep_interval` of sim time. Each request arrives
/// on a fresh source port, so every connection is a genuine table miss.
fn run_arm(arm: &'static str, workload: &BurstConfig, seed: u64) -> ArmStats {
    let mut rng = SimRng::new(seed);
    let trace = workload.clone().generate(seed);
    let mut ctl = build_controller(arm, workload.n_services, &mut rng);
    let gw_mac = MacAddr::from_id(900);

    let sweep_every = ctl.load().config().sweep_interval;
    let mut next_sweep = SimTime::ZERO + sweep_every;
    let mut n: u64 = 0;
    for r in &trace.requests {
        while next_sweep <= r.at {
            ctl.autoscale_sweep(next_sweep);
            next_sweep += sweep_every;
        }
        let frame = TcpFrame::syn(
            MacAddr::from_id(1_000 + r.client as u32),
            gw_mac,
            client_ip_for(r.client),
            10_000 + n as u16,
            ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 20), 9000 + r.service as u16),
        );
        let msg = packet_in(&frame, (n as u32) & 0x00ff_ffff);
        ctl.handle_switch_message(r.at, &msg, &mut rng).expect("packet-in");
        n += 1;
    }
    let end = SimTime::ZERO + workload.duration;

    let mut delays: Vec<u64> = ctl
        .records
        .iter()
        .map(|r| r.answered_at.saturating_since(r.at).as_nanos())
        .collect();
    let fallbacks = ctl
        .records
        .iter()
        .filter(|r| {
            matches!(
                r.kind,
                edgectl::controller::RequestKind::Cloud
                    | edgectl::controller::RequestKind::FallbackCloud
            )
        })
        .count() as u64;
    let total = delays.len() as f64;
    let mean_ms = delays.iter().map(|&d| d as f64).sum::<f64>() / total.max(1.0) / 1e6;
    let p50_ms = percentile_ms(&mut delays, 0.50);
    let p99_ms = percentile_ms(&mut delays, 0.99);
    let rejections = ctl.load().rejections();
    let replica_seconds = ctl.load_mut().replica_seconds(end);

    ArmStats {
        arm,
        requests: n,
        p50_ms,
        p99_ms,
        mean_ms,
        fallback_rate: fallbacks as f64 / total.max(1.0),
        rejections,
        rejection_rate: rejections as f64 / (n as f64).max(1.0),
        scale_ups: ctl.load().scale_ups(),
        scale_downs: ctl.load().scale_downs(),
        mean_replicas: replica_seconds / workload.duration.as_secs_f64(),
    }
}

/// Runs every arm over the identical workload.
pub fn run(seed: u64, smoke: bool) -> Report {
    let workload = if smoke { BurstConfig::smoke() } else { BurstConfig::full() };
    let arms: Vec<ArmStats> = ARMS.iter().map(|a| run_arm(a, &workload, seed)).collect();
    Report {
        seed,
        smoke,
        services: workload.n_services,
        requests: arms.first().map_or(0, |a| a.requests),
        arms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let stats = |arm, p99_ms| ArmStats {
            arm,
            requests: 100,
            p50_ms: 1.0,
            p99_ms,
            mean_ms: 2.0,
            fallback_rate: 0.01,
            rejections: 3,
            rejection_rate: 0.03,
            scale_ups: 2,
            scale_downs: 1,
            mean_replicas: 1.5,
        };
        let r = Report {
            seed: 7,
            smoke: true,
            services: 4,
            requests: 100,
            arms: vec![stats("random", 40.0), stats("least-connections", 20.0)],
        };
        let j = r.to_json();
        assert!(j.contains("\"bench\": \"tournament\""));
        assert!(j.contains("\"arm\": \"least-connections\""));
        assert!(j.contains("\"least_connections_p99_ms\": 20.000"));
        assert!(j.contains("\"random_p99_ms\": 40.000"));
        assert!(r.render().contains("want <="));
    }

    #[test]
    fn smoke_tournament_runs_all_arms_deterministically() {
        let r = run(7, true);
        assert_eq!(r.arms.len(), ARMS.len());
        let expected = BurstConfig::smoke().generate(7).requests.len() as u64;
        for a in &r.arms {
            assert_eq!(a.requests, expected, "{}", a.arm);
            assert!(a.p99_ms > 0.0, "{}", a.arm);
            assert!(a.mean_replicas > 0.0, "{}: pools must accrue", a.arm);
        }
        // The gate the CI smoke job enforces: seeing per-instance load must
        // not be worse than ignoring it.
        assert!(
            r.arm("least-connections").p99_ms <= r.arm("random").p99_ms,
            "lc {} vs random {}",
            r.arm("least-connections").p99_ms,
            r.arm("random").p99_ms
        );
        // Bursts overload single replicas: the autoscaler must have acted.
        assert!(r.arms.iter().any(|a| a.scale_ups > 0));
        let again = run(7, true);
        assert_eq!(r.to_json(), again.to_json(), "same seed ⇒ same artifact");
    }
}
