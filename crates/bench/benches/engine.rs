//! Microbenchmarks of the desim event core: the calendar queue against the
//! naive binary-heap reference over the workload shapes the simulator
//! actually produces (steady-state pop/reschedule cycles, batch scheduling,
//! full drains) at several pending depths.
//!
//! After the criterion groups run, `main` emits `BENCH_engine.json` at the
//! repository root (via [`bench::engine`]) so the headline events/sec
//! numbers and the mixed-workload speedup are tracked across PRs.

use bench::engine::BenchQueue;
use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use desim::{Duration, EventQueue, NaiveEventQueue, SimRng, SimTime};

/// The mobility-shaped successor delay (80% 200 µs – 2 ms, 20% 0.5 – 5 s),
/// matching `bench::engine`'s mixed workload.
fn mixed_delay(rng: &mut SimRng) -> u64 {
    if rng.below(5) < 4 {
        200_000 + rng.below(1_800_000)
    } else {
        500_000_000 + rng.below(4_500_000_000)
    }
}

/// A queue pre-filled to `depth` pending events and cycled once so both
/// implementations are measured at steady state.
fn warm_queue<Q: BenchQueue>(depth: usize) -> (Q, SimRng) {
    let mut rng = SimRng::new(0xE1137);
    let mut q = Q::with_capacity(depth);
    for i in 0..depth {
        q.push(SimTime::from_nanos(mixed_delay(&mut rng)), i as u64);
    }
    for _ in 0..depth {
        let (now, v) = q.pop().unwrap();
        q.push(now + Duration::from_nanos(mixed_delay(&mut rng)), v);
    }
    (q, rng)
}

fn bench_mixed_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_mixed_cycle");
    g.sample_size(10);
    for depth in [1_000usize, 100_000] {
        let (mut cal, mut rng_c) = warm_queue::<EventQueue<u64>>(depth);
        g.bench_with_input(BenchmarkId::new("calendar", depth), &depth, |b, _| {
            b.iter(|| {
                let (now, v) = cal.pop().unwrap();
                cal.push(now + Duration::from_nanos(mixed_delay(&mut rng_c)), v);
                black_box(now)
            })
        });
        let (mut naive, mut rng_n) = warm_queue::<NaiveEventQueue<u64>>(depth);
        g.bench_with_input(BenchmarkId::new("naive", depth), &depth, |b, _| {
            b.iter(|| {
                let (now, v) = naive.pop().unwrap();
                naive.push(now + Duration::from_nanos(mixed_delay(&mut rng_n)), v);
                black_box(now)
            })
        });
    }
    g.finish();
}

fn bench_schedule_drain(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_schedule_drain");
    g.sample_size(10);
    let n = 100_000usize;
    g.bench_function("calendar", |b| {
        b.iter_with_setup(
            || SimRng::new(0xE1137),
            |mut rng| {
                let mut q: EventQueue<u64> = EventQueue::with_capacity(n);
                for i in 0..n {
                    q.push(SimTime::from_nanos(rng.below(60_000_000_000)), i as u64);
                }
                while let Some(e) = q.pop() {
                    black_box(e);
                }
            },
        )
    });
    g.bench_function("naive", |b| {
        b.iter_with_setup(
            || SimRng::new(0xE1137),
            |mut rng| {
                let mut q: NaiveEventQueue<u64> = NaiveEventQueue::with_capacity(n);
                for i in 0..n {
                    q.push(SimTime::from_nanos(rng.below(60_000_000_000)), i as u64);
                }
                while let Some(e) = q.pop() {
                    black_box(e);
                }
            },
        )
    });
    g.finish();
}

criterion_group!(benches, bench_mixed_cycle, bench_schedule_drain);

fn main() {
    benches();
    Criterion::default().configure_from_args().final_summary();
    // Emit the machine-readable summary for the perf trajectory.
    let report = bench::engine::run(false);
    let path = bench::engine::default_output_path();
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
    print!("{}", report.render());
}
