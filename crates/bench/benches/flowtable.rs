//! Microbenchmarks of the data-plane hot paths: flow-table lookup, OXM
//! match handling, and frame/OpenFlow codec throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use desim::{Duration, SimTime};
use netsim::addr::{Ipv4Addr, MacAddr, ServiceAddr};
use netsim::TcpFrame;
use openflow::actions::{Action, Instruction};
use openflow::messages::Message;
use openflow::oxm::{Match, MatchView};
use openflow::table::{entry, FlowTable};

fn view(dst_port: u16) -> MatchView {
    MatchView {
        in_port: 1,
        eth_dst: [2, 0, 0, 0, 0, 9],
        eth_src: [2, 0, 0, 0, 0, 1],
        eth_type: 0x0800,
        ip_proto: 6,
        ipv4_src: [192, 168, 1, 20],
        ipv4_dst: [203, 0, 113, 10],
        tcp_src: 50000,
        tcp_dst: dst_port,
    }
}

fn table_with(n: usize) -> FlowTable {
    let mut t = FlowTable::new();
    for i in 0..n {
        let m = Match::connection(
            [192, 168, (i >> 8) as u8, i as u8],
            50000 + (i % 1000) as u16,
            [203, 0, 113, 10],
            80,
        );
        t.add(
            entry(
                m,
                100,
                i as u64,
                vec![Instruction::ApplyActions(vec![Action::output(2)])],
                Duration::from_secs(10),
                Duration::ZERO,
                0,
            ),
            SimTime::ZERO,
        );
    }
    t
}

fn bench_flow_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("flowtable_lookup");
    for n in [16usize, 128, 1024] {
        let mut t = table_with(n);
        g.bench_with_input(BenchmarkId::new("miss", n), &n, |b, _| {
            b.iter(|| black_box(t.lookup(black_box(&view(9999)), 64, SimTime::ZERO)))
        });
        let hit_view = {
            let mut v = view(80);
            v.ipv4_src = [192, 168, 0, 0];
            v.tcp_src = 50000;
            v
        };
        g.bench_with_input(BenchmarkId::new("hit_first", n), &n, |b, _| {
            b.iter(|| black_box(t.lookup(black_box(&hit_view), 64, SimTime::ZERO)))
        });
    }
    g.finish();
}

fn bench_codecs(c: &mut Criterion) {
    let frame = {
        let mut f = TcpFrame::syn(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Ipv4Addr::new(192, 168, 1, 20),
            50000,
            ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80),
        );
        f.payload = vec![0x47; 512];
        f
    };
    let bytes = frame.encode();
    c.bench_function("frame_encode_512B", |b| b.iter(|| black_box(frame.encode())));
    c.bench_function("frame_decode_512B", |b| {
        b.iter(|| black_box(TcpFrame::decode(black_box(&bytes)).unwrap()))
    });

    let fm = Message::FlowMod {
        cookie: 1,
        table_id: 0,
        command: openflow::messages::FlowModCommand::Add,
        idle_timeout: 10,
        hard_timeout: 0,
        priority: 100,
        buffer_id: openflow::OFP_NO_BUFFER,
        flags: 0,
        match_: Match::connection([192, 168, 1, 20], 50000, [203, 0, 113, 10], 80),
        instructions: vec![Instruction::ApplyActions(vec![
            Action::SetField(openflow::oxm::OxmField::Ipv4Dst([10, 0, 0, 5])),
            Action::SetField(openflow::oxm::OxmField::TcpDst(31000)),
            Action::output(2),
        ])],
    };
    let fm_bytes = fm.encode(1);
    c.bench_function("flowmod_encode", |b| b.iter(|| black_box(fm.encode(1))));
    c.bench_function("flowmod_decode", |b| {
        b.iter(|| black_box(Message::decode(black_box(&fm_bytes)).unwrap()))
    });
}

fn bench_expiry(c: &mut Criterion) {
    c.bench_function("flowtable_expire_1024", |b| {
        b.iter_with_setup(
            || table_with(1024),
            |mut t| {
                black_box(t.expire(SimTime::from_secs(20)));
                t
            },
        )
    });
}

criterion_group!(benches, bench_flow_lookup, bench_codecs, bench_expiry);
criterion_main!(benches);
