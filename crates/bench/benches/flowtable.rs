//! Microbenchmarks of the data-plane hot paths: flow-table lookup (naive
//! linear scan vs indexed classification), microflow-cache hits, OXM match
//! handling, frame/OpenFlow codec throughput, and expiry sweeps.
//!
//! After the criterion groups run, `main` emits `BENCH_flowtable.json` at
//! the repository root (via [`bench::fastpath`]) so the headline ns/op
//! numbers and cache hit rate are tracked across PRs.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use desim::{Duration, SimTime};
use netsim::addr::{Ipv4Addr, MacAddr, ServiceAddr};
use netsim::TcpFrame;
use openflow::actions::{Action, Instruction};
use openflow::messages::Message;
use openflow::oxm::{Match, MatchView};
use openflow::table::{entry, FlowEntry, FlowTable};
use openflow::NaiveFlowTable;

fn view(dst_port: u16) -> MatchView {
    MatchView {
        in_port: 1,
        eth_dst: [2, 0, 0, 0, 0, 9],
        eth_src: [2, 0, 0, 0, 0, 1],
        eth_type: 0x0800,
        ip_proto: 6,
        ipv4_src: [192, 168, 1, 20],
        ipv4_dst: [203, 0, 113, 10],
        tcp_src: 50000,
        tcp_dst: dst_port,
    }
}

fn flow_entries(n: usize) -> Vec<FlowEntry> {
    (0..n)
        .map(|i| {
            let m = Match::connection(
                [192, 168, (i >> 8) as u8, i as u8],
                50000 + (i % 1000) as u16,
                [203, 0, 113, 10],
                80,
            );
            entry(
                m,
                100,
                i as u64,
                vec![Instruction::ApplyActions(vec![Action::output(2)])],
                Duration::from_secs(600),
                Duration::ZERO,
                0,
            )
        })
        .collect()
}

fn table_with(n: usize) -> FlowTable {
    let mut t = FlowTable::new();
    for e in flow_entries(n) {
        t.add(e, SimTime::ZERO);
    }
    t
}

/// The view hitting the flow at index `i` of `flow_entries`.
fn hit_view(i: usize) -> MatchView {
    let mut v = view(80);
    v.ipv4_src = [192, 168, (i >> 8) as u8, i as u8];
    v.tcp_src = 50000 + (i % 1000) as u16;
    v
}

fn bench_flow_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("flowtable_lookup");
    g.sample_size(10);
    for n in [10usize, 1024, 100_000] {
        let mut naive = NaiveFlowTable::with_entries(flow_entries(n), SimTime::ZERO);
        let mut indexed = table_with(n);
        // Mid-table hit: the naive scan's average-depth case; the indexed
        // table's cost is the same wherever the entry sits.
        let v = hit_view(n / 2);
        g.bench_with_input(BenchmarkId::new("naive_hit", n), &n, |b, _| {
            b.iter(|| black_box(naive.lookup(black_box(&v), 64, SimTime::ZERO)))
        });
        g.bench_with_input(BenchmarkId::new("indexed_hit", n), &n, |b, _| {
            b.iter(|| black_box(indexed.lookup(black_box(&v), 64, SimTime::ZERO)))
        });
        let miss = view(9999);
        g.bench_with_input(BenchmarkId::new("indexed_miss", n), &n, |b, _| {
            b.iter(|| black_box(indexed.lookup(black_box(&miss), 64, SimTime::ZERO)))
        });
    }
    g.finish();
}

fn bench_microflow(c: &mut Criterion) {
    use openflow::messages::FlowModCommand;
    use ovs::{Switch, SwitchConfig};
    let mut g = c.benchmark_group("microflow_warm");
    g.sample_size(10);
    for n in [1024usize, 100_000] {
        let mut sw = Switch::new(SwitchConfig {
            datapath_id: 1,
            n_buffers: 64,
            miss_send_len: 128,
            ports: vec![1, 2],
        });
        for e in flow_entries(n) {
            let fm = Message::FlowMod {
                cookie: e.cookie,
                table_id: 0,
                command: FlowModCommand::Add,
                idle_timeout: 600,
                hard_timeout: 0,
                priority: e.priority,
                buffer_id: openflow::OFP_NO_BUFFER,
                flags: 0,
                match_: e.match_,
                instructions: e.instructions,
            };
            sw.handle_controller(SimTime::ZERO, &fm.encode(1)).unwrap();
        }
        let i = n / 2;
        let frame = TcpFrame::syn(
            MacAddr::from_id(1),
            MacAddr::from_id(100),
            Ipv4Addr([192, 168, (i >> 8) as u8, i as u8]),
            50000 + (i % 1000) as u16,
            ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80),
        )
        .encode();
        g.bench_with_input(BenchmarkId::new("switch_repeat_packet", n), &n, |b, _| {
            b.iter(|| black_box(sw.handle_frame(SimTime::ZERO, 1, black_box(&frame))))
        });
    }
    g.finish();
}

fn bench_codecs(c: &mut Criterion) {
    let frame = {
        let mut f = TcpFrame::syn(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Ipv4Addr::new(192, 168, 1, 20),
            50000,
            ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80),
        );
        f.payload = vec![0x47; 512];
        f
    };
    let bytes = frame.encode();
    c.bench_function("frame_encode_512B", |b| b.iter(|| black_box(frame.encode())));
    c.bench_function("frame_decode_512B", |b| {
        b.iter(|| black_box(TcpFrame::decode(black_box(&bytes)).unwrap()))
    });

    let fm = Message::FlowMod {
        cookie: 1,
        table_id: 0,
        command: openflow::messages::FlowModCommand::Add,
        idle_timeout: 10,
        hard_timeout: 0,
        priority: 100,
        buffer_id: openflow::OFP_NO_BUFFER,
        flags: 0,
        match_: Match::connection([192, 168, 1, 20], 50000, [203, 0, 113, 10], 80),
        instructions: vec![Instruction::ApplyActions(vec![
            Action::SetField(openflow::oxm::OxmField::Ipv4Dst([10, 0, 0, 5])),
            Action::SetField(openflow::oxm::OxmField::TcpDst(31000)),
            Action::output(2),
        ])],
    };
    let fm_bytes = fm.encode(1);
    c.bench_function("flowmod_encode", |b| b.iter(|| black_box(fm.encode(1))));
    c.bench_function("flowmod_decode", |b| {
        b.iter(|| black_box(Message::decode(black_box(&fm_bytes)).unwrap()))
    });
}

fn bench_expiry(c: &mut Criterion) {
    c.bench_function("flowtable_expire_1024", |b| {
        b.iter_with_setup(
            || table_with(1024),
            |mut t| {
                black_box(t.expire(SimTime::from_secs(700)));
                t
            },
        )
    });
    // Sweep with nothing due: the timer wheel makes this O(slots crossed),
    // not O(entries) — the common case in the event loop.
    c.bench_function("flowtable_expire_idle_sweep_100k", |b| {
        let mut t = table_with(100_000);
        b.iter(|| black_box(t.expire(SimTime::from_secs(1))))
    });
}

criterion_group!(
    benches,
    bench_flow_lookup,
    bench_microflow,
    bench_codecs,
    bench_expiry
);

fn main() {
    benches();
    Criterion::default().configure_from_args().final_summary();
    // Emit the machine-readable summary for the perf trajectory.
    let report = bench::fastpath::run();
    let path = bench::fastpath::default_output_path();
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
    print!("{}", report.render());
}
