//! Deployment-engine benchmarks: the simulator-side cost of running the
//! paper's deployment phases (Pull / Create / Scale Up) on both cluster
//! types, and of the pull planner.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use desim::{Duration, SimRng, SimTime};
use edgectl::{annotate_deployment, DockerCluster, EdgeCluster, EdgeService, K8sEdgeCluster};
use dockersim::DockerEngine;
use k8ssim::K8sCluster;
use netsim::addr::{Ipv4Addr, MacAddr};
use netsim::ServiceAddr;
use registry::{LayerCache, PullPlanner, RegistryProfile};

fn make_service(key: &str) -> EdgeService {
    let profile = containerd::ServiceSet::by_key(key).unwrap();
    let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), profile.listen_port);
    let yaml = format!(
        "spec:\n  template:\n    spec:\n      containers:\n        - name: main\n          image: {}\n          ports:\n            - containerPort: {}\n",
        profile.manifests[0].reference, profile.listen_port
    );
    let annotated = annotate_deployment(&yaml, addr, None).unwrap();
    EdgeService {
        addr,
        name: annotated.service_name.clone(),
        annotated,
        profile,
    }
}

fn bench_docker_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("docker_full_cycle");
    for key in ["asm", "nginx", "resnet", "nginx-py"] {
        let svc = make_service(key);
        g.bench_with_input(BenchmarkId::from_parameter(key), key, |b, _| {
            b.iter(|| {
                let mut rng = SimRng::new(1);
                let mut cl = DockerCluster::new(
                    "edge",
                    DockerEngine::with_defaults(),
                    MacAddr::from_id(1),
                    Ipv4Addr::new(10, 0, 0, 10),
                    Duration::from_micros(50),
                );
                let t = cl.pull(&svc, SimTime::ZERO, &mut rng).expect("no fault injection");
                let t = cl.create(&svc, t, &mut rng).expect("no fault injection");
                black_box(cl.scale_up(&svc, t, &mut rng).expect("no fault injection"))
            })
        });
    }
    g.finish();
}

fn bench_k8s_cycle(c: &mut Criterion) {
    let svc = make_service("nginx");
    c.bench_function("k8s_full_cycle_nginx", |b| {
        b.iter(|| {
            let mut rng = SimRng::new(1);
            let mut cl = K8sEdgeCluster::new(
                "edge-k8s",
                K8sCluster::with_defaults(),
                MacAddr::from_id(1),
                Duration::from_micros(50),
                None,
            );
            let t = cl.pull(&svc, SimTime::ZERO, &mut rng).expect("no fault injection");
            let t = cl.create(&svc, t, &mut rng).expect("no fault injection");
            black_box(cl.scale_up(&svc, t, &mut rng).expect("no fault injection"))
        })
    });
}

fn bench_pull_planner(c: &mut Criterion) {
    let profile = RegistryProfile::docker_hub();
    let manifest = registry::image::catalog::resnet();
    c.bench_function("pull_plan_resnet_cold", |b| {
        b.iter(|| {
            let planner = PullPlanner::new(&profile);
            let mut cache = LayerCache::new();
            let mut rng = SimRng::new(1);
            black_box(planner.pull(&manifest, &mut cache, &mut rng))
        })
    });
}

criterion_group!(benches, bench_docker_cycle, bench_k8s_cycle, bench_pull_planner);
criterion_main!(benches);
