//! Figure-regeneration benchmarks: how long does reproducing each evaluation
//! experiment take end to end? (The `repro` binary prints the results; these
//! benches keep the regeneration fast and regression-free.)

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use testbed::experiments;
use testbed::ClusterKind;

fn bench_trace_replays(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure_trace_replay");
    g.sample_size(10);
    for kind in [ClusterKind::Docker, ClusterKind::K8s] {
        for key in ["asm", "nginx"] {
            let profile = containerd::ServiceSet::by_key(key).unwrap();
            g.bench_with_input(
                BenchmarkId::new(kind.label(), key),
                &profile,
                |b, profile| {
                    b.iter(|| {
                        black_box(experiments::run_trace_experiment(kind, profile, true, 7))
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_static_figures(c: &mut Criterion) {
    c.bench_function("fig9_trace_stats", |b| {
        b.iter(|| black_box(experiments::fig9(7)))
    });
    c.bench_function("fig13_pull_times", |b| {
        b.iter(|| black_box(experiments::fig13(8)))
    });
}

criterion_group!(benches, bench_trace_replays, bench_static_figures);
criterion_main!(benches);
