//! Controller hot-path benchmarks: what does one packet-in cost the
//! transparent-edge controller, end to end over real OpenFlow bytes?

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use desim::{Duration, SimRng, SimTime};
use edgectl::{
    annotate_deployment, Controller, ControllerConfig, DockerCluster, EdgeService, PortMap,
    ProximityScheduler,
};
use dockersim::DockerEngine;
use netsim::addr::{Ipv4Addr, MacAddr};
use netsim::{ServiceAddr, TcpFrame};
use ovs::{Effect, Switch, SwitchConfig};
use std::collections::HashMap;

fn make_service(key: &str, addr: ServiceAddr) -> EdgeService {
    let profile = containerd::ServiceSet::by_key(key).unwrap();
    let yaml = format!(
        "spec:\n  template:\n    spec:\n      containers:\n        - name: main\n          image: {}\n          ports:\n            - containerPort: {}\n",
        profile.manifests[0].reference, profile.listen_port
    );
    let annotated = annotate_deployment(&yaml, addr, None).unwrap();
    EdgeService {
        addr,
        name: annotated.service_name.clone(),
        annotated,
        profile,
    }
}

fn warm_setup() -> (Controller, Switch, Vec<u8>, SimRng) {
    let mut rng = SimRng::new(42);
    let mut engine = DockerEngine::with_defaults();
    engine.pull(
        &containerd::ServiceSet::by_key("asm").unwrap().manifests,
        &mut rng,
    );
    let cluster = DockerCluster::new(
        "edge",
        engine,
        MacAddr::from_id(200),
        Ipv4Addr::new(10, 0, 0, 10),
        Duration::from_micros(50),
    );
    let mut ctl = Controller::new(
        Box::<ProximityScheduler>::default(),
        PortMap {
            cluster_ports: HashMap::new(),
            cloud_port: 3,
        },
        ControllerConfig::default(),
    );
    ctl.add_cluster(Box::new(cluster), 2);
    let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80);
    ctl.register_service(make_service("asm", addr));
    let mut sw = Switch::new(SwitchConfig {
        datapath_id: 1,
        n_buffers: 1024,
        miss_send_len: 0xffff,
        ports: vec![1, 2, 3],
    });
    // Prime: first request deploys the service and fills the FlowMemory.
    let syn = TcpFrame::syn(
        MacAddr::from_id(1),
        MacAddr::from_id(99),
        Ipv4Addr::new(192, 168, 1, 20),
        50000,
        addr,
    );
    let effects = sw.handle_frame(SimTime::from_secs(1), 1, &syn.encode());
    let Effect::ToController(pkt_in) = &effects[0] else {
        panic!("expected packet-in");
    };
    let out = ctl
        .handle_switch_message(SimTime::from_secs(1), pkt_in, &mut rng)
        .unwrap();
    for m in &out {
        sw.handle_controller(m.at, &m.data).unwrap();
    }
    // A fresh connection's packet-in (memory-hit path when replayed).
    let syn2 = TcpFrame::syn(
        MacAddr::from_id(1),
        MacAddr::from_id(99),
        Ipv4Addr::new(192, 168, 1, 20),
        50001,
        addr,
    );
    let effects = sw.handle_frame(SimTime::from_secs(20), 1, &syn2.encode());
    let Effect::ToController(pkt_in2) = &effects[0] else {
        panic!("expected packet-in");
    };
    (ctl, sw, pkt_in2.clone(), rng)
}

fn bench_packet_in_memory_hit(c: &mut Criterion) {
    let (mut ctl, _sw, pkt_in, mut rng) = warm_setup();
    c.bench_function("controller_packet_in_memory_hit", |b| {
        b.iter(|| {
            let out = ctl
                .handle_switch_message(SimTime::from_secs(21), black_box(&pkt_in), &mut rng)
                .unwrap();
            black_box(out)
        })
    });
}

fn bench_switch_fast_path(c: &mut Criterion) {
    let (mut ctl, mut sw, pkt_in, mut rng) = warm_setup();
    // Install flows for the benchmark connection.
    let out = ctl
        .handle_switch_message(SimTime::from_secs(21), &pkt_in, &mut rng)
        .unwrap();
    for m in &out {
        sw.handle_controller(m.at, &m.data).unwrap();
    }
    let mut data = TcpFrame::syn(
        MacAddr::from_id(1),
        MacAddr::from_id(99),
        Ipv4Addr::new(192, 168, 1, 20),
        50001,
        ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80),
    );
    data.flags = netsim::TcpFlags::PSH_ACK;
    data.payload = b"GET / HTTP/1.1\r\n\r\n".to_vec();
    let bytes = data.encode();
    c.bench_function("switch_fast_path_rewrite", |b| {
        b.iter(|| black_box(sw.handle_frame(SimTime::from_secs(25), 1, black_box(&bytes))))
    });
}

fn bench_annotation(c: &mut Criterion) {
    let yaml = "
spec:
  template:
    spec:
      containers:
        - name: web
          image: nginx:1.23.2
          ports:
            - containerPort: 80
          volumeMounts:
            - name: content
              mountPath: /usr/share/nginx/html
      volumes:
        - name: content
          hostPath:
            path: /srv/edge/content
";
    let addr = ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80);
    c.bench_function("annotate_service_definition", |b| {
        b.iter(|| black_box(annotate_deployment(black_box(yaml), addr, Some("edge-pack-scheduler")).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_packet_in_memory_hit,
    bench_switch_fast_path,
    bench_annotation
);
criterion_main!(benches);
