//! With the autoscaler at its defaults — disabled, one replica per service —
//! the load tracker is never consulted, so every committed experiment
//! artifact stays byte-identical to its pre-autoscaling output. These tests
//! pin that: run each experiment twice and require identical bytes, and pin
//! the defaults themselves so a future default-flip fails loudly here rather
//! than silently perturbing the committed figures.

use edgectl::AutoscaleConfig;

#[test]
fn autoscaling_is_off_by_default() {
    let d = AutoscaleConfig::default();
    assert!(!d.enabled, "autoscaling must stay opt-in");
    assert_eq!(d.min_replicas, 1, "defaults are replicas=1");
    // A default-constructed controller carries the same disabled config.
    let cc = edgectl::ControllerConfig::default();
    assert!(!cc.autoscale.enabled);
}

#[test]
fn migration_is_off_by_default() {
    let d = edgectl::MigrationConfig::default();
    assert!(!d.live(), "live migration must stay opt-in");
    assert_eq!(
        d.state_bytes_per_request, 0,
        "defaults keep the session ledger untouched"
    );
    // A default-constructed controller carries the same inert config, so
    // with no `migration:` block the committed figures stay byte-identical:
    // no ledger entry is ever created, no trigger fires, no tick schedules.
    let cc = edgectl::ControllerConfig::default();
    assert!(!cc.migration.live());
    assert_eq!(cc.migration.state_bytes_per_request, 0);
}

#[test]
fn journal_is_off_by_default() {
    let d = edgectl::JournalConfig::default();
    assert!(!d.enabled, "the write-ahead journal must stay opt-in");
    // A default-constructed controller carries the same disabled config:
    // with no `journal:` block nothing is appended, no snapshot is cut, no
    // crash can be scheduled (FaultPlan::runtime() leaves controller_crash
    // at 0), so every committed figure stays byte-identical.
    let cc = edgectl::ControllerConfig::default();
    assert!(!cc.journal.enabled);
    assert_eq!(
        desim::FaultPlan::runtime(0.1, 1).controller_crash,
        0.0,
        "runtime chaos presets must not start crashing the controller"
    );
}

#[test]
fn fig13_is_byte_identical_across_runs() {
    let a = testbed::experiments::fig13(8);
    let b = testbed::experiments::fig13(8);
    assert_eq!(a.body, b.body);
    assert_eq!(a.table.to_csv(), b.table.to_csv());
}

#[test]
fn mobility_figure_is_byte_identical_across_runs() {
    let a = bench::mobility_figure(7, true);
    let b = bench::mobility_figure(7, true);
    assert_eq!(a.body, b.body);
    assert_eq!(a.table.to_csv(), b.table.to_csv());
}

#[test]
fn recovery_figure_at_rate_zero_is_byte_identical_across_runs() {
    // Fault rate 0: the pure control path, no chaos — exactly the regime
    // the committed baseline artifacts were generated in.
    let a = bench::recovery_figure(7, 0.0, true);
    let b = bench::recovery_figure(7, 0.0, true);
    assert_eq!(a.body, b.body);
    assert_eq!(a.table.to_csv(), b.table.to_csv());
}
