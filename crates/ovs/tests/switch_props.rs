//! Property tests for the switch: the pipeline must be total (never panic)
//! on arbitrary inputs, buffers must never leak, and rewrites must be exact.

use desim::SimTime;
use netsim::addr::{Ipv4Addr, MacAddr};
use netsim::{TcpFlags, TcpFrame};
use openflow::actions::{Action, Instruction};
use openflow::messages::{FlowModCommand, Message};
use openflow::oxm::{Match, OxmField};
use openflow::OFP_NO_BUFFER;
use ovs::{Effect, Switch, SwitchConfig};
use proptest::prelude::*;

fn sw(n_buffers: u32) -> Switch {
    Switch::new(SwitchConfig {
        datapath_id: 1,
        n_buffers,
        miss_send_len: 128,
        ports: vec![1, 2, 3],
    })
}

fn arb_frame() -> impl Strategy<Value = TcpFrame> {
    (
        any::<[u8; 4]>(),
        any::<[u8; 4]>(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
        prop::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(src, dst, sp, dp, flags, payload)| TcpFrame {
            src_mac: MacAddr::from_id(1),
            dst_mac: MacAddr::from_id(2),
            src_ip: Ipv4Addr(src),
            dst_ip: Ipv4Addr(dst),
            src_port: sp,
            dst_port: dp,
            flags: TcpFlags(flags),
            seq: 0,
            ack: 0,
            payload,
        })
}

proptest! {
    /// Arbitrary bytes on the data plane and the control channel never panic
    /// the switch.
    #[test]
    fn pipeline_is_total(data in prop::collection::vec(any::<u8>(), 0..200),
                         ctrl in prop::collection::vec(any::<u8>(), 0..200),
                         port in 0u32..8) {
        let mut s = sw(8);
        let _ = s.handle_frame(SimTime::ZERO, port, &data);
        let _ = s.handle_controller(SimTime::ZERO, &ctrl);
    }

    /// A table-miss buffers the frame; releasing it via FLOW_MOD(buffer_id)
    /// always reproduces the frame bit-exactly after the installed rewrites.
    #[test]
    fn buffered_release_rewrites_exactly(frame in arb_frame(),
                                         new_dst in any::<[u8; 4]>(),
                                         new_port in any::<u16>()) {
        let mut s = sw(8);
        let effects = s.handle_frame(SimTime::ZERO, 1, &frame.encode());
        let Effect::ToController(pkt_in) = &effects[0] else {
            return Err(TestCaseError::fail("no packet-in"));
        };
        let (_, msg, _) = Message::decode(pkt_in).unwrap();
        let Message::PacketIn { buffer_id, .. } = msg else {
            return Err(TestCaseError::fail("wrong message"));
        };
        prop_assume!(buffer_id != OFP_NO_BUFFER);

        let fm = Message::FlowMod {
            cookie: 0,
            table_id: 0,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 10,
            buffer_id,
            flags: 0,
            match_: Match::connection(
                frame.src_ip.octets(),
                frame.src_port,
                frame.dst_ip.octets(),
                frame.dst_port,
            ),
            instructions: vec![Instruction::ApplyActions(vec![
                Action::SetField(OxmField::Ipv4Dst(new_dst)),
                Action::SetField(OxmField::TcpDst(new_port)),
                Action::output(2),
            ])],
        };
        let effects = s.handle_controller(SimTime::ZERO, &fm.encode(1)).unwrap();
        let forwarded = effects.iter().find_map(|e| match e {
            Effect::Forward { port: 2, data } => Some(data.clone()),
            _ => None,
        });
        let data = forwarded.expect("buffered frame released");
        let out = TcpFrame::decode(&data).unwrap();
        // Rewritten fields changed; everything else identical.
        prop_assert_eq!(out.dst_ip, Ipv4Addr(new_dst));
        prop_assert_eq!(out.dst_port, new_port);
        prop_assert_eq!(out.src_ip, frame.src_ip);
        prop_assert_eq!(out.src_port, frame.src_port);
        prop_assert_eq!(out.payload, frame.payload);
        prop_assert_eq!(s.buffered(), 0, "buffer slot released");
    }

    /// Buffer occupancy never exceeds the configured capacity, whatever the
    /// traffic pattern, and every buffered packet is eventually releasable.
    #[test]
    fn buffers_never_leak(frames in prop::collection::vec(arb_frame(), 1..20)) {
        let cap = 4u32;
        let mut s = sw(cap);
        let mut buffer_ids = Vec::new();
        for f in &frames {
            for e in s.handle_frame(SimTime::ZERO, 1, &f.encode()) {
                if let Effect::ToController(bytes) = e {
                    if let Ok((_, Message::PacketIn { buffer_id, .. }, _)) = Message::decode(&bytes) {
                        if buffer_id != OFP_NO_BUFFER {
                            buffer_ids.push(buffer_id);
                        }
                    }
                }
            }
            prop_assert!(s.buffered() <= cap as usize);
        }
        // Drain everything via packet-out.
        for id in buffer_ids {
            let po = Message::PacketOut {
                buffer_id: id,
                in_port: 1,
                actions: vec![Action::output(2)],
                data: vec![],
            };
            s.handle_controller(SimTime::ZERO, &po.encode(9)).unwrap();
        }
        prop_assert_eq!(s.buffered(), 0);
    }

    /// Fast-path counters: every handled decodable frame is either a miss
    /// (packet-in) or a fast-path hit, never both, and the counters add up.
    #[test]
    fn counters_are_consistent(frames in prop::collection::vec(arb_frame(), 1..30)) {
        let mut s = sw(64);
        // Install one broad rule matching half the traffic (dst port < 0x8000).
        let fm = Message::FlowMod {
            cookie: 0,
            table_id: 0,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 1,
            buffer_id: OFP_NO_BUFFER,
            flags: 0,
            match_: Match::any().with(OxmField::EthType(0x0800)),
            instructions: vec![Instruction::ApplyActions(vec![Action::output(3)])],
        };
        s.handle_controller(SimTime::ZERO, &fm.encode(1)).unwrap();
        let n = frames.len() as u64;
        for f in &frames {
            s.handle_frame(SimTime::ZERO, 1, &f.encode());
        }
        prop_assert_eq!(s.fast_path_packets + s.table_misses, n);
        prop_assert_eq!(s.table_misses, 0, "the wildcard rule matches everything");
    }
}
