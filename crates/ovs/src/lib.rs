//! `ovs` — a virtual OpenFlow switch (the simulated Open vSwitch instance).
//!
//! The paper's testbed runs a virtual OVS switch on the Edge Gateway Server;
//! every client request enters the edge through it. This crate implements the
//! switch as a pure state machine:
//!
//! * frames arrive via [`Switch::handle_frame`] and either hit an installed
//!   flow (actions applied in the data plane, *without* controller
//!   involvement — the fast path the paper relies on for subsequent requests)
//!   or miss and are buffered + sent to the controller as `PACKET_IN`;
//! * controller messages arrive via [`Switch::handle_controller`] — flow
//!   installation (`FLOW_MOD`, including running a buffered packet through
//!   the new rule), packet injection (`PACKET_OUT`), session and liveness
//!   messages;
//! * [`Switch::expire_flows`] retires idle/hard-timed-out flows and produces
//!   the `FLOW_REMOVED` notifications that drive the controller's FlowMemory
//!   and idle scale-down.
//!
//! All control-channel traffic crosses this API as *encoded OpenFlow bytes*,
//! so the `openflow` codecs are exercised end-to-end on every exchange.
//!
//! ```
//! use desim::SimTime;
//! use netsim::{TcpFrame, MacAddr, Ipv4Addr, ServiceAddr};
//! use ovs::{Effect, Switch, SwitchConfig};
//!
//! let mut sw = Switch::new(SwitchConfig { ports: vec![1, 2], ..Default::default() });
//! let syn = TcpFrame::syn(
//!     MacAddr::from_id(1), MacAddr::from_id(2),
//!     Ipv4Addr::new(192, 168, 1, 20), 50000,
//!     ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80),
//! );
//! // No flows installed: a table miss buffers the frame and produces a
//! // PACKET_IN for the controller.
//! let effects = sw.handle_frame(SimTime::ZERO, 1, &syn.encode());
//! assert!(matches!(effects[0], Effect::ToController(_)));
//! assert_eq!(sw.buffered(), 1);
//! ```

#![warn(missing_docs)]

pub mod switch;

pub use switch::{Effect, Switch, SwitchConfig};
