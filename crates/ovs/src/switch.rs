//! The switch state machine.

use desim::{Duration, SimTime};
use netsim::TcpFrame;
use openflow::actions::Action;
use openflow::messages::{FlowModCommand, Message, PacketInReason};
use openflow::oxm::{Match, MatchView, OxmField};
use openflow::table::{entry, FlowId, FlowTable, Removed};
use openflow::{OfError, OFPP_CONTROLLER, OFPP_FLOOD, OFP_NO_BUFFER};
use std::collections::HashMap;

/// Microflow cache capacity; the cache is cleared wholesale when full (the
/// OVS approach — entries are cheap to re-establish from the flow table).
const MICROFLOW_CAP: usize = 65_536;

/// Switch configuration.
#[derive(Clone, Debug)]
pub struct SwitchConfig {
    /// Datapath id reported in `FEATURES_REPLY`.
    pub datapath_id: u64,
    /// Number of packet-in buffer slots.
    pub n_buffers: u32,
    /// Bytes of the frame included in a buffered `PACKET_IN`.
    pub miss_send_len: u16,
    /// Ports attached to this switch (for FLOOD).
    pub ports: Vec<u32>,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            datapath_id: 1,
            n_buffers: 256,
            miss_send_len: 128,
            ports: Vec::new(),
        }
    }
}

/// An externally visible consequence of switch processing.
#[derive(Clone, Debug, PartialEq)]
pub enum Effect {
    /// Emit `data` out of `port`.
    Forward {
        /// Egress port.
        port: u32,
        /// Frame bytes.
        data: Vec<u8>,
    },
    /// Send an encoded OpenFlow message up the control channel.
    ToController(Vec<u8>),
    /// The frame was dropped (no matching flow action produced output).
    Drop,
}

/// The virtual OpenFlow switch.
///
/// Packet classification is two-tier, mirroring Open vSwitch: an exact-match
/// **microflow cache** keyed on the full [`MatchView`] resolves repeat
/// packets of an established connection in one hash probe, falling back to
/// the indexed flow table on a miss. Cache entries carry the table's
/// revision counter; any flow-mod or expiry bumps it, so stale entries
/// self-invalidate without a scan. Per-flow counters and idle timers stay
/// exact: a cache hit is accounted through [`FlowTable::hit`].
pub struct Switch {
    config: SwitchConfig,
    table: FlowTable,
    buffers: HashMap<u32, (u32, Vec<u8>)>, // buffer_id -> (in_port, frame)
    /// Exact-match fast path: packet view -> (table revision, flow id).
    microflow: HashMap<MatchView, (u64, FlowId)>,
    next_buffer: u32,
    next_xid: u32,
    /// Count of packets handled on the fast path (no controller).
    pub fast_path_packets: u64,
    /// Count of table misses sent to the controller.
    pub table_misses: u64,
    /// Packets classified by the microflow cache alone.
    pub microflow_hits: u64,
    /// Packets that had to consult the flow table (includes table misses).
    pub microflow_misses: u64,
}

impl Switch {
    /// Creates a switch with the given configuration.
    pub fn new(config: SwitchConfig) -> Switch {
        Switch {
            config,
            table: FlowTable::new(),
            buffers: HashMap::new(),
            microflow: HashMap::new(),
            next_buffer: 1,
            next_xid: 1,
            fast_path_packets: 0,
            table_misses: 0,
            microflow_hits: 0,
            microflow_misses: 0,
        }
    }

    /// Read access to the flow table (stats & tests).
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// Number of frames currently parked in packet buffers.
    pub fn buffered(&self) -> usize {
        self.buffers.len()
    }

    /// Number of (possibly stale) entries in the microflow cache.
    pub fn microflow_len(&self) -> usize {
        self.microflow.len()
    }

    fn fresh_xid(&mut self) -> u32 {
        let x = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);
        x
    }

    /// Processes a frame arriving on `in_port`.
    pub fn handle_frame(&mut self, now: SimTime, in_port: u32, data: &[u8]) -> Vec<Effect> {
        let Ok(frame) = TcpFrame::decode(data) else {
            // Non-TCP/IPv4 traffic is out of scope for the edge pipeline.
            return vec![Effect::Drop];
        };
        let view = view_of(&frame, in_port);
        let revision = self.table.revision();
        if let Some(&(cached_rev, id)) = self.microflow.get(&view) {
            if cached_rev == revision {
                // Warm path: one hash probe, then account the hit against
                // the table entry so counters and the idle timer stay exact.
                let (_cookie, instructions) = self
                    .table
                    .hit(id, data.len(), now)
                    .expect("microflow id live at unchanged revision");
                self.microflow_hits += 1;
                self.fast_path_packets += 1;
                let actions: Vec<Action> = instructions
                    .iter()
                    .flat_map(|i| i.actions().iter().copied())
                    .collect();
                return self.apply_actions(now, frame, in_port, &actions);
            }
            self.microflow.remove(&view); // table changed under the entry
        }
        self.microflow_misses += 1;
        match self.table.lookup_keyed(&view, data.len(), now) {
            Some((id, _cookie, instructions)) => {
                self.fast_path_packets += 1;
                if self.microflow.len() >= MICROFLOW_CAP {
                    self.microflow.clear();
                }
                self.microflow.insert(view, (revision, id));
                let actions: Vec<Action> = instructions
                    .iter()
                    .flat_map(|i| i.actions().iter().copied())
                    .collect();
                self.apply_actions(now, frame, in_port, &actions)
            }
            None => {
                self.table_misses += 1;
                vec![self.packet_in(now, in_port, data, PacketInReason::NoMatch)]
            }
        }
    }

    fn packet_in(
        &mut self,
        _now: SimTime,
        in_port: u32,
        data: &[u8],
        reason: PacketInReason,
    ) -> Effect {
        let (buffer_id, included) = if (self.buffers.len() as u32) < self.config.n_buffers {
            let id = self.next_buffer;
            self.next_buffer = self.next_buffer.wrapping_add(1).max(1);
            self.buffers.insert(id, (in_port, data.to_vec()));
            let n = (self.config.miss_send_len as usize).min(data.len());
            (id, data[..n].to_vec())
        } else {
            // No buffer space: ship the whole frame.
            (OFP_NO_BUFFER, data.to_vec())
        };
        let msg = Message::PacketIn {
            buffer_id,
            total_len: data.len() as u16,
            reason,
            table_id: 0,
            cookie: 0,
            match_: Match::any().with(OxmField::InPort(in_port)),
            data: included,
        };
        let xid = self.fresh_xid();
        Effect::ToController(msg.encode(xid))
    }

    /// Applies an action list to a frame, producing forward effects.
    fn apply_actions(
        &mut self,
        now: SimTime,
        mut frame: TcpFrame,
        in_port: u32,
        actions: &[Action],
    ) -> Vec<Effect> {
        let mut effects = Vec::new();
        for action in actions {
            match action {
                Action::SetField(f) => apply_set_field(&mut frame, *f),
                Action::Output { port, max_len } => match *port {
                    OFPP_CONTROLLER => {
                        let data = frame.encode();
                        let n = (*max_len as usize).min(data.len());
                        let msg = Message::PacketIn {
                            buffer_id: OFP_NO_BUFFER,
                            total_len: data.len() as u16,
                            reason: PacketInReason::Action,
                            table_id: 0,
                            cookie: 0,
                            match_: Match::any().with(OxmField::InPort(in_port)),
                            data: data[..n].to_vec(),
                        };
                        let xid = self.fresh_xid();
                        effects.push(Effect::ToController(msg.encode(xid)));
                        let _ = now;
                    }
                    OFPP_FLOOD => {
                        for &p in &self.config.ports {
                            if p != in_port {
                                effects.push(Effect::Forward {
                                    port: p,
                                    data: frame.encode(),
                                });
                            }
                        }
                    }
                    p => effects.push(Effect::Forward {
                        port: p,
                        data: frame.encode(),
                    }),
                },
            }
        }
        if effects.is_empty() {
            effects.push(Effect::Drop);
        }
        effects
    }

    /// Processes an encoded OpenFlow message from the controller.
    ///
    /// Returns the effects (forwards triggered by `PACKET_OUT` / buffered
    /// `FLOW_MOD` packets, and control-channel replies).
    pub fn handle_controller(&mut self, now: SimTime, bytes: &[u8]) -> Result<Vec<Effect>, OfError> {
        let (xid, msg, _) = Message::decode(bytes)?;
        let mut effects = Vec::new();
        match msg {
            Message::Hello => {
                effects.push(Effect::ToController(Message::Hello.encode(xid)));
            }
            Message::EchoRequest(payload) => {
                effects.push(Effect::ToController(Message::EchoReply(payload).encode(xid)));
            }
            Message::FeaturesRequest => {
                effects.push(Effect::ToController(
                    Message::FeaturesReply {
                        datapath_id: self.config.datapath_id,
                        n_buffers: self.config.n_buffers,
                        n_tables: 1,
                    }
                    .encode(xid),
                ));
            }
            Message::BarrierRequest => {
                effects.push(Effect::ToController(Message::BarrierReply.encode(xid)));
            }
            Message::FlowMod {
                cookie,
                command,
                idle_timeout,
                hard_timeout,
                priority,
                buffer_id,
                flags,
                match_,
                instructions,
                ..
            } => match command {
                FlowModCommand::Add => {
                    self.table.add(
                        entry(
                            match_.clone(),
                            priority,
                            cookie,
                            instructions,
                            Duration::from_secs(idle_timeout as u64),
                            Duration::from_secs(hard_timeout as u64),
                            flags,
                        ),
                        now,
                    );
                    // Run the buffered packet through the (new) table state.
                    if buffer_id != OFP_NO_BUFFER {
                        if let Some((in_port, data)) = self.buffers.remove(&buffer_id) {
                            effects.extend(self.handle_frame(now, in_port, &data));
                        }
                    }
                }
                FlowModCommand::Modify => {
                    self.table.modify(&match_, &instructions);
                }
                FlowModCommand::Delete => {
                    for removed in self.table.delete(&match_, now) {
                        if let Some(e) = self.flow_removed_msg(&removed) {
                            effects.push(e);
                        }
                    }
                }
            },
            Message::PacketOut {
                buffer_id,
                in_port,
                actions,
                data,
            } => {
                let frame_bytes = if buffer_id != OFP_NO_BUFFER {
                    match self.buffers.remove(&buffer_id) {
                        Some((_, stored)) => stored,
                        None => return Ok(vec![Effect::Drop]), // stale buffer
                    }
                } else {
                    data
                };
                match TcpFrame::decode(&frame_bytes) {
                    Ok(frame) => {
                        effects.extend(self.apply_actions(now, frame, in_port, &actions));
                    }
                    Err(_) => effects.push(Effect::Drop),
                }
            }
            Message::FlowStatsRequest { table_id, match_ } => {
                use openflow::messages::FlowStatsEntry;
                let flows: Vec<FlowStatsEntry> = self
                    .table
                    .entries()
                    .filter(|_| table_id == 0xff || table_id == 0)
                    .filter(|e| match_.is_empty() || e.match_ == match_)
                    .map(|e| FlowStatsEntry {
                        table_id: 0,
                        duration_sec: ((now - e.installed_at).as_nanos() / 1_000_000_000) as u32,
                        priority: e.priority,
                        idle_timeout: openflow::timeout_secs(e.idle_timeout),
                        hard_timeout: openflow::timeout_secs(e.hard_timeout),
                        cookie: e.cookie,
                        packet_count: e.packet_count,
                        byte_count: e.byte_count,
                        match_: e.match_.clone(),
                    })
                    .collect();
                effects.push(Effect::ToController(
                    Message::FlowStatsReply { flows }.encode(xid),
                ));
            }
            // Symmetric/unsolicited messages a switch ignores.
            Message::EchoReply(_)
            | Message::FeaturesReply { .. }
            | Message::PacketIn { .. }
            | Message::FlowRemoved { .. }
            | Message::Error { .. }
            | Message::FlowStatsReply { .. }
            | Message::BarrierReply => {}
        }
        Ok(effects)
    }

    fn flow_removed_msg(&mut self, removed: &Removed) -> Option<Effect> {
        if !removed.entry.wants_removed_msg() {
            return None;
        }
        let d = removed.duration();
        let msg = Message::FlowRemoved {
            cookie: removed.entry.cookie,
            priority: removed.entry.priority,
            reason: removed.reason,
            table_id: 0,
            duration_sec: (d.as_nanos() / 1_000_000_000) as u32,
            duration_nsec: (d.as_nanos() % 1_000_000_000) as u32,
            idle_timeout: openflow::timeout_secs(removed.entry.idle_timeout),
            hard_timeout: openflow::timeout_secs(removed.entry.hard_timeout),
            packet_count: removed.entry.packet_count,
            byte_count: removed.entry.byte_count,
            match_: removed.entry.match_.clone(),
        };
        let xid = self.fresh_xid();
        Some(Effect::ToController(msg.encode(xid)))
    }

    /// Expires timed-out flows, producing `FLOW_REMOVED` notifications for
    /// entries that requested them.
    pub fn expire_flows(&mut self, now: SimTime) -> Vec<Effect> {
        let removed = self.table.expire(now);
        removed
            .iter()
            .filter_map(|r| self.flow_removed_msg(r))
            .collect()
    }

    /// Earliest possible flow expiry (for scheduling expiry sweeps).
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.table.next_expiry()
    }
}

/// Builds the match view of a decoded frame.
pub fn view_of(frame: &TcpFrame, in_port: u32) -> MatchView {
    MatchView {
        in_port,
        eth_dst: frame.dst_mac.octets(),
        eth_src: frame.src_mac.octets(),
        eth_type: 0x0800,
        ip_proto: 6,
        ipv4_src: frame.src_ip.octets(),
        ipv4_dst: frame.dst_ip.octets(),
        tcp_src: frame.src_port,
        tcp_dst: frame.dst_port,
    }
}

/// Applies a single `SET_FIELD` rewrite to a frame.
fn apply_set_field(frame: &mut TcpFrame, field: OxmField) {
    use netsim::addr::{Ipv4Addr, MacAddr};
    match field {
        OxmField::EthDst(m) => frame.dst_mac = MacAddr(m),
        OxmField::EthSrc(m) => frame.src_mac = MacAddr(m),
        OxmField::Ipv4Dst(a) => frame.dst_ip = Ipv4Addr(a),
        OxmField::Ipv4Src(a) => frame.src_ip = Ipv4Addr(a),
        OxmField::TcpDst(p) => frame.dst_port = p,
        OxmField::TcpSrc(p) => frame.src_port = p,
        // EthType / IpProto / InPort rewrites are not meaningful here.
        OxmField::EthType(_) | OxmField::IpProto(_) | OxmField::InPort(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::addr::{Ipv4Addr, MacAddr, ServiceAddr};
    use openflow::actions::Instruction;
    use openflow::messages::RemovedReason;
    use openflow::messages::OFPFF_SEND_FLOW_REM;

    fn client_frame() -> TcpFrame {
        TcpFrame::syn(
            MacAddr::from_id(1),
            MacAddr::from_id(100),
            Ipv4Addr::new(192, 168, 1, 20),
            50000,
            ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80),
        )
    }

    fn sw() -> Switch {
        Switch::new(SwitchConfig {
            datapath_id: 0xabc,
            n_buffers: 4,
            miss_send_len: 64,
            ports: vec![1, 2, 3],
        })
    }

    fn decode_controller(e: &Effect) -> Message {
        match e {
            Effect::ToController(bytes) => Message::decode(bytes).unwrap().1,
            other => panic!("expected ToController, got {other:?}"),
        }
    }

    #[test]
    fn miss_buffers_and_sends_packet_in() {
        let mut s = sw();
        let data = client_frame().encode();
        let effects = s.handle_frame(SimTime::ZERO, 1, &data);
        assert_eq!(effects.len(), 1);
        match decode_controller(&effects[0]) {
            Message::PacketIn {
                buffer_id,
                total_len,
                reason,
                data: included,
                match_,
                ..
            } => {
                assert_ne!(buffer_id, OFP_NO_BUFFER);
                assert_eq!(total_len as usize, data.len());
                assert_eq!(reason, PacketInReason::NoMatch);
                assert_eq!(included.len(), 54); // SYN frame is 54 B < miss_send_len
                assert_eq!(match_.fields(), &[OxmField::InPort(1)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.buffered(), 1);
        assert_eq!(s.table_misses, 1);
    }

    #[test]
    fn flow_mod_with_buffer_releases_packet() {
        let mut s = sw();
        let data = client_frame().encode();
        let effects = s.handle_frame(SimTime::ZERO, 1, &data);
        let buffer_id = match decode_controller(&effects[0]) {
            Message::PacketIn { buffer_id, .. } => buffer_id,
            other => panic!("unexpected {other:?}"),
        };
        // Install the transparent redirect: rewrite dst to the edge instance
        // and output on port 3, releasing the buffered packet.
        let fm = Message::FlowMod {
            cookie: 7,
            table_id: 0,
            command: FlowModCommand::Add,
            idle_timeout: 10,
            hard_timeout: 0,
            priority: 100,
            buffer_id,
            flags: 0,
            match_: Match::connection([192, 168, 1, 20], 50000, [203, 0, 113, 10], 80),
            instructions: vec![Instruction::ApplyActions(vec![
                Action::SetField(OxmField::EthDst(MacAddr::from_id(200).octets())),
                Action::SetField(OxmField::Ipv4Dst([10, 0, 0, 5])),
                Action::SetField(OxmField::TcpDst(31080)),
                Action::output(3),
            ])],
        };
        let effects = s.handle_controller(SimTime::ZERO, &fm.encode(1)).unwrap();
        assert_eq!(effects.len(), 1);
        match &effects[0] {
            Effect::Forward { port, data } => {
                assert_eq!(*port, 3);
                let f = TcpFrame::decode(data).unwrap();
                assert_eq!(f.dst_ip, Ipv4Addr::new(10, 0, 0, 5));
                assert_eq!(f.dst_port, 31080);
                assert_eq!(f.dst_mac, MacAddr::from_id(200));
                // Source untouched: the client address survives.
                assert_eq!(f.src_ip, Ipv4Addr::new(192, 168, 1, 20));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.buffered(), 0);
        // Subsequent identical packets take the fast path.
        let effects = s.handle_frame(SimTime::ZERO, 1, &data);
        assert!(matches!(effects[0], Effect::Forward { port: 3, .. }));
        assert_eq!(s.fast_path_packets, 2); // buffered replay + this one
        assert_eq!(s.table_misses, 1);
    }

    #[test]
    fn packet_out_inline_applies_actions() {
        let mut s = sw();
        let f = client_frame();
        let po = Message::PacketOut {
            buffer_id: OFP_NO_BUFFER,
            in_port: 1,
            actions: vec![Action::output(2)],
            data: f.encode(),
        };
        let effects = s.handle_controller(SimTime::ZERO, &po.encode(5)).unwrap();
        assert_eq!(
            effects,
            vec![Effect::Forward {
                port: 2,
                data: f.encode()
            }]
        );
    }

    #[test]
    fn packet_out_with_stale_buffer_drops() {
        let mut s = sw();
        let po = Message::PacketOut {
            buffer_id: 999,
            in_port: 1,
            actions: vec![Action::output(2)],
            data: vec![],
        };
        let effects = s.handle_controller(SimTime::ZERO, &po.encode(5)).unwrap();
        assert_eq!(effects, vec![Effect::Drop]);
    }

    #[test]
    fn hello_echo_features_barrier() {
        let mut s = sw();
        let effects = s
            .handle_controller(SimTime::ZERO, &Message::Hello.encode(1))
            .unwrap();
        assert!(matches!(decode_controller(&effects[0]), Message::Hello));
        let effects = s
            .handle_controller(SimTime::ZERO, &Message::EchoRequest(b"hi".to_vec()).encode(2))
            .unwrap();
        assert_eq!(
            decode_controller(&effects[0]),
            Message::EchoReply(b"hi".to_vec())
        );
        let effects = s
            .handle_controller(SimTime::ZERO, &Message::FeaturesRequest.encode(3))
            .unwrap();
        match decode_controller(&effects[0]) {
            Message::FeaturesReply { datapath_id, n_buffers, n_tables } => {
                assert_eq!(datapath_id, 0xabc);
                assert_eq!(n_buffers, 4);
                assert_eq!(n_tables, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        let effects = s
            .handle_controller(SimTime::ZERO, &Message::BarrierRequest.encode(4))
            .unwrap();
        assert!(matches!(decode_controller(&effects[0]), Message::BarrierReply));
    }

    #[test]
    fn flood_outputs_everywhere_but_ingress() {
        let mut s = sw();
        let fm = Message::FlowMod {
            cookie: 0,
            table_id: 0,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 1,
            buffer_id: OFP_NO_BUFFER,
            flags: 0,
            match_: Match::any(),
            instructions: vec![Instruction::ApplyActions(vec![Action::output(OFPP_FLOOD)])],
        };
        s.handle_controller(SimTime::ZERO, &fm.encode(1)).unwrap();
        let effects = s.handle_frame(SimTime::ZERO, 2, &client_frame().encode());
        let ports: Vec<u32> = effects
            .iter()
            .map(|e| match e {
                Effect::Forward { port, .. } => *port,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(ports, vec![1, 3]);
    }

    #[test]
    fn idle_expiry_emits_flow_removed() {
        let mut s = sw();
        let fm = Message::FlowMod {
            cookie: 42,
            table_id: 0,
            command: FlowModCommand::Add,
            idle_timeout: 10,
            hard_timeout: 0,
            priority: 50,
            buffer_id: OFP_NO_BUFFER,
            flags: OFPFF_SEND_FLOW_REM,
            match_: Match::service([203, 0, 113, 10], 80),
            instructions: vec![Instruction::ApplyActions(vec![Action::output(3)])],
        };
        s.handle_controller(SimTime::ZERO, &fm.encode(1)).unwrap();
        assert_eq!(s.next_expiry(), Some(SimTime::from_secs(10)));
        assert!(s.expire_flows(SimTime::from_secs(9)).is_empty());
        let effects = s.expire_flows(SimTime::from_secs(10));
        assert_eq!(effects.len(), 1);
        match decode_controller(&effects[0]) {
            Message::FlowRemoved {
                cookie,
                reason,
                duration_sec,
                ..
            } => {
                assert_eq!(cookie, 42);
                assert_eq!(reason, RemovedReason::IdleTimeout);
                assert_eq!(duration_sec, 10);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(s.table().is_empty());
    }

    #[test]
    fn delete_with_notify_flag_emits_flow_removed() {
        let mut s = sw();
        let m = Match::service([1, 2, 3, 4], 80);
        let add = Message::FlowMod {
            cookie: 9,
            table_id: 0,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 5,
            buffer_id: OFP_NO_BUFFER,
            flags: OFPFF_SEND_FLOW_REM,
            match_: m.clone(),
            instructions: vec![Instruction::ApplyActions(vec![Action::output(1)])],
        };
        s.handle_controller(SimTime::ZERO, &add.encode(1)).unwrap();
        let del = Message::FlowMod {
            cookie: 9,
            table_id: 0,
            command: FlowModCommand::Delete,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 0,
            buffer_id: OFP_NO_BUFFER,
            flags: 0,
            match_: m,
            instructions: vec![],
        };
        let effects = s.handle_controller(SimTime::from_secs(1), &del.encode(2)).unwrap();
        assert_eq!(effects.len(), 1);
        assert!(matches!(
            decode_controller(&effects[0]),
            Message::FlowRemoved {
                reason: RemovedReason::Delete,
                ..
            }
        ));
    }

    #[test]
    fn buffer_exhaustion_ships_full_frame() {
        let mut s = sw(); // 4 buffers
        let data = client_frame().encode();
        for i in 0..4 {
            let mut f = client_frame();
            f.src_port = 50000 + i as u16;
            s.handle_frame(SimTime::ZERO, 1, &f.encode());
        }
        assert_eq!(s.buffered(), 4);
        let effects = s.handle_frame(SimTime::ZERO, 1, &data);
        match decode_controller(&effects[0]) {
            Message::PacketIn {
                buffer_id, data: included, ..
            } => {
                assert_eq!(buffer_id, OFP_NO_BUFFER);
                assert_eq!(included.len(), data.len());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn output_to_controller_action() {
        let mut s = sw();
        let fm = Message::FlowMod {
            cookie: 0,
            table_id: 0,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 1,
            buffer_id: OFP_NO_BUFFER,
            flags: 0,
            match_: Match::any(),
            instructions: vec![Instruction::ApplyActions(vec![Action::output(
                OFPP_CONTROLLER,
            )])],
        };
        s.handle_controller(SimTime::ZERO, &fm.encode(1)).unwrap();
        let effects = s.handle_frame(SimTime::ZERO, 1, &client_frame().encode());
        assert!(matches!(
            decode_controller(&effects[0]),
            Message::PacketIn {
                reason: PacketInReason::Action,
                ..
            }
        ));
    }

    #[test]
    fn garbage_frames_drop_and_garbage_control_errors() {
        let mut s = sw();
        assert_eq!(s.handle_frame(SimTime::ZERO, 1, &[0xff; 30]), vec![Effect::Drop]);
        assert!(s.handle_controller(SimTime::ZERO, &[0u8; 3]).is_err());
    }

    #[test]
    fn flow_stats_report_counters() {
        let mut s = sw();
        let m = Match::service([203, 0, 113, 10], 80);
        let fm = Message::FlowMod {
            cookie: 42,
            table_id: 0,
            command: FlowModCommand::Add,
            idle_timeout: 10,
            hard_timeout: 0,
            priority: 100,
            buffer_id: OFP_NO_BUFFER,
            flags: 0,
            match_: m.clone(),
            instructions: vec![Instruction::ApplyActions(vec![Action::output(3)])],
        };
        s.handle_controller(SimTime::ZERO, &fm.encode(1)).unwrap();
        let data = client_frame().encode();
        s.handle_frame(SimTime::from_secs(2), 1, &data);
        let req = Message::FlowStatsRequest {
            table_id: 0xff,
            match_: Match::any(),
        };
        let effects = s
            .handle_controller(SimTime::from_secs(5), &req.encode(2))
            .unwrap();
        match decode_controller(&effects[0]) {
            Message::FlowStatsReply { flows } => {
                assert_eq!(flows.len(), 1);
                assert_eq!(flows[0].cookie, 42);
                assert_eq!(flows[0].packet_count, 1);
                assert_eq!(flows[0].byte_count, data.len() as u64);
                assert_eq!(flows[0].duration_sec, 5);
                assert_eq!(flows[0].match_, m);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Filtered query for a non-matching service: empty reply.
        let req = Message::FlowStatsRequest {
            table_id: 0xff,
            match_: Match::service([1, 2, 3, 4], 9),
        };
        let effects = s
            .handle_controller(SimTime::from_secs(5), &req.encode(3))
            .unwrap();
        assert!(matches!(
            decode_controller(&effects[0]),
            Message::FlowStatsReply { flows } if flows.is_empty()
        ));
    }

    #[test]
    fn microflow_cache_hits_keep_exact_counters() {
        let mut s = sw();
        let fm = Message::FlowMod {
            cookie: 42,
            table_id: 0,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 100,
            buffer_id: OFP_NO_BUFFER,
            flags: 0,
            match_: Match::service([203, 0, 113, 10], 80),
            instructions: vec![Instruction::ApplyActions(vec![Action::output(3)])],
        };
        s.handle_controller(SimTime::ZERO, &fm.encode(1)).unwrap();
        let data = client_frame().encode();
        for i in 0..5 {
            let effects = s.handle_frame(SimTime::from_secs(i), 1, &data);
            assert!(matches!(effects[0], Effect::Forward { port: 3, .. }));
        }
        assert_eq!(s.microflow_misses, 1, "first packet consults the table");
        assert_eq!(s.microflow_hits, 4, "repeats come from the cache");
        assert_eq!(s.microflow_len(), 1);
        // Per-flow counters are exact despite the cached path.
        let req = Message::FlowStatsRequest { table_id: 0xff, match_: Match::any() };
        let effects = s.handle_controller(SimTime::from_secs(5), &req.encode(2)).unwrap();
        match decode_controller(&effects[0]) {
            Message::FlowStatsReply { flows } => {
                assert_eq!(flows[0].packet_count, 5);
                assert_eq!(flows[0].byte_count, 5 * data.len() as u64);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn microflow_cache_invalidates_on_flow_mod() {
        let mut s = sw();
        let m = Match::service([203, 0, 113, 10], 80);
        let add = |instr: Vec<Instruction>, cmd| Message::FlowMod {
            cookie: 1,
            table_id: 0,
            command: cmd,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 100,
            buffer_id: OFP_NO_BUFFER,
            flags: 0,
            match_: m.clone(),
            instructions: instr,
        };
        let out = |p| vec![Instruction::ApplyActions(vec![Action::output(p)])];
        s.handle_controller(SimTime::ZERO, &add(out(3), FlowModCommand::Add).encode(1))
            .unwrap();
        let data = client_frame().encode();
        s.handle_frame(SimTime::ZERO, 1, &data); // miss, populates the cache
        s.handle_frame(SimTime::ZERO, 1, &data); // warm hit
        assert_eq!(s.microflow_hits, 1);
        // MODIFY redirects to port 2; the cached entry must not survive.
        s.handle_controller(SimTime::ZERO, &add(out(2), FlowModCommand::Modify).encode(2))
            .unwrap();
        let effects = s.handle_frame(SimTime::ZERO, 1, &data);
        assert!(matches!(effects[0], Effect::Forward { port: 2, .. }));
        assert_eq!(s.microflow_misses, 2, "revision bump forced a re-classify");
        // Deleting the flow sends the next packet back to the controller.
        s.handle_controller(SimTime::ZERO, &add(vec![], FlowModCommand::Delete).encode(3))
            .unwrap();
        let effects = s.handle_frame(SimTime::ZERO, 1, &data);
        assert!(matches!(effects[0], Effect::ToController(_)));
        assert_eq!(s.table_misses, 1);
    }

    #[test]
    fn microflow_cache_invalidates_on_expiry() {
        let mut s = sw();
        let fm = Message::FlowMod {
            cookie: 7,
            table_id: 0,
            command: FlowModCommand::Add,
            idle_timeout: 10,
            hard_timeout: 0,
            priority: 100,
            buffer_id: OFP_NO_BUFFER,
            flags: 0,
            match_: Match::service([203, 0, 113, 10], 80),
            instructions: vec![Instruction::ApplyActions(vec![Action::output(3)])],
        };
        s.handle_controller(SimTime::ZERO, &fm.encode(1)).unwrap();
        let data = client_frame().encode();
        s.handle_frame(SimTime::ZERO, 1, &data); // populates the cache
        s.expire_flows(SimTime::from_secs(10)); // idle timeout fires
        assert!(s.table().is_empty());
        let effects = s.handle_frame(SimTime::from_secs(10), 1, &data);
        assert!(
            matches!(effects[0], Effect::ToController(_)),
            "stale cache entry must not forward after expiry"
        );
    }

    #[test]
    fn drop_rule_drops() {
        let mut s = sw();
        let fm = Message::FlowMod {
            cookie: 0,
            table_id: 0,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority: 1,
            buffer_id: OFP_NO_BUFFER,
            flags: 0,
            match_: Match::any(),
            instructions: vec![Instruction::ApplyActions(vec![])],
        };
        s.handle_controller(SimTime::ZERO, &fm.encode(1)).unwrap();
        let effects = s.handle_frame(SimTime::ZERO, 1, &client_frame().encode());
        assert_eq!(effects, vec![Effect::Drop]);
    }
}
