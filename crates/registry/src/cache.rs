//! The per-cluster layer cache (content store view used for pull planning).
//!
//! Layers are cached by digest, so layers shared between images dedupe: the
//! paper notes that even after deleting an image, "some of its layers may be
//! used by other images", making a later pull of the same image cheaper.

use crate::image::{Digest, ImageManifest, Layer};
use std::collections::HashMap;

/// A content-addressed layer store with hit/miss accounting.
#[derive(Clone, Debug, Default)]
pub struct LayerCache {
    layers: HashMap<Digest, u64>, // digest -> size
    hits: u64,
    misses: u64,
}

impl LayerCache {
    /// Creates an empty cache.
    pub fn new() -> LayerCache {
        LayerCache::default()
    }

    /// `true` if `digest` is present.
    pub fn contains(&self, digest: &Digest) -> bool {
        self.layers.contains_key(digest)
    }

    /// Inserts a layer (idempotent).
    pub fn insert(&mut self, layer: Layer) {
        self.layers.insert(layer.digest, layer.size);
    }

    /// Inserts every layer of `manifest`.
    pub fn insert_image(&mut self, manifest: &ImageManifest) {
        for l in &manifest.layers {
            self.insert(*l);
        }
    }

    /// Removes a layer by digest, returning whether it was present.
    pub fn remove(&mut self, digest: &Digest) -> bool {
        self.layers.remove(digest).is_some()
    }

    /// Removes the layers of `manifest` **except** those in `still_used`
    /// (digests referenced by other images). Models image deletion with
    /// shared base layers surviving. Returns bytes freed.
    pub fn remove_image(&mut self, manifest: &ImageManifest, still_used: &[Digest]) -> u64 {
        let mut freed = 0;
        for l in &manifest.layers {
            if !still_used.contains(&l.digest) {
                if let Some(size) = self.layers.remove(&l.digest) {
                    freed += size;
                }
            }
        }
        freed
    }

    /// Splits a manifest into (cached, missing) layers, recording hit/miss
    /// statistics.
    pub fn plan(&mut self, manifest: &ImageManifest) -> (Vec<Layer>, Vec<Layer>) {
        let mut cached = Vec::new();
        let mut missing = Vec::new();
        for l in &manifest.layers {
            if self.contains(&l.digest) {
                self.hits += 1;
                cached.push(*l);
            } else {
                self.misses += 1;
                missing.push(*l);
            }
        }
        (cached, missing)
    }

    /// `true` if every layer of the image is cached.
    pub fn has_image(&self, manifest: &ImageManifest) -> bool {
        manifest.layers.iter().all(|l| self.contains(&l.digest))
    }

    /// Total bytes on disk.
    pub fn disk_usage(&self) -> u64 {
        self.layers.values().sum()
    }

    /// Number of stored layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// `(hits, misses)` accumulated by [`LayerCache::plan`].
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Fraction of planned layers served from cache, or `None` before any
    /// planning ran (telemetry snapshots report this per cluster).
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{catalog, mib};

    #[test]
    fn empty_cache_misses_everything() {
        let mut c = LayerCache::new();
        let m = catalog::nginx();
        assert!(!c.has_image(&m));
        let (cached, missing) = c.plan(&m);
        assert!(cached.is_empty());
        assert_eq!(missing.len(), 6);
        assert_eq!(c.stats(), (0, 6));
        assert_eq!(c.hit_rate(), Some(0.0));
        assert_eq!(LayerCache::new().hit_rate(), None);
    }

    #[test]
    fn full_image_hits_everything() {
        let mut c = LayerCache::new();
        let m = catalog::nginx();
        c.insert_image(&m);
        assert!(c.has_image(&m));
        assert_eq!(c.disk_usage(), mib(135));
        let (cached, missing) = c.plan(&m);
        assert_eq!(cached.len(), 6);
        assert!(missing.is_empty());
    }

    #[test]
    fn partial_overlap_pulls_only_missing() {
        let mut c = LayerCache::new();
        let m = catalog::resnet();
        // Pre-cache the three largest (base) layers.
        for l in &m.layers[..3] {
            c.insert(*l);
        }
        let (cached, missing) = c.plan(&m);
        assert_eq!(cached.len(), 3);
        assert_eq!(missing.len(), 6);
        let missing_bytes: u64 = missing.iter().map(|l| l.size).sum();
        assert!(missing_bytes < m.total_size() / 4, "base layers dominate size");
    }

    #[test]
    fn remove_image_respects_shared_layers() {
        let mut c = LayerCache::new();
        let nginx = catalog::nginx();
        c.insert_image(&nginx);
        let before = c.disk_usage();
        // Pretend the base layer is shared with another image.
        let shared = vec![nginx.layers[0].digest];
        let freed = c.remove_image(&nginx, &shared);
        assert!(freed < before);
        assert!(c.contains(&nginx.layers[0].digest));
        assert!(!c.contains(&nginx.layers[1].digest));
        // Re-pull planning now only misses the removed layers.
        let (cached, missing) = c.plan(&nginx);
        assert_eq!(cached.len(), 1);
        assert_eq!(missing.len(), 5);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut c = LayerCache::new();
        let m = catalog::web_asm();
        c.insert_image(&m);
        c.insert_image(&m);
        assert_eq!(c.len(), 1);
        assert_eq!(c.disk_usage(), 6328);
        assert!(c.remove(&m.layers[0].digest));
        assert!(!c.remove(&m.layers[0].digest));
        assert!(c.is_empty());
    }
}
