//! Content-addressed image and layer model, plus the Table I catalog.

use std::fmt;

/// A content digest (modelled sha256): 32 bytes, displayed as
/// `sha256:<hex>`. Digests are derived deterministically from content
/// identity so equal content always dedupes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest([u8; 32]);

impl Digest {
    /// Derives a digest from an identity string (e.g. `"nginx:1.23.2/layer3"`).
    ///
    /// Uses an iterated SplitMix64 over the bytes — not cryptographic, but
    /// stable, well-distributed and collision-free for catalog-scale inputs.
    pub fn of(identity: &str) -> Digest {
        let mut state: u64 = 0x6a09_e667_f3bc_c908;
        let mut out = [0u8; 32];
        for &b in identity.as_bytes() {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(b as u64);
            state = splitmix(state);
        }
        for chunk in 0..4 {
            state = splitmix(state.wrapping_add(chunk));
            out[chunk as usize * 8..][..8].copy_from_slice(&state.to_be_bytes());
        }
        Digest(out)
    }

    /// Hex rendering without the `sha256:` prefix.
    pub fn hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Short (12-hex-char) form used in logs, mirroring Docker's UI.
    pub fn short(&self) -> String {
        self.hex()[..12].to_owned()
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sha256:{}", self.short())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sha256:{}", self.hex())
    }
}

/// One image layer: a digest plus its compressed size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layer {
    /// Content digest.
    pub digest: Digest,
    /// Compressed (transfer) size in bytes.
    pub size: u64,
}

/// A named image reference: `registry_host/name:tag`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ImageRef {
    /// Registry host (`docker.io`, `gcr.io`, `registry.local`...).
    pub host: String,
    /// Repository name (`nginx`, `josefhammer/web-asm`...).
    pub name: String,
    /// Tag.
    pub tag: String,
}

impl ImageRef {
    /// Parses `[host/]name[:tag]`; host defaults to `docker.io`, tag to
    /// `latest`. A leading component containing a dot or `:` is treated as a
    /// host, matching Docker's reference grammar closely enough for the
    /// catalog.
    pub fn parse(s: &str) -> ImageRef {
        let (rest, tag) = match s.rsplit_once(':') {
            // A ':' after the last '/' is a tag separator.
            Some((head, t)) if !t.contains('/') => (head, t.to_owned()),
            _ => (s, "latest".to_owned()),
        };
        let (host, name) = match rest.split_once('/') {
            Some((h, n)) if h.contains('.') || h.contains(':') || h == "localhost" => {
                (h.to_owned(), n.to_owned())
            }
            _ => ("docker.io".to_owned(), rest.to_owned()),
        };
        ImageRef { host, name, tag }
    }
}

impl fmt::Display for ImageRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}:{}", self.host, self.name, self.tag)
    }
}

impl fmt::Debug for ImageRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An image manifest: the reference plus its ordered layers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImageManifest {
    /// The image reference.
    pub reference: ImageRef,
    /// Layers, base first.
    pub layers: Vec<Layer>,
}

impl ImageManifest {
    /// Builds a manifest with `n_layers` layers summing to `total_size`
    /// bytes. Layer sizes follow the typical real-image shape: a large base
    /// layer and progressively smaller upper layers (each roughly half the
    /// previous), which matters because pull time depends on both the total
    /// size and the per-layer constant costs.
    pub fn synthesize(reference: ImageRef, total_size: u64, n_layers: usize) -> ImageManifest {
        assert!(n_layers > 0, "an image needs at least one layer");
        // Geometric weights 2^(n-1), ..., 2, 1.
        let denom: u64 = (1u64 << n_layers) - 1;
        let mut layers = Vec::with_capacity(n_layers);
        let mut assigned = 0u64;
        for i in 0..n_layers {
            let weight = 1u64 << (n_layers - 1 - i);
            let size = if i + 1 == n_layers {
                total_size - assigned // exact remainder on the last layer
            } else {
                total_size * weight / denom
            };
            assigned += size;
            layers.push(Layer {
                digest: Digest::of(&format!("{reference}/layer{i}")),
                size,
            });
        }
        ImageManifest { reference, layers }
    }

    /// Total transfer size in bytes.
    pub fn total_size(&self) -> u64 {
        self.layers.iter().map(|l| l.size).sum()
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }
}

/// Mebibytes to bytes.
pub const fn mib(n: u64) -> u64 {
    n * 1024 * 1024
}

/// The image catalog of Table I.
pub mod catalog {
    use super::*;

    /// `josefhammer/web-asm:amd64` — 6.18 KiB, 1 layer.
    pub fn web_asm() -> ImageManifest {
        ImageManifest::synthesize(ImageRef::parse("josefhammer/web-asm:amd64"), 6328, 1)
    }

    /// `nginx:1.23.2` — 135 MiB, 6 layers.
    pub fn nginx() -> ImageManifest {
        ImageManifest::synthesize(ImageRef::parse("nginx:1.23.2"), mib(135), 6)
    }

    /// `gcr.io/tensorflow-serving/resnet` — 308 MiB, 9 layers.
    pub fn resnet() -> ImageManifest {
        ImageManifest::synthesize(
            ImageRef::parse("gcr.io/tensorflow-serving/resnet:latest"),
            mib(308),
            9,
        )
    }

    /// `josefhammer/env-writer-py` — the Python half of the Nginx+Py service.
    /// Table I reports the combined service as 181 MiB / 7 layers; with nginx
    /// at 135 MiB / 6 layers that leaves 46 MiB / 1 layer for this image.
    pub fn env_writer_py() -> ImageManifest {
        ImageManifest::synthesize(
            ImageRef::parse("josefhammer/env-writer-py:latest"),
            mib(46),
            1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable_and_distinct() {
        let a = Digest::of("nginx:1.23.2/layer0");
        let b = Digest::of("nginx:1.23.2/layer0");
        let c = Digest::of("nginx:1.23.2/layer1");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.hex().len(), 64);
        assert_eq!(a.short().len(), 12);
        assert!(a.to_string().starts_with("sha256:"));
    }

    #[test]
    fn image_ref_parsing() {
        let r = ImageRef::parse("nginx:1.23.2");
        assert_eq!((r.host.as_str(), r.name.as_str(), r.tag.as_str()), ("docker.io", "nginx", "1.23.2"));
        let r = ImageRef::parse("gcr.io/tensorflow-serving/resnet");
        assert_eq!((r.host.as_str(), r.name.as_str(), r.tag.as_str()), ("gcr.io", "tensorflow-serving/resnet", "latest"));
        let r = ImageRef::parse("josefhammer/web-asm:amd64");
        assert_eq!((r.host.as_str(), r.name.as_str(), r.tag.as_str()), ("docker.io", "josefhammer/web-asm", "amd64"));
        let r = ImageRef::parse("localhost:5000/foo:dev");
        assert_eq!((r.host.as_str(), r.name.as_str(), r.tag.as_str()), ("localhost:5000", "foo", "dev"));
        assert_eq!(r.to_string(), "localhost:5000/foo:dev");
    }

    #[test]
    fn synthesized_sizes_are_exact() {
        for (total, n) in [(6328u64, 1usize), (mib(135), 6), (mib(308), 9), (mib(46), 1)] {
            let m = ImageManifest::synthesize(ImageRef::parse("x"), total, n);
            assert_eq!(m.total_size(), total, "total for {n} layers");
            assert_eq!(m.layer_count(), n);
        }
    }

    #[test]
    fn layer_sizes_decrease_base_first() {
        let m = catalog::nginx();
        let sizes: Vec<u64> = m.layers.iter().map(|l| l.size).collect();
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1], "layers should shrink: {sizes:?}");
        }
        assert!(sizes[0] > m.total_size() / 3, "base layer dominates");
    }

    #[test]
    fn catalog_matches_table_one() {
        assert_eq!(catalog::web_asm().total_size(), 6328); // 6.18 KiB
        assert_eq!(catalog::web_asm().layer_count(), 1);
        assert_eq!(catalog::nginx().total_size(), mib(135));
        assert_eq!(catalog::nginx().layer_count(), 6);
        assert_eq!(catalog::resnet().total_size(), mib(308));
        assert_eq!(catalog::resnet().layer_count(), 9);
        // Combined Nginx+Py: 181 MiB / 7 layers.
        let combined = catalog::nginx().total_size() + catalog::env_writer_py().total_size();
        assert_eq!(combined, mib(181));
        assert_eq!(
            catalog::nginx().layer_count() + catalog::env_writer_py().layer_count(),
            7
        );
    }

    #[test]
    fn distinct_images_have_distinct_layer_digests() {
        let a = catalog::nginx();
        let b = catalog::resnet();
        for la in &a.layers {
            for lb in &b.layers {
                assert_ne!(la.digest, lb.digest);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_layers_rejected() {
        ImageManifest::synthesize(ImageRef::parse("x"), 100, 0);
    }
}
