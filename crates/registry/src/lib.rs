//! `registry` — container images, layers, and registry pull modelling.
//!
//! The **Pull** phase is the first of the paper's three deployment phases
//! (Fig. 4): unless already cached, the edge cluster must download the
//! service's container image layers from a registry. Fig. 13 measures this
//! for four images against Docker Hub / Google Container Registry and a
//! private in-network registry (which the paper reports as 1.5–2 s faster).
//!
//! This crate models that machinery from scratch:
//!
//! * [`image`] — content-addressed layers ([`image::Digest`]), image
//!   manifests, and the catalog of the paper's four services (Table I, with
//!   the published sizes and layer counts),
//! * [`cache`] — the per-cluster layer store with cross-image layer
//!   de-duplication (the paper notes popular base layers may already be on
//!   disk even after an image is deleted),
//! * [`pull`] — the pull planner/executor: manifest round-trips, concurrent
//!   layer downloads over a bandwidth-limited registry connection, per-layer
//!   verification/unpack, producing calibrated, seed-deterministic timings.

#![warn(missing_docs)]

//! ```
//! use desim::SimRng;
//! use registry::{image::catalog, LayerCache, PullPlanner, RegistryProfile};
//!
//! let profile = RegistryProfile::docker_hub();
//! let planner = PullPlanner::new(&profile);
//! let mut cache = LayerCache::new();
//! let mut rng = SimRng::new(7);
//!
//! // Cold pull transfers all 135 MiB of nginx; the second pull is free.
//! let cold = planner.pull(&catalog::nginx(), &mut cache, &mut rng);
//! assert_eq!(cold.layers_fetched, 6);
//! let warm = planner.pull(&catalog::nginx(), &mut cache, &mut rng);
//! assert_eq!(warm.bytes_transferred, 0);
//! ```

pub mod cache;
pub mod image;
pub mod pull;

pub use cache::LayerCache;
pub use image::{Digest, ImageManifest, ImageRef, Layer};
pub use pull::{PullError, PullOutcome, PullPlanner, RegistryProfile};
