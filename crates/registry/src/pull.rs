//! Pull planning and execution with calibrated registry network models.
//!
//! The pull time of an image depends on (the paper, Fig. 13): total bytes to
//! transfer, the *number of layers* (each adds request/verify overhead), the
//! registry's distance (RTT) and effective bandwidth, and which layers are
//! already on disk. A private in-network registry improves pull times by
//! about 1.5–2 s versus Docker Hub / GCR for the studied images.

use crate::cache::LayerCache;
use crate::image::{ImageManifest, Layer};
use desim::{Duration, FaultInjector, LogNormal, Sample, SimRng};

/// Network/processing profile of a registry endpoint.
#[derive(Clone, Debug)]
pub struct RegistryProfile {
    /// Display name (`docker.io`, `gcr.io`, `registry.local`).
    pub name: String,
    /// Time for manifest negotiation (TLS + auth + manifest GET); one per pull.
    pub manifest_time: LogNormal,
    /// Per-layer request overhead (HTTP round trip + blob open).
    pub per_layer_overhead: LogNormal,
    /// Effective download bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Decompress/verify throughput on the pulling host, bytes/second.
    pub unpack_bandwidth: f64,
    /// Concurrent layer fetches (containerd default is 3).
    pub max_concurrent: usize,
}

impl RegistryProfile {
    /// Docker Hub reached over the WAN (calibration: nginx 135 MiB / 6 layers
    /// pulls in roughly 4–5 s, as in Fig. 13's public-registry bars).
    pub fn docker_hub() -> RegistryProfile {
        RegistryProfile {
            name: "docker.io".to_owned(),
            manifest_time: LogNormal::from_median(0.45, 0.25),
            per_layer_overhead: LogNormal::from_median(0.12, 0.30),
            bandwidth: 50e6,        // ~400 Mbit/s effective from the WAN
            unpack_bandwidth: 180e6, // NVMe-backed decompress+verify
            max_concurrent: 3,
        }
    }

    /// Google Container Registry (ResNet image host): similar WAN profile,
    /// slightly faster CDN.
    pub fn gcr() -> RegistryProfile {
        RegistryProfile {
            name: "gcr.io".to_owned(),
            manifest_time: LogNormal::from_median(0.40, 0.25),
            per_layer_overhead: LogNormal::from_median(0.10, 0.30),
            bandwidth: 60e6,
            unpack_bandwidth: 180e6,
            max_concurrent: 3,
        }
    }

    /// A private registry in the same L2 network (the paper's alternative,
    /// ~1.5–2 s faster for the studied images).
    pub fn private_local() -> RegistryProfile {
        RegistryProfile {
            name: "registry.local".to_owned(),
            manifest_time: LogNormal::from_median(0.015, 0.20),
            per_layer_overhead: LogNormal::from_median(0.008, 0.25),
            bandwidth: 112e6, // ~900 Mbit/s on the local gigabit network
            unpack_bandwidth: 180e6,
            max_concurrent: 3,
        }
    }

    /// Picks the profile matching an image's registry host: `gcr.io` images
    /// come from GCR, everything else from Docker Hub (mirrors the paper's
    /// setup).
    pub fn for_host(host: &str) -> RegistryProfile {
        if host == "gcr.io" {
            RegistryProfile::gcr()
        } else {
            RegistryProfile::docker_hub()
        }
    }
}

/// The result of executing a pull.
#[derive(Clone, Debug, PartialEq)]
pub struct PullOutcome {
    /// Wall-clock duration of the pull.
    pub duration: Duration,
    /// Bytes actually transferred (missing layers only).
    pub bytes_transferred: u64,
    /// Number of layers fetched.
    pub layers_fetched: usize,
    /// Number of layers served from cache.
    pub layers_cached: usize,
}

impl PullOutcome {
    /// A no-op pull (image fully cached).
    pub fn cached(n_layers: usize) -> PullOutcome {
        PullOutcome {
            duration: Duration::ZERO,
            bytes_transferred: 0,
            layers_fetched: 0,
            layers_cached: n_layers,
        }
    }
}

/// A pull attempt that failed mid-transfer (injected registry fault).
///
/// The attempt still cost wall-clock time — `elapsed` — which callers must
/// account for before retrying. Nothing is cached from a failed attempt
/// (containerd discards incomplete blob downloads).
#[derive(Clone, Debug, PartialEq)]
pub struct PullError {
    /// Time wasted before the failure surfaced.
    pub elapsed: Duration,
    /// Human-readable cause.
    pub reason: String,
}

impl std::fmt::Display for PullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pull failed after {}: {}", self.elapsed, self.reason)
    }
}

impl std::error::Error for PullError {}

/// Plans and executes pulls against a layer cache.
pub struct PullPlanner<'a> {
    profile: &'a RegistryProfile,
}

impl<'a> PullPlanner<'a> {
    /// Creates a planner for the given registry profile.
    pub fn new(profile: &'a RegistryProfile) -> PullPlanner<'a> {
        PullPlanner { profile }
    }

    /// Executes a pull of `manifest` into `cache`, returning the outcome.
    /// Layers already present are skipped; fetched layers are inserted into
    /// the cache. Fully-cached images return [`PullOutcome::cached`] without
    /// even a manifest round trip (the content store resolves locally,
    /// mirroring containerd behaviour).
    pub fn pull(
        &self,
        manifest: &ImageManifest,
        cache: &mut LayerCache,
        rng: &mut SimRng,
    ) -> PullOutcome {
        self.pull_with_faults(manifest, cache, rng, None)
            .expect("pull without fault injection cannot fail")
    }

    /// Like [`PullPlanner::pull`], but consulting a [`FaultInjector`]: the
    /// transfer may be slowed by per-layer link flaps and may fail outright
    /// partway through, in which case nothing is cached and the error
    /// carries the time the doomed attempt cost. With `faults = None` (or a
    /// zero-rate plan) the behaviour — including the draw sequence on `rng`
    /// — is identical to `pull`.
    pub fn pull_with_faults(
        &self,
        manifest: &ImageManifest,
        cache: &mut LayerCache,
        rng: &mut SimRng,
        faults: Option<&mut FaultInjector>,
    ) -> Result<PullOutcome, PullError> {
        let (cached, missing) = cache.plan(manifest);
        if missing.is_empty() {
            return Ok(PullOutcome::cached(cached.len()));
        }
        let mut duration = self.simulate_transfer(&missing, rng);
        if let Some(f) = faults {
            // Link flaps: a flapped layer transfers at a fraction of the
            // nominal bandwidth, adding (factor − 1) × its share of the
            // transfer time.
            for l in &missing {
                if let Some(factor) = f.pull_flap_factor() {
                    let layer_time =
                        Duration::from_secs_f64(l.size as f64 / self.profile.bandwidth);
                    duration += layer_time.mul_f64(factor - 1.0);
                }
            }
            if f.pull_fails() {
                return Err(PullError {
                    elapsed: duration.mul_f64(f.partial_fraction()),
                    reason: format!("{} dropped the connection", self.profile.name),
                });
            }
        }
        for l in &missing {
            cache.insert(*l);
        }
        Ok(PullOutcome {
            duration,
            bytes_transferred: missing.iter().map(|l| l.size).sum(),
            layers_fetched: missing.len(),
            layers_cached: cached.len(),
        })
    }

    /// Estimates the median pull duration without mutating anything
    /// (the Dispatcher uses this for scheduling hints).
    pub fn estimate(&self, missing: &[Layer]) -> Duration {
        if missing.is_empty() {
            return Duration::ZERO;
        }
        let bytes: u64 = missing.iter().map(|l| l.size).sum();
        let batches = missing.len().div_ceil(self.profile.max_concurrent);
        let secs = self.profile.manifest_time.median
            + batches as f64 * self.profile.per_layer_overhead.median
            + bytes as f64 / self.profile.bandwidth
            + bytes as f64 / self.profile.unpack_bandwidth;
        Duration::from_secs_f64(secs)
    }

    /// Simulates the transfer of `missing` layers: one manifest round trip,
    /// then layers fetched `max_concurrent` at a time over the shared
    /// bandwidth, each batch paying per-layer overhead; finally unpack at
    /// disk/CPU speed (containerd unpacks sequentially per image).
    fn simulate_transfer(&self, missing: &[Layer], rng: &mut SimRng) -> Duration {
        let p = self.profile;
        let mut total = p.manifest_time.sample_duration(rng);
        // Concurrency note: layers share the registry link, so transfer time
        // is bandwidth-bound on total bytes; concurrency hides per-layer
        // overhead, which we charge once per batch (the slowest request of
        // the batch gates it).
        let bytes: u64 = missing.iter().map(|l| l.size).sum();
        total += Duration::from_secs_f64(bytes as f64 / p.bandwidth);
        for batch in missing.chunks(p.max_concurrent) {
            let batch_overhead = batch
                .iter()
                .map(|_| p.per_layer_overhead.sample_duration(rng))
                .max()
                .unwrap_or(Duration::ZERO);
            total += batch_overhead;
        }
        total += Duration::from_secs_f64(bytes as f64 / p.unpack_bandwidth);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::catalog;

    fn med_pull(profile: &RegistryProfile, manifest: &ImageManifest, runs: usize) -> f64 {
        let planner = PullPlanner::new(profile);
        let mut samples = Vec::with_capacity(runs);
        for seed in 0..runs as u64 {
            let mut rng = SimRng::new(seed);
            let mut cache = LayerCache::new();
            samples.push(planner.pull(manifest, &mut cache, &mut rng).duration.as_secs_f64());
        }
        desim::Summary::new(samples).median().unwrap()
    }

    #[test]
    fn cold_pull_transfers_everything_and_caches() {
        let profile = RegistryProfile::docker_hub();
        let planner = PullPlanner::new(&profile);
        let mut cache = LayerCache::new();
        let mut rng = SimRng::new(1);
        let m = catalog::nginx();
        let out = planner.pull(&m, &mut cache, &mut rng);
        assert_eq!(out.bytes_transferred, m.total_size());
        assert_eq!(out.layers_fetched, 6);
        assert_eq!(out.layers_cached, 0);
        assert!(cache.has_image(&m));
        // Second pull is free.
        let out2 = planner.pull(&m, &mut cache, &mut rng);
        assert_eq!(out2, PullOutcome::cached(6));
    }

    #[test]
    fn private_registry_saves_one_and_a_half_to_two_seconds() {
        // The paper's headline for Fig. 13: private registry ≈1.5–2 s faster.
        let hub = med_pull(&RegistryProfile::docker_hub(), &catalog::nginx(), 64);
        let private = med_pull(&RegistryProfile::private_local(), &catalog::nginx(), 64);
        let saving = hub - private;
        assert!(
            (1.0..3.0).contains(&saving),
            "saving {saving:.2}s out of expected 1.5-2s band (hub {hub:.2}s, private {private:.2}s)"
        );
    }

    #[test]
    fn tiny_image_pull_is_dominated_by_round_trips() {
        let hub = RegistryProfile::docker_hub();
        let planner = PullPlanner::new(&hub);
        let asm = catalog::web_asm();
        let est = planner.estimate(&asm.layers).as_secs_f64();
        // Transfer of 6.18 KiB is negligible; overheads are ~0.5-0.6 s.
        assert!((0.2..1.5).contains(&est), "est {est}");
        let data_time = asm.total_size() as f64 / hub.bandwidth;
        assert!(data_time < 0.01 * est);
    }

    #[test]
    fn pull_time_ordering_matches_image_sizes() {
        // asm < nginx < resnet from their respective registries.
        let asm = med_pull(&RegistryProfile::docker_hub(), &catalog::web_asm(), 32);
        let nginx = med_pull(&RegistryProfile::docker_hub(), &catalog::nginx(), 32);
        let resnet = med_pull(&RegistryProfile::gcr(), &catalog::resnet(), 32);
        assert!(asm < nginx && nginx < resnet, "{asm} {nginx} {resnet}");
        // nginx cold pull from the Hub lands in a plausible seconds band.
        assert!((2.0..8.0).contains(&nginx), "nginx pull {nginx:.2}s");
    }

    #[test]
    fn partial_cache_reduces_pull_time() {
        let profile = RegistryProfile::docker_hub();
        let planner = PullPlanner::new(&profile);
        let m = catalog::resnet();

        let mut rng = SimRng::new(9);
        let mut cold_cache = LayerCache::new();
        let cold = planner.pull(&m, &mut cold_cache, &mut rng);

        let mut rng = SimRng::new(9);
        let mut warm_cache = LayerCache::new();
        for l in &m.layers[..4] {
            warm_cache.insert(*l);
        }
        let warm = planner.pull(&m, &mut warm_cache, &mut rng);

        assert!(warm.duration < cold.duration);
        assert!(warm.bytes_transferred < cold.bytes_transferred);
        assert_eq!(warm.layers_cached, 4);
        assert_eq!(warm.layers_fetched, 5);
    }

    #[test]
    fn estimate_tracks_simulation_median() {
        let profile = RegistryProfile::docker_hub();
        let planner = PullPlanner::new(&profile);
        let m = catalog::nginx();
        let est = planner.estimate(&m.layers).as_secs_f64();
        let med = med_pull(&profile, &m, 64);
        assert!((est - med).abs() / med < 0.25, "estimate {est} vs median {med}");
    }

    #[test]
    fn zero_rate_faults_leave_pull_byte_identical() {
        use desim::FaultPlan;
        let profile = RegistryProfile::docker_hub();
        let planner = PullPlanner::new(&profile);
        let m = catalog::nginx();

        let mut rng = SimRng::new(5);
        let mut cache = LayerCache::new();
        let plain = planner.pull(&m, &mut cache, &mut rng);

        let mut rng = SimRng::new(5);
        let mut cache = LayerCache::new();
        let mut inj = FaultPlan::default().injector(0x9);
        let faulted = planner
            .pull_with_faults(&m, &mut cache, &mut rng, Some(&mut inj))
            .unwrap();
        assert_eq!(plain, faulted);
        // The main rng stream is also in the same state afterwards.
        let mut a = SimRng::new(5);
        let _ = planner.pull(&m, &mut LayerCache::new(), &mut a);
        let mut b = SimRng::new(5);
        let _ = planner.pull_with_faults(&m, &mut LayerCache::new(), &mut b, Some(&mut inj));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn injected_pull_failure_caches_nothing_and_costs_time() {
        use desim::FaultPlan;
        let profile = RegistryProfile::docker_hub();
        let planner = PullPlanner::new(&profile);
        let m = catalog::nginx();
        let mut inj = FaultPlan::uniform(1.0, 77).injector(0x9);
        let mut cache = LayerCache::new();
        let mut rng = SimRng::new(5);
        let err = planner
            .pull_with_faults(&m, &mut cache, &mut rng, Some(&mut inj))
            .unwrap_err();
        assert!(!cache.has_image(&m), "failed pull must not cache layers");
        assert!(err.elapsed >= Duration::ZERO);
        assert!(err.reason.contains("docker.io"), "{}", err.reason);
    }

    #[test]
    fn link_flaps_slow_the_transfer_down() {
        use desim::FaultPlan;
        let profile = RegistryProfile::docker_hub();
        let planner = PullPlanner::new(&profile);
        let m = catalog::nginx();

        let mut rng = SimRng::new(5);
        let plain = planner.pull(&m, &mut LayerCache::new(), &mut rng);

        // Flaps on, hard failures off.
        let plan = FaultPlan {
            pull_slowdown: 1.0,
            ..FaultPlan::default()
        };
        let mut inj = plan.injector(0x9);
        let mut rng = SimRng::new(5);
        let flapped = planner
            .pull_with_faults(&m, &mut LayerCache::new(), &mut rng, Some(&mut inj))
            .unwrap();
        assert!(flapped.duration > plain.duration, "{} vs {}", flapped.duration, plain.duration);
    }

    #[test]
    fn profile_for_host_routes_gcr() {
        assert_eq!(RegistryProfile::for_host("gcr.io").name, "gcr.io");
        assert_eq!(RegistryProfile::for_host("docker.io").name, "docker.io");
        assert_eq!(RegistryProfile::for_host("anything.else").name, "docker.io");
    }
}
