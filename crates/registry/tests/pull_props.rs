//! Property tests for image synthesis, caching and pull behaviour.

use desim::{Duration, SimRng};
use proptest::prelude::*;
use registry::image::mib;
use registry::{ImageManifest, ImageRef, LayerCache, PullPlanner, RegistryProfile};

fn arb_manifest() -> impl Strategy<Value = ImageManifest> {
    ("[a-z]{3,10}", 1u64..400, 1usize..12).prop_map(|(name, size_mib, layers)| {
        ImageManifest::synthesize(ImageRef::parse(&name), mib(size_mib), layers)
    })
}

proptest! {
    /// Synthesized manifests always hit their requested size exactly, with
    /// non-increasing layer sizes.
    #[test]
    fn synthesis_is_exact(name in "[a-z]{3,8}", total in 1u64..3_000_000_000, layers in 1usize..16) {
        let m = ImageManifest::synthesize(ImageRef::parse(&name), total, layers);
        prop_assert_eq!(m.total_size(), total);
        prop_assert_eq!(m.layer_count(), layers);
        let sizes: Vec<u64> = m.layers.iter().map(|l| l.size).collect();
        for w in sizes.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        // Digests are unique within the image.
        let mut ds: Vec<_> = m.layers.iter().map(|l| l.digest).collect();
        ds.sort();
        ds.dedup();
        prop_assert_eq!(ds.len(), layers);
    }

    /// Pulling is idempotent: the second pull of the same image transfers
    /// nothing, and disk usage equals the union of pulled layers.
    #[test]
    fn pull_is_idempotent(m in arb_manifest(), seed in any::<u64>()) {
        let profile = RegistryProfile::docker_hub();
        let planner = PullPlanner::new(&profile);
        let mut cache = LayerCache::new();
        let mut rng = SimRng::new(seed);
        let first = planner.pull(&m, &mut cache, &mut rng);
        prop_assert_eq!(first.bytes_transferred, m.total_size());
        prop_assert!(first.duration > Duration::ZERO);
        let usage = cache.disk_usage();
        let second = planner.pull(&m, &mut cache, &mut rng);
        prop_assert_eq!(second.bytes_transferred, 0);
        prop_assert_eq!(second.duration, Duration::ZERO);
        prop_assert_eq!(cache.disk_usage(), usage);
    }

    /// Warm caches never make pulls slower: for any subset of pre-cached
    /// layers, the pull transfers exactly the missing bytes.
    #[test]
    fn partial_cache_transfers_exactly_missing(m in arb_manifest(), mask in any::<u16>(), seed in any::<u64>()) {
        let profile = RegistryProfile::docker_hub();
        let planner = PullPlanner::new(&profile);
        let mut cache = LayerCache::new();
        let mut expected_missing = 0;
        for (i, l) in m.layers.iter().enumerate() {
            if mask & (1 << (i % 16)) != 0 {
                cache.insert(*l);
            } else {
                expected_missing += l.size;
            }
        }
        let mut rng = SimRng::new(seed);
        let out = planner.pull(&m, &mut cache, &mut rng);
        prop_assert_eq!(out.bytes_transferred, expected_missing);
        prop_assert!(cache.has_image(&m));
    }

    /// The private registry is never slower than Docker Hub for the same
    /// image and seed.
    #[test]
    fn private_is_never_slower(m in arb_manifest(), seed in any::<u64>()) {
        let hub = RegistryProfile::docker_hub();
        let private = RegistryProfile::private_local();
        let mut rng1 = SimRng::new(seed);
        let mut rng2 = SimRng::new(seed);
        let t_hub = PullPlanner::new(&hub).pull(&m, &mut LayerCache::new(), &mut rng1).duration;
        let t_priv = PullPlanner::new(&private).pull(&m, &mut LayerCache::new(), &mut rng2).duration;
        prop_assert!(t_priv <= t_hub, "private {t_priv} vs hub {t_hub}");
    }

    /// Removing an image frees exactly the bytes not shared with others.
    #[test]
    fn remove_accounting_is_exact(a in arb_manifest(), b in arb_manifest()) {
        let mut cache = LayerCache::new();
        cache.insert_image(&a);
        cache.insert_image(&b);
        let before = cache.disk_usage();
        let shared: Vec<_> = b.layers.iter().map(|l| l.digest).collect();
        let freed = cache.remove_image(&a, &shared);
        prop_assert_eq!(cache.disk_usage(), before - freed);
        prop_assert!(cache.has_image(&b), "b's layers survive a's removal");
    }
}
