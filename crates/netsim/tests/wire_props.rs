//! Property tests for the wire formats and topology.

use desim::SimRng;
use netsim::addr::{Ipv4Addr, MacAddr};
use netsim::link::LinkSpec;
use netsim::topo::{NodeKind, Topology};
use netsim::{TcpFlags, TcpFrame};
use proptest::prelude::*;

fn arb_frame() -> impl Strategy<Value = TcpFrame> {
    (
        any::<[u8; 6]>(),
        any::<[u8; 6]>(),
        any::<[u8; 4]>(),
        any::<[u8; 4]>(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
        any::<u32>(),
        any::<u32>(),
        prop::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(
            |(sm, dm, si, di, sp, dp, flags, seq, ack, payload)| TcpFrame {
                src_mac: MacAddr(sm),
                dst_mac: MacAddr(dm),
                src_ip: Ipv4Addr(si),
                dst_ip: Ipv4Addr(di),
                src_port: sp,
                dst_port: dp,
                flags: TcpFlags(flags),
                seq,
                ack,
                payload,
            },
        )
}

proptest! {
    /// Arbitrary frames encode then decode to the identical structure, and
    /// the checksums self-verify.
    #[test]
    fn frame_roundtrip(frame in arb_frame()) {
        let bytes = frame.encode();
        prop_assert_eq!(bytes.len(), frame.wire_len());
        let decoded = TcpFrame::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    /// Any single-bit corruption of a frame is caught (checksum failure or a
    /// changed decode result, never a silently identical decode).
    #[test]
    fn bit_flips_never_go_unnoticed(frame in arb_frame(), bit in 0usize..((14+20+20)*8)) {
        let mut bytes = frame.encode();
        let byte = bit / 8;
        prop_assume!(byte < bytes.len());
        bytes[byte] ^= 1 << (bit % 8);
        match TcpFrame::decode(&bytes) {
            Err(_) => {}
            Ok(decoded) => prop_assert_ne!(decoded, frame),
        }
    }

    /// Decoding arbitrary garbage never panics.
    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = TcpFrame::decode(&bytes);
    }

    /// Rewriting destination then encoding keeps a decodable frame whose
    /// rewritten fields survive.
    #[test]
    fn rewrite_roundtrip(frame in arb_frame(), new_ip in any::<[u8;4]>(), new_port in any::<u16>()) {
        let mut f = frame;
        f.rewrite_dst(MacAddr::from_id(9), Ipv4Addr(new_ip), new_port);
        let decoded = TcpFrame::decode(&f.encode()).unwrap();
        prop_assert_eq!(decoded.dst_ip, Ipv4Addr(new_ip));
        prop_assert_eq!(decoded.dst_port, new_port);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// In a random connected chain topology, shortest paths exist between all
    /// pairs and path latency is positive and additive over subpaths.
    #[test]
    fn chain_paths_consistent(n in 2usize..12, seed in any::<u64>()) {
        let mut t = Topology::new();
        let ids: Vec<_> = (0..n)
            .map(|i| {
                t.add_node(
                    &format!("n{i}"),
                    NodeKind::Switch,
                    Ipv4Addr::new(10, 0, (i / 256) as u8, (i % 256) as u8),
                )
            })
            .collect();
        for w in ids.windows(2) {
            t.connect(w[0], w[1], LinkSpec::gigabit(desim::Duration::from_micros(100)));
        }
        let mut rng = SimRng::new(seed);
        let first = ids[0];
        let last = ids[n - 1];
        let path = t.shortest_path(first, last).unwrap();
        prop_assert_eq!(path.len(), n);
        prop_assert_eq!(t.hop_count(first, last), Some(n - 1));
        let lat = t.path_latency(first, last, 100, &mut rng).unwrap();
        prop_assert!(lat >= desim::Duration::from_micros(100 * (n as u64 - 1)));
    }
}
