//! A structured view of a TCP/IPv4 Ethernet frame.
//!
//! [`TcpFrame`] is the unit the simulated data plane moves around: the OVS
//! pipeline matches on its fields, the SDN controller's redirect logic
//! rewrites destination (and source, on the return path) addresses, and the
//! wire module renders it to real bytes for OpenFlow `PACKET_IN` buffers.

use crate::addr::{Ipv4Addr, MacAddr, ServiceAddr};
use crate::wire::{
    self, EthHeader, Ipv4Header, TcpHeader, ETHERTYPE_IPV4, IPPROTO_TCP, TCP_HEADER_LEN,
};

/// TCP flag bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN flag.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST flag.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH flag.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK flag.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// SYN|ACK combination.
    pub const SYN_ACK: TcpFlags = TcpFlags(0x12);
    /// PSH|ACK combination (data segment).
    pub const PSH_ACK: TcpFlags = TcpFlags(0x18);

    /// `true` if all bits of `other` are set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub fn with(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }
}

/// A TCP segment inside an IPv4 packet inside an Ethernet frame.
#[derive(Clone, Debug, PartialEq)]
pub struct TcpFrame {
    /// Source MAC.
    pub src_mac: MacAddr,
    /// Destination MAC.
    pub dst_mac: MacAddr,
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source TCP port.
    pub src_port: u16,
    /// Destination TCP port.
    pub dst_port: u16,
    /// TCP flags.
    pub flags: TcpFlags,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Application payload carried by this segment.
    pub payload: Vec<u8>,
}

impl TcpFrame {
    /// Builds a SYN (connection-open) segment from `src` to the service `dst`.
    pub fn syn(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        src_port: u16,
        dst: ServiceAddr,
    ) -> TcpFrame {
        TcpFrame {
            src_mac,
            dst_mac,
            src_ip,
            dst_ip: dst.ip,
            src_port,
            dst_port: dst.port,
            flags: TcpFlags::SYN,
            seq: 0,
            ack: 0,
            payload: Vec::new(),
        }
    }

    /// The destination as a service address (the registration key the SDN
    /// controller matches on).
    pub fn dst_service(&self) -> ServiceAddr {
        ServiceAddr::new(self.dst_ip, self.dst_port)
    }

    /// The (src ip, src port, dst ip, dst port) 4-tuple identifying the flow.
    pub fn flow_tuple(&self) -> (Ipv4Addr, u16, Ipv4Addr, u16) {
        (self.src_ip, self.src_port, self.dst_ip, self.dst_port)
    }

    /// Builds the frame a server sends in reply: addresses and ports swapped.
    pub fn reply(&self, flags: TcpFlags, payload: Vec<u8>) -> TcpFrame {
        TcpFrame {
            src_mac: self.dst_mac,
            dst_mac: self.src_mac,
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            flags,
            seq: self.ack,
            ack: self.seq.wrapping_add(self.payload.len().max(1) as u32),
            payload,
        }
    }

    /// Rewrites the destination (transparent redirect toward an edge host).
    pub fn rewrite_dst(&mut self, mac: MacAddr, ip: Ipv4Addr, port: u16) {
        self.dst_mac = mac;
        self.dst_ip = ip;
        self.dst_port = port;
    }

    /// Rewrites the source (reverse rewrite so replies appear to come from
    /// the cloud service).
    pub fn rewrite_src(&mut self, mac: MacAddr, ip: Ipv4Addr, port: u16) {
        self.src_mac = mac;
        self.src_ip = ip;
        self.src_port = port;
    }

    /// Total frame size on the wire in bytes (used for serialization-delay
    /// modelling).
    pub fn wire_len(&self) -> usize {
        wire::ETH_HEADER_LEN + wire::IPV4_HEADER_LEN + TCP_HEADER_LEN + self.payload.len()
    }

    /// Encodes to real frame bytes with valid checksums.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_len());
        wire::encode_eth(
            &mut buf,
            &EthHeader {
                dst: self.dst_mac,
                src: self.src_mac,
                ethertype: ETHERTYPE_IPV4,
            },
        );
        let ip = Ipv4Header {
            src: self.src_ip,
            dst: self.dst_ip,
            protocol: IPPROTO_TCP,
            ttl: 64,
            total_len: 0,
            ident: (self.seq ^ (self.src_port as u32) << 8) as u16,
        };
        wire::encode_ipv4(&mut buf, &ip, TCP_HEADER_LEN + self.payload.len());
        wire::encode_tcp(
            &mut buf,
            &TcpHeader {
                src_port: self.src_port,
                dst_port: self.dst_port,
                seq: self.seq,
                ack: self.ack,
                flags: self.flags.0,
                window: 65535,
            },
            &self.payload,
            self.src_ip,
            self.dst_ip,
        );
        buf
    }

    /// Decodes real frame bytes (produced by [`TcpFrame::encode`] or any
    /// compatible encoder), verifying checksums.
    pub fn decode(buf: &[u8]) -> Result<TcpFrame, wire::WireError> {
        let (eth, rest) = wire::decode_eth(buf)?;
        if eth.ethertype != ETHERTYPE_IPV4 {
            return Err(wire::WireError::NotIpv4(eth.ethertype));
        }
        let (ip, rest) = wire::decode_ipv4(rest)?;
        if ip.protocol != IPPROTO_TCP {
            return Err(wire::WireError::NotTcp(ip.protocol));
        }
        let (tcp, payload) = wire::decode_tcp(rest, ip.src, ip.dst)?;
        Ok(TcpFrame {
            src_mac: eth.src,
            dst_mac: eth.dst,
            src_ip: ip.src,
            dst_ip: ip.dst,
            src_port: tcp.src_port,
            dst_port: tcp.dst_port,
            flags: TcpFlags(tcp.flags),
            seq: tcp.seq,
            ack: tcp.ack,
            payload: payload.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client_syn() -> TcpFrame {
        TcpFrame::syn(
            MacAddr::from_id(1),
            MacAddr::from_id(100),
            Ipv4Addr::new(192, 168, 1, 20),
            50000,
            ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80),
        )
    }

    #[test]
    fn flags_operations() {
        assert!(TcpFlags::SYN_ACK.contains(TcpFlags::SYN));
        assert!(TcpFlags::SYN_ACK.contains(TcpFlags::ACK));
        assert!(!TcpFlags::SYN.contains(TcpFlags::ACK));
        assert_eq!(TcpFlags::SYN.with(TcpFlags::ACK), TcpFlags::SYN_ACK);
    }

    #[test]
    fn syn_has_expected_shape() {
        let f = client_syn();
        assert_eq!(f.flags, TcpFlags::SYN);
        assert!(f.payload.is_empty());
        assert_eq!(f.dst_service().to_string(), "203.0.113.10:80");
        assert_eq!(
            f.flow_tuple(),
            (Ipv4Addr::new(192, 168, 1, 20), 50000, Ipv4Addr::new(203, 0, 113, 10), 80)
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut f = client_syn();
        f.payload = b"GET /index.html HTTP/1.1\r\nHost: svc\r\n\r\n".to_vec();
        f.flags = TcpFlags::PSH_ACK;
        f.seq = 1234;
        f.ack = 77;
        let decoded = TcpFrame::decode(&f.encode()).unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn reply_swaps_endpoints() {
        let f = client_syn();
        let r = f.reply(TcpFlags::SYN_ACK, Vec::new());
        assert_eq!(r.src_ip, f.dst_ip);
        assert_eq!(r.dst_ip, f.src_ip);
        assert_eq!(r.src_port, f.dst_port);
        assert_eq!(r.dst_port, f.src_port);
        assert_eq!(r.src_mac, f.dst_mac);
        assert_eq!(r.flags, TcpFlags::SYN_ACK);
    }

    #[test]
    fn rewrite_then_roundtrip_keeps_checksums_valid() {
        let mut f = client_syn();
        // The transparent redirect: rewrite toward the edge host, re-encode,
        // decode must still pass checksum verification.
        f.rewrite_dst(MacAddr::from_id(200), Ipv4Addr::new(10, 0, 0, 5), 31080);
        let decoded = TcpFrame::decode(&f.encode()).unwrap();
        assert_eq!(decoded.dst_ip, Ipv4Addr::new(10, 0, 0, 5));
        assert_eq!(decoded.dst_port, 31080);

        // And the reverse rewrite on the way back.
        let mut back = decoded.reply(TcpFlags::SYN_ACK, Vec::new());
        back.rewrite_src(MacAddr::from_id(100), Ipv4Addr::new(203, 0, 113, 10), 80);
        let decoded_back = TcpFrame::decode(&back.encode()).unwrap();
        assert_eq!(decoded_back.src_ip, Ipv4Addr::new(203, 0, 113, 10));
        assert_eq!(decoded_back.src_port, 80);
    }

    #[test]
    fn wire_len_matches_encoding() {
        let mut f = client_syn();
        f.payload = vec![0xab; 100];
        assert_eq!(f.encode().len(), f.wire_len());
        assert_eq!(f.wire_len(), 14 + 20 + 20 + 100);
    }

    #[test]
    fn decode_rejects_non_tcp() {
        let mut buf = Vec::new();
        wire::encode_eth(
            &mut buf,
            &EthHeader {
                dst: MacAddr::ZERO,
                src: MacAddr::ZERO,
                ethertype: ETHERTYPE_IPV4,
            },
        );
        let ip = Ipv4Header {
            src: Ipv4Addr::new(1, 1, 1, 1),
            dst: Ipv4Addr::new(2, 2, 2, 2),
            protocol: 17, // UDP
            ttl: 64,
            total_len: 0,
            ident: 0,
        };
        wire::encode_ipv4(&mut buf, &ip, 0);
        assert_eq!(TcpFrame::decode(&buf), Err(wire::WireError::NotTcp(17)));
    }
}
