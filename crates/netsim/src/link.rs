//! Link latency/bandwidth models.
//!
//! Each link in the emulated topology carries a propagation delay, a
//! bandwidth, and optional jitter. The time for a frame to traverse a link is
//! `propagation + size/bandwidth + jitter` — enough fidelity to reproduce the
//! timing behaviour of the paper's 1 Gbps access / 10 Gbps backbone testbed.

use desim::{Duration, Sample, SimRng, Uniform};

/// Static description of a link's characteristics.
#[derive(Clone, Debug)]
pub struct LinkSpec {
    /// One-way propagation delay.
    pub propagation: Duration,
    /// Bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Maximum uniform jitter added per traversal (0 disables).
    pub jitter_max: Duration,
}

impl LinkSpec {
    /// A gigabit-Ethernet-like LAN link with the given propagation delay.
    pub fn gigabit(propagation: Duration) -> LinkSpec {
        LinkSpec {
            propagation,
            bandwidth_bps: 1_000_000_000,
            jitter_max: Duration::from_micros(50),
        }
    }

    /// A 10 GbE link (the Edge Gateway Server uplink in the C³ testbed).
    pub fn ten_gigabit(propagation: Duration) -> LinkSpec {
        LinkSpec {
            propagation,
            bandwidth_bps: 10_000_000_000,
            jitter_max: Duration::from_micros(20),
        }
    }

    /// A WAN path toward the cloud: high latency, shared bandwidth.
    pub fn wan(propagation: Duration, bandwidth_bps: u64) -> LinkSpec {
        LinkSpec {
            propagation,
            bandwidth_bps,
            jitter_max: Duration::from_millis(2),
        }
    }

    /// An intra-host link (veth/OVS patch): sub-microsecond, no jitter.
    pub fn local() -> LinkSpec {
        LinkSpec {
            propagation: Duration::from_micros(5),
            bandwidth_bps: 40_000_000_000,
            jitter_max: Duration::ZERO,
        }
    }
}

/// A link instance: a [`LinkSpec`] with its own jitter stream.
#[derive(Clone, Debug)]
pub struct Link {
    spec: LinkSpec,
}

impl Link {
    /// Creates a link from its spec.
    pub fn new(spec: LinkSpec) -> Link {
        Link { spec }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &LinkSpec {
        &self.spec
    }

    /// Pure serialization delay for `bytes` at this link's bandwidth.
    pub fn serialization_delay(&self, bytes: usize) -> Duration {
        let bits = bytes as f64 * 8.0;
        Duration::from_secs_f64(bits / self.spec.bandwidth_bps as f64)
    }

    /// Total one-way traversal time for a frame of `bytes`, drawing jitter
    /// from `rng`.
    pub fn traversal_time(&self, bytes: usize, rng: &mut SimRng) -> Duration {
        let base = self.spec.propagation + self.serialization_delay(bytes);
        if self.spec.jitter_max.is_zero() {
            base
        } else {
            let jitter = Uniform::new(0.0, self.spec.jitter_max.as_secs_f64());
            base + jitter.sample_duration(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_scales_with_size_and_bandwidth() {
        let gig = Link::new(LinkSpec {
            propagation: Duration::ZERO,
            bandwidth_bps: 1_000_000_000,
            jitter_max: Duration::ZERO,
        });
        // 1250 bytes = 10_000 bits = 10 us at 1 Gbps.
        assert_eq!(gig.serialization_delay(1250), Duration::from_micros(10));
        let ten = Link::new(LinkSpec::ten_gigabit(Duration::ZERO));
        assert_eq!(ten.serialization_delay(1250), Duration::from_micros(1));
    }

    #[test]
    fn traversal_includes_propagation() {
        let l = Link::new(LinkSpec {
            propagation: Duration::from_millis(1),
            bandwidth_bps: 1_000_000_000,
            jitter_max: Duration::ZERO,
        });
        let mut rng = SimRng::new(1);
        let t = l.traversal_time(1250, &mut rng);
        assert_eq!(t, Duration::from_millis(1) + Duration::from_micros(10));
    }

    #[test]
    fn jitter_bounded_and_varies() {
        let l = Link::new(LinkSpec {
            propagation: Duration::from_micros(100),
            bandwidth_bps: 1_000_000_000,
            jitter_max: Duration::from_micros(50),
        });
        let mut rng = SimRng::new(7);
        let base = Duration::from_micros(100) + l.serialization_delay(100);
        let samples: Vec<Duration> = (0..100).map(|_| l.traversal_time(100, &mut rng)).collect();
        assert!(samples.iter().all(|&t| t >= base));
        assert!(samples
            .iter()
            .all(|&t| t <= base + Duration::from_micros(50)));
        assert!(samples.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        let local = Link::new(LinkSpec::local());
        let gig = Link::new(LinkSpec::gigabit(Duration::from_micros(200)));
        let wan = Link::new(LinkSpec::wan(Duration::from_millis(20), 100_000_000));
        let mut rng = SimRng::new(3);
        let tl = local.traversal_time(1500, &mut rng);
        let tg = gig.traversal_time(1500, &mut rng);
        let tw = wan.traversal_time(1500, &mut rng);
        assert!(tl < tg && tg < tw);
    }
}
