//! Network addressing: MAC, IPv4 and `ip:port` service addresses.

use std::fmt;
use std::str::FromStr;

/// A 48-bit Ethernet MAC address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address (used as a placeholder).
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Builds a locally-administered unicast MAC from a small integer id,
    /// convenient for assigning stable addresses to simulated hosts.
    pub const fn from_id(id: u32) -> MacAddr {
        let b = id.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// Raw bytes.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }

    /// `true` for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// An IPv4 address. A thin wrapper (rather than `std::net::Ipv4Addr`) so the
/// wire/encoding crates control the exact byte representation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4Addr = Ipv4Addr([0; 4]);

    /// Builds from four dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr([a, b, c, d])
    }

    /// Raw network-order bytes.
    pub const fn octets(self) -> [u8; 4] {
        self.0
    }

    /// The address as a big-endian `u32`.
    pub const fn to_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// Builds from a big-endian `u32`.
    pub const fn from_u32(v: u32) -> Ipv4Addr {
        Ipv4Addr(v.to_be_bytes())
    }
}

impl fmt::Debug for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

/// Error parsing an address from text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AddrParseError(pub String);

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address: {}", self.0)
    }
}

impl std::error::Error for AddrParseError {}

impl FromStr for Ipv4Addr {
    type Err = AddrParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('.');
        let mut out = [0u8; 4];
        for slot in &mut out {
            let part = parts
                .next()
                .ok_or_else(|| AddrParseError(s.to_owned()))?;
            *slot = part.parse().map_err(|_| AddrParseError(s.to_owned()))?;
        }
        if parts.next().is_some() {
            return Err(AddrParseError(s.to_owned()));
        }
        Ok(Ipv4Addr(out))
    }
}

/// The identity of a registered edge service: the *cloud-facing* IPv4 address
/// and TCP port that clients believe they are talking to. This pair is the
/// key under which services are registered with the MEC platform (Section II
/// of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServiceAddr {
    /// Public (cloud) IPv4 address of the service.
    pub ip: Ipv4Addr,
    /// TCP port of the service.
    pub port: u16,
}

impl ServiceAddr {
    /// Creates a service address.
    pub const fn new(ip: Ipv4Addr, port: u16) -> ServiceAddr {
        ServiceAddr { ip, port }
    }
}

impl fmt::Debug for ServiceAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for ServiceAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

impl FromStr for ServiceAddr {
    type Err = AddrParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (ip, port) = s
            .rsplit_once(':')
            .ok_or_else(|| AddrParseError(s.to_owned()))?;
        Ok(ServiceAddr {
            ip: ip.parse()?,
            port: port.parse().map_err(|_| AddrParseError(s.to_owned()))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_display_and_ids() {
        assert_eq!(MacAddr::BROADCAST.to_string(), "ff:ff:ff:ff:ff:ff");
        assert!(MacAddr::BROADCAST.is_broadcast());
        let m = MacAddr::from_id(0x01020304);
        assert_eq!(m.to_string(), "02:00:01:02:03:04");
        assert!(!m.is_broadcast());
        assert_ne!(MacAddr::from_id(1), MacAddr::from_id(2));
    }

    #[test]
    fn ipv4_roundtrip_u32() {
        let ip = Ipv4Addr::new(10, 0, 3, 7);
        assert_eq!(Ipv4Addr::from_u32(ip.to_u32()), ip);
        assert_eq!(ip.to_string(), "10.0.3.7");
    }

    #[test]
    fn ipv4_parses() {
        assert_eq!("192.168.1.20".parse::<Ipv4Addr>().unwrap(), Ipv4Addr::new(192, 168, 1, 20));
        assert!("192.168.1".parse::<Ipv4Addr>().is_err());
        assert!("192.168.1.20.5".parse::<Ipv4Addr>().is_err());
        assert!("192.168.1.999".parse::<Ipv4Addr>().is_err());
        assert!("a.b.c.d".parse::<Ipv4Addr>().is_err());
    }

    #[test]
    fn service_addr_parse_display() {
        let sa: ServiceAddr = "203.0.113.10:80".parse().unwrap();
        assert_eq!(sa.ip, Ipv4Addr::new(203, 0, 113, 10));
        assert_eq!(sa.port, 80);
        assert_eq!(sa.to_string(), "203.0.113.10:80");
        assert!("203.0.113.10".parse::<ServiceAddr>().is_err());
        assert!("203.0.113.10:xx".parse::<ServiceAddr>().is_err());
    }

    #[test]
    fn service_addr_ordering_is_stable() {
        let a = ServiceAddr::new(Ipv4Addr::new(1, 1, 1, 1), 80);
        let b = ServiceAddr::new(Ipv4Addr::new(1, 1, 1, 1), 443);
        let c = ServiceAddr::new(Ipv4Addr::new(1, 1, 1, 2), 80);
        assert!(a < b && b < c);
    }
}
