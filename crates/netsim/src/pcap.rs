//! pcap export: dump simulated frames into the standard libpcap capture
//! format, so any run of the emulated data plane can be opened in Wireshark
//! / tcpdump for inspection.
//!
//! Implements the classic pcap file format (magic `0xa1b2c3d4`, version 2.4,
//! LINKTYPE_ETHERNET) with microsecond timestamps taken from simulated time.

use crate::TcpFrame;
use desim::SimTime;

const MAGIC: u32 = 0xa1b2_c3d4;
const VERSION_MAJOR: u16 = 2;
const VERSION_MINOR: u16 = 4;
const LINKTYPE_ETHERNET: u32 = 1;

/// An in-memory pcap capture of simulated traffic.
#[derive(Clone, Debug, Default)]
pub struct PcapCapture {
    records: Vec<(SimTime, Vec<u8>)>,
}

impl PcapCapture {
    /// Creates an empty capture.
    pub fn new() -> PcapCapture {
        PcapCapture::default()
    }

    /// Records raw frame bytes at simulated time `at`.
    pub fn record(&mut self, at: SimTime, frame: &[u8]) {
        self.records.push((at, frame.to_vec()));
    }

    /// Records a structured frame.
    pub fn record_frame(&mut self, at: SimTime, frame: &TcpFrame) {
        self.record(at, &frame.encode());
    }

    /// Number of captured frames.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serializes the capture to pcap bytes (little-endian host convention).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.records.len() * 64);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&VERSION_MAJOR.to_le_bytes());
        out.extend_from_slice(&VERSION_MINOR.to_le_bytes());
        out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        out.extend_from_slice(&65535u32.to_le_bytes()); // snaplen
        out.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        for (at, data) in &self.records {
            let ns = at.as_nanos();
            let secs = (ns / 1_000_000_000) as u32;
            let micros = ((ns % 1_000_000_000) / 1_000) as u32;
            out.extend_from_slice(&secs.to_le_bytes());
            out.extend_from_slice(&micros.to_le_bytes());
            out.extend_from_slice(&(data.len() as u32).to_le_bytes()); // incl_len
            out.extend_from_slice(&(data.len() as u32).to_le_bytes()); // orig_len
            out.extend_from_slice(data);
        }
        out
    }

    /// Writes the capture to a file.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Parses pcap bytes back into `(timestamp, frame)` records (as produced
    /// by [`PcapCapture::to_bytes`]; used by tests and tooling round-trips).
    pub fn from_bytes(buf: &[u8]) -> Result<PcapCapture, String> {
        if buf.len() < 24 {
            return Err("truncated pcap header".into());
        }
        let magic = u32::from_le_bytes(buf[0..4].try_into().expect("len checked"));
        if magic != MAGIC {
            return Err(format!("bad magic {magic:#010x}"));
        }
        let linktype = u32::from_le_bytes(buf[20..24].try_into().expect("len checked"));
        if linktype != LINKTYPE_ETHERNET {
            return Err(format!("unsupported linktype {linktype}"));
        }
        let mut records = Vec::new();
        let mut off = 24;
        while off < buf.len() {
            if buf.len() < off + 16 {
                return Err("truncated record header".into());
            }
            let secs = u32::from_le_bytes(buf[off..off + 4].try_into().expect("len checked"));
            let micros =
                u32::from_le_bytes(buf[off + 4..off + 8].try_into().expect("len checked"));
            let incl =
                u32::from_le_bytes(buf[off + 8..off + 12].try_into().expect("len checked"))
                    as usize;
            off += 16;
            if buf.len() < off + incl {
                return Err("truncated record body".into());
            }
            let at = SimTime::from_nanos(secs as u64 * 1_000_000_000 + micros as u64 * 1_000);
            records.push((at, buf[off..off + incl].to_vec()));
            off += incl;
        }
        Ok(PcapCapture { records })
    }

    /// The captured `(timestamp, frame bytes)` records.
    pub fn records(&self) -> &[(SimTime, Vec<u8>)] {
        &self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Ipv4Addr, MacAddr, ServiceAddr};

    fn frame(src_port: u16) -> TcpFrame {
        TcpFrame::syn(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Ipv4Addr::new(192, 168, 1, 20),
            src_port,
            ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80),
        )
    }

    #[test]
    fn header_layout() {
        let cap = PcapCapture::new();
        let bytes = cap.to_bytes();
        assert_eq!(bytes.len(), 24);
        assert_eq!(&bytes[0..4], &MAGIC.to_le_bytes());
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), 2);
        assert_eq!(u16::from_le_bytes([bytes[6], bytes[7]]), 4);
        assert_eq!(u32::from_le_bytes(bytes[20..24].try_into().unwrap()), 1);
    }

    #[test]
    fn roundtrip_with_timestamps() {
        let mut cap = PcapCapture::new();
        cap.record_frame(SimTime::from_millis(1500), &frame(50000));
        cap.record_frame(SimTime::from_micros(2_000_123), &frame(50001));
        assert_eq!(cap.len(), 2);
        let back = PcapCapture::from_bytes(&cap.to_bytes()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.records()[0].0, SimTime::from_millis(1500));
        // Microsecond resolution truncates the odd sub-µs part.
        assert_eq!(back.records()[1].0, SimTime::from_micros(2_000_123));
        // Frames decode back to the originals.
        let f = TcpFrame::decode(&back.records()[0].1).unwrap();
        assert_eq!(f.src_port, 50000);
        let f = TcpFrame::decode(&back.records()[1].1).unwrap();
        assert_eq!(f.src_port, 50001);
    }

    #[test]
    fn rejects_garbage() {
        assert!(PcapCapture::from_bytes(&[0u8; 10]).is_err());
        let mut bad = PcapCapture::new().to_bytes();
        bad[0] ^= 0xff;
        assert!(PcapCapture::from_bytes(&bad).is_err());
        let mut truncated = {
            let mut cap = PcapCapture::new();
            cap.record_frame(SimTime::from_secs(1), &frame(1));
            cap.to_bytes()
        };
        truncated.truncate(truncated.len() - 5);
        assert!(PcapCapture::from_bytes(&truncated).is_err());
    }

    #[test]
    fn file_write(){
        let mut cap = PcapCapture::new();
        cap.record_frame(SimTime::from_secs(3), &frame(7));
        let path = std::env::temp_dir().join("transparent_edge_test.pcap");
        cap.write_to(&path).unwrap();
        let data = std::fs::read(&path).unwrap();
        assert_eq!(PcapCapture::from_bytes(&data).unwrap().len(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
