//! `netsim` — the network substrate of the simulated edge testbed.
//!
//! The paper's evaluation runs on a physical topology (Fig. 8): 20 Raspberry
//! Pi clients, an HP Aruba layer-3 switch, and the Edge Gateway Server
//! hosting the SDN controller, a virtual OVS switch, Docker and Kubernetes.
//! This crate provides the pieces needed to emulate that network
//! deterministically:
//!
//! * [`addr`] — MAC / IPv4 / `ip:port` service addressing,
//! * [`wire`] — byte-exact Ethernet II / IPv4 / TCP encoding and parsing
//!   (OpenFlow `PACKET_IN` carries real frame bytes, so the frames are real),
//! * [`frame`] — a structured view of a TCP/IPv4 frame with rewrite helpers,
//! * [`link`] — latency + bandwidth link models with optional jitter,
//! * [`topo`] — the node/port/link graph plus shortest-path queries,
//! * [`pcap`] — capture export: dump simulated traffic to standard pcap
//!   files for Wireshark/tcpdump inspection.
//!
//! Switch *behaviour* (flow tables, OpenFlow pipeline) lives in the `ovs`
//! crate; this crate is purely passive plumbing.
//!
//! ```
//! use netsim::{TcpFrame, MacAddr, Ipv4Addr, ServiceAddr};
//!
//! // A client SYN toward a registered cloud address, as real bytes...
//! let syn = TcpFrame::syn(
//!     MacAddr::from_id(1), MacAddr::from_id(2),
//!     Ipv4Addr::new(192, 168, 1, 20), 50000,
//!     ServiceAddr::new(Ipv4Addr::new(203, 0, 113, 10), 80),
//! );
//! let bytes = syn.encode();
//! // ...that decode back bit-exactly (checksums verified).
//! assert_eq!(TcpFrame::decode(&bytes).unwrap(), syn);
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod frame;
pub mod link;
pub mod pcap;
pub mod topo;
pub mod wire;

pub use addr::{Ipv4Addr, MacAddr, ServiceAddr};
pub use frame::{TcpFlags, TcpFrame};
pub use link::{Link, LinkSpec};
pub use pcap::PcapCapture;
pub use topo::{NodeId, NodeKind, PortNo, Topology};
