//! The emulated network topology: nodes, ports, links, paths.
//!
//! Mirrors the evaluation topology of the paper (Fig. 8): client nodes
//! attach through an access switch to the Edge Gateway Server, which hosts
//! the OVS instance, the SDN controller and the edge clusters; a WAN link
//! continues toward the cloud.

use crate::addr::{Ipv4Addr, MacAddr};
use crate::link::{Link, LinkSpec};
use desim::{Duration, SimRng};
use std::collections::HashMap;

/// Identifies a node in the topology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Identifies a port on a node (OpenFlow port numbers start at 1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PortNo(pub u32);

/// What role a node plays in the emulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// User equipment (the Raspberry Pi clients).
    Client,
    /// A plain L2/L3 switch (no OpenFlow).
    Switch,
    /// An OpenFlow switch (the virtual OVS instance).
    OpenFlowSwitch,
    /// A host running edge clusters (the Edge Gateway Server).
    EdgeHost,
    /// The SDN controller host.
    Controller,
    /// The remote cloud.
    Cloud,
}

/// A node plus its addresses.
#[derive(Clone, Debug)]
pub struct Node {
    /// Node id.
    pub id: NodeId,
    /// Role.
    pub kind: NodeKind,
    /// Human-readable name (`pi-07`, `egs`, ...).
    pub name: String,
    /// MAC address.
    pub mac: MacAddr,
    /// IPv4 address.
    pub ip: Ipv4Addr,
}

struct Edge {
    peer: NodeId,
    peer_port: PortNo,
    link: Link,
}

/// The node/port/link graph.
#[derive(Default)]
pub struct Topology {
    nodes: Vec<Node>,
    by_name: HashMap<String, NodeId>,
    by_ip: HashMap<Ipv4Addr, NodeId>,
    /// adjacency[node] : port -> edge
    adjacency: Vec<HashMap<PortNo, Edge>>,
    next_port: Vec<u32>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Adds a node; MAC is derived from the node id, IP must be unique.
    ///
    /// # Panics
    /// Panics on duplicate names or IPs.
    pub fn add_node(&mut self, name: &str, kind: NodeKind, ip: Ipv4Addr) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        assert!(
            self.by_name.insert(name.to_owned(), id).is_none(),
            "duplicate node name {name}"
        );
        assert!(
            self.by_ip.insert(ip, id).is_none(),
            "duplicate node ip {ip}"
        );
        self.nodes.push(Node {
            id,
            kind,
            name: name.to_owned(),
            mac: MacAddr::from_id(id.0),
            ip,
        });
        self.adjacency.push(HashMap::new());
        self.next_port.push(1);
        id
    }

    /// Connects two nodes with a symmetric link, allocating a port on each
    /// side. Returns `(port on a, port on b)`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (PortNo, PortNo) {
        assert_ne!(a, b, "self-links are not supported");
        let pa = PortNo(self.next_port[a.0 as usize]);
        self.next_port[a.0 as usize] += 1;
        let pb = PortNo(self.next_port[b.0 as usize]);
        self.next_port[b.0 as usize] += 1;
        self.adjacency[a.0 as usize].insert(
            pa,
            Edge {
                peer: b,
                peer_port: pb,
                link: Link::new(spec.clone()),
            },
        );
        self.adjacency[b.0 as usize].insert(
            pb,
            Edge {
                peer: a,
                peer_port: pa,
                link: Link::new(spec),
            },
        );
        (pa, pb)
    }

    /// Node metadata.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Looks a node up by name.
    pub fn by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Looks a node up by IPv4 address.
    pub fn by_ip(&self, ip: Ipv4Addr) -> Option<NodeId> {
        self.by_ip.get(&ip).copied()
    }

    /// The `(peer, peer port)` on the far end of `port` of `node`.
    pub fn peer_of(&self, node: NodeId, port: PortNo) -> Option<(NodeId, PortNo)> {
        self.adjacency[node.0 as usize]
            .get(&port)
            .map(|e| (e.peer, e.peer_port))
    }

    /// The link attached to `port` of `node`.
    pub fn link_at(&self, node: NodeId, port: PortNo) -> Option<&Link> {
        self.adjacency[node.0 as usize].get(&port).map(|e| &e.link)
    }

    /// The ports of `node`, sorted.
    pub fn ports(&self, node: NodeId) -> Vec<PortNo> {
        let mut v: Vec<PortNo> = self.adjacency[node.0 as usize].keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The port of `node` whose link leads (by next hop) toward `dst`,
    /// following the shortest path. `None` if unreachable.
    pub fn port_toward(&self, node: NodeId, dst: NodeId) -> Option<PortNo> {
        let path = self.shortest_path(node, dst)?;
        let next = *path.get(1)?;
        self.adjacency[node.0 as usize]
            .iter()
            .find(|(_, e)| e.peer == next)
            .map(|(p, _)| *p)
    }

    /// Dijkstra shortest path (by propagation delay), returning the node
    /// sequence including both endpoints. `None` if unreachable.
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        if from == to {
            return Some(vec![from]);
        }
        let n = self.nodes.len();
        let mut dist = vec![Duration::MAX; n];
        let mut prev: Vec<Option<NodeId>> = vec![None; n];
        let mut visited = vec![false; n];
        dist[from.0 as usize] = Duration::ZERO;
        // Simple O(V^2) Dijkstra: topologies here have tens of nodes.
        for _ in 0..n {
            let mut cur: Option<usize> = None;
            for i in 0..n {
                if !visited[i]
                    && dist[i] < Duration::MAX
                    && cur.is_none_or(|c| dist[i] < dist[c])
                {
                    cur = Some(i);
                }
            }
            let Some(u) = cur else { break };
            if u == to.0 as usize {
                break;
            }
            visited[u] = true;
            for edge in self.adjacency[u].values() {
                let v = edge.peer.0 as usize;
                let alt = dist[u] + edge.link.spec().propagation;
                if alt < dist[v] {
                    dist[v] = alt;
                    prev[v] = Some(NodeId(u as u32));
                }
            }
        }
        if dist[to.0 as usize] == Duration::MAX {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while let Some(p) = prev[cur.0 as usize] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        (path[0] == from).then_some(path)
    }

    /// One-way latency of the shortest path for a frame of `bytes`,
    /// including per-hop serialization and jitter.
    pub fn path_latency(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        rng: &mut SimRng,
    ) -> Option<Duration> {
        let path = self.shortest_path(from, to)?;
        let mut total = Duration::ZERO;
        for pair in path.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let edge = self.adjacency[a.0 as usize]
                .values()
                .find(|e| e.peer == b)
                .expect("path edge exists");
            total += edge.link.traversal_time(bytes, rng);
        }
        Some(total)
    }

    /// Number of hops (links) on the shortest path.
    pub fn hop_count(&self, from: NodeId, to: NodeId) -> Option<usize> {
        Some(self.shortest_path(from, to)?.len().saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> (Topology, NodeId, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let sw = t.add_node("switch", NodeKind::Switch, Ipv4Addr::new(10, 0, 0, 1));
        let c1 = t.add_node("pi-01", NodeKind::Client, Ipv4Addr::new(10, 0, 1, 1));
        let c2 = t.add_node("pi-02", NodeKind::Client, Ipv4Addr::new(10, 0, 1, 2));
        let egs = t.add_node("egs", NodeKind::EdgeHost, Ipv4Addr::new(10, 0, 0, 10));
        t.connect(c1, sw, LinkSpec::gigabit(Duration::from_micros(100)));
        t.connect(c2, sw, LinkSpec::gigabit(Duration::from_micros(100)));
        t.connect(sw, egs, LinkSpec::ten_gigabit(Duration::from_micros(50)));
        (t, sw, c1, c2, egs)
    }

    #[test]
    fn lookups() {
        let (t, sw, c1, _, egs) = star();
        assert_eq!(t.by_name("switch"), Some(sw));
        assert_eq!(t.by_ip(Ipv4Addr::new(10, 0, 1, 1)), Some(c1));
        assert_eq!(t.node(egs).kind, NodeKind::EdgeHost);
        assert_eq!(t.nodes().len(), 4);
        assert!(t.by_name("nope").is_none());
    }

    #[test]
    fn ports_and_peers() {
        let (t, sw, c1, c2, egs) = star();
        assert_eq!(t.ports(sw), vec![PortNo(1), PortNo(2), PortNo(3)]);
        assert_eq!(t.peer_of(sw, PortNo(1)), Some((c1, PortNo(1))));
        assert_eq!(t.peer_of(sw, PortNo(2)), Some((c2, PortNo(1))));
        assert_eq!(t.peer_of(sw, PortNo(3)), Some((egs, PortNo(1))));
        assert!(t.peer_of(sw, PortNo(9)).is_none());
        assert!(t.link_at(sw, PortNo(3)).is_some());
    }

    #[test]
    fn shortest_path_through_star() {
        let (t, sw, c1, c2, egs) = star();
        assert_eq!(t.shortest_path(c1, egs), Some(vec![c1, sw, egs]));
        assert_eq!(t.shortest_path(c1, c2), Some(vec![c1, sw, c2]));
        assert_eq!(t.hop_count(c1, egs), Some(2));
        assert_eq!(t.shortest_path(c1, c1), Some(vec![c1]));
        assert_eq!(t.hop_count(c1, c1), Some(0));
    }

    #[test]
    fn port_toward_follows_path() {
        let (t, _, c1, _, egs) = star();
        assert_eq!(t.port_toward(c1, egs), Some(PortNo(1)));
        let (t2, sw, c1b, _, egs2) = star();
        let _ = (t2, sw, c1b, egs2);
    }

    #[test]
    fn unreachable_is_none() {
        let mut t = Topology::new();
        let a = t.add_node("a", NodeKind::Client, Ipv4Addr::new(1, 0, 0, 1));
        let b = t.add_node("b", NodeKind::Client, Ipv4Addr::new(1, 0, 0, 2));
        assert_eq!(t.shortest_path(a, b), None);
        assert_eq!(t.port_toward(a, b), None);
        let mut rng = SimRng::new(1);
        assert_eq!(t.path_latency(a, b, 100, &mut rng), None);
    }

    #[test]
    fn path_latency_accumulates_hops() {
        let (t, _, c1, _, egs) = star();
        let mut rng = SimRng::new(1);
        let lat = t.path_latency(c1, egs, 64, &mut rng).unwrap();
        // >= sum of propagation delays (100us + 50us).
        assert!(lat >= Duration::from_micros(150));
        assert!(lat < Duration::from_millis(1));
    }

    #[test]
    fn shortest_path_prefers_low_latency() {
        let mut t = Topology::new();
        let a = t.add_node("a", NodeKind::Client, Ipv4Addr::new(1, 0, 0, 1));
        let b = t.add_node("b", NodeKind::Switch, Ipv4Addr::new(1, 0, 0, 2));
        let c = t.add_node("c", NodeKind::Cloud, Ipv4Addr::new(1, 0, 0, 3));
        // Direct (slow) path a-c, and fast two-hop path a-b-c.
        t.connect(a, c, LinkSpec::wan(Duration::from_millis(50), 1_000_000_000));
        t.connect(a, b, LinkSpec::gigabit(Duration::from_micros(100)));
        t.connect(b, c, LinkSpec::gigabit(Duration::from_micros(100)));
        assert_eq!(t.shortest_path(a, c), Some(vec![a, b, c]));
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_names_rejected() {
        let mut t = Topology::new();
        t.add_node("x", NodeKind::Client, Ipv4Addr::new(1, 0, 0, 1));
        t.add_node("x", NodeKind::Client, Ipv4Addr::new(1, 0, 0, 2));
    }
}
