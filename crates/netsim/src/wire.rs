//! Byte-exact Ethernet II / IPv4 / TCP encoding and decoding.
//!
//! The OpenFlow `PACKET_IN` message hands the controller the raw bytes of the
//! intercepted frame, and `PACKET_OUT` re-injects (possibly rewritten) bytes.
//! To exercise those paths faithfully the simulated frames are real frames:
//! correct header layouts and correct internet checksums, verified on parse.

use crate::addr::{Ipv4Addr, MacAddr};

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// IP protocol number for TCP.
pub const IPPROTO_TCP: u8 = 6;
/// Length of an Ethernet II header.
pub const ETH_HEADER_LEN: usize = 14;
/// Length of an IPv4 header without options.
pub const IPV4_HEADER_LEN: usize = 20;
/// Length of a TCP header without options.
pub const TCP_HEADER_LEN: usize = 20;

/// Errors raised while decoding a frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the headers require.
    Truncated {
        /// Which layer was being decoded.
        layer: &'static str,
        /// Bytes needed.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// EtherType other than IPv4.
    NotIpv4(u16),
    /// IP protocol other than TCP.
    NotTcp(u8),
    /// Unsupported IP version / header length nibble.
    BadIpHeader(u8),
    /// A checksum failed verification.
    BadChecksum(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { layer, need, have } => {
                write!(f, "truncated {layer}: need {need} bytes, have {have}")
            }
            WireError::NotIpv4(et) => write!(f, "not IPv4 (ethertype {et:#06x})"),
            WireError::NotTcp(p) => write!(f, "not TCP (protocol {p})"),
            WireError::BadIpHeader(b) => write!(f, "bad IP version/IHL byte {b:#04x}"),
            WireError::BadChecksum(which) => write!(f, "bad {which} checksum"),
        }
    }
}

impl std::error::Error for WireError {}

/// The ones'-complement internet checksum (RFC 1071) over `data`,
/// seeded with `initial` (used for pseudo-header sums).
pub fn internet_checksum(data: &[u8], initial: u32) -> u16 {
    let mut sum = initial;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Decoded Ethernet II header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EthHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// EtherType.
    pub ethertype: u16,
}

/// Decoded IPv4 header (options unsupported).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload protocol.
    pub protocol: u8,
    /// Time to live.
    pub ttl: u8,
    /// Total length (header + payload) from the wire.
    pub total_len: u16,
    /// Identification field.
    pub ident: u16,
}

/// Decoded TCP header (options unsupported).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flag bits (FIN=0x01, SYN=0x02, RST=0x04, PSH=0x08, ACK=0x10).
    pub flags: u8,
    /// Receive window.
    pub window: u16,
}

/// Encodes an Ethernet II header into `out`.
pub fn encode_eth(out: &mut Vec<u8>, h: &EthHeader) {
    out.extend_from_slice(&h.dst.octets());
    out.extend_from_slice(&h.src.octets());
    out.extend_from_slice(&h.ethertype.to_be_bytes());
}

/// Encodes an IPv4 header (with checksum) for a payload of `payload_len` bytes.
pub fn encode_ipv4(out: &mut Vec<u8>, h: &Ipv4Header, payload_len: usize) {
    let start = out.len();
    let total = (IPV4_HEADER_LEN + payload_len) as u16;
    out.push(0x45); // version 4, IHL 5
    out.push(0); // DSCP/ECN
    out.extend_from_slice(&total.to_be_bytes());
    out.extend_from_slice(&h.ident.to_be_bytes());
    out.extend_from_slice(&0x4000u16.to_be_bytes()); // DF, no fragment
    out.push(h.ttl);
    out.push(h.protocol);
    out.extend_from_slice(&[0, 0]); // checksum placeholder
    out.extend_from_slice(&h.src.octets());
    out.extend_from_slice(&h.dst.octets());
    let csum = internet_checksum(&out[start..start + IPV4_HEADER_LEN], 0);
    out[start + 10..start + 12].copy_from_slice(&csum.to_be_bytes());
}

fn tcp_pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, tcp_len: usize) -> u32 {
    let mut sum = 0u32;
    let s = src.octets();
    let d = dst.octets();
    sum += u32::from(u16::from_be_bytes([s[0], s[1]]));
    sum += u32::from(u16::from_be_bytes([s[2], s[3]]));
    sum += u32::from(u16::from_be_bytes([d[0], d[1]]));
    sum += u32::from(u16::from_be_bytes([d[2], d[3]]));
    sum += u32::from(IPPROTO_TCP);
    sum += tcp_len as u32;
    sum
}

/// Encodes a TCP header + payload, computing the checksum over the pseudo
/// header for `src`/`dst`.
pub fn encode_tcp(
    out: &mut Vec<u8>,
    h: &TcpHeader,
    payload: &[u8],
    src: Ipv4Addr,
    dst: Ipv4Addr,
) {
    let start = out.len();
    out.extend_from_slice(&h.src_port.to_be_bytes());
    out.extend_from_slice(&h.dst_port.to_be_bytes());
    out.extend_from_slice(&h.seq.to_be_bytes());
    out.extend_from_slice(&h.ack.to_be_bytes());
    out.push(5 << 4); // data offset 5 words, no options
    out.push(h.flags);
    out.extend_from_slice(&h.window.to_be_bytes());
    out.extend_from_slice(&[0, 0]); // checksum placeholder
    out.extend_from_slice(&[0, 0]); // urgent pointer
    out.extend_from_slice(payload);
    let tcp_len = TCP_HEADER_LEN + payload.len();
    let pseudo = tcp_pseudo_header_sum(src, dst, tcp_len);
    let csum = internet_checksum(&out[start..start + tcp_len], pseudo);
    out[start + 16..start + 18].copy_from_slice(&csum.to_be_bytes());
}

/// Decodes an Ethernet header. Returns the header and the remaining bytes.
pub fn decode_eth(buf: &[u8]) -> Result<(EthHeader, &[u8]), WireError> {
    if buf.len() < ETH_HEADER_LEN {
        return Err(WireError::Truncated {
            layer: "ethernet",
            need: ETH_HEADER_LEN,
            have: buf.len(),
        });
    }
    let mut dst = [0u8; 6];
    let mut src = [0u8; 6];
    dst.copy_from_slice(&buf[0..6]);
    src.copy_from_slice(&buf[6..12]);
    Ok((
        EthHeader {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: u16::from_be_bytes([buf[12], buf[13]]),
        },
        &buf[ETH_HEADER_LEN..],
    ))
}

/// Decodes and checksum-verifies an IPv4 header. Returns the header and the
/// payload bytes (trimmed to `total_len`).
pub fn decode_ipv4(buf: &[u8]) -> Result<(Ipv4Header, &[u8]), WireError> {
    if buf.len() < IPV4_HEADER_LEN {
        return Err(WireError::Truncated {
            layer: "ipv4",
            need: IPV4_HEADER_LEN,
            have: buf.len(),
        });
    }
    if buf[0] != 0x45 {
        return Err(WireError::BadIpHeader(buf[0]));
    }
    if internet_checksum(&buf[..IPV4_HEADER_LEN], 0) != 0 {
        return Err(WireError::BadChecksum("ipv4"));
    }
    let total_len = u16::from_be_bytes([buf[2], buf[3]]);
    if (total_len as usize) < IPV4_HEADER_LEN || buf.len() < total_len as usize {
        return Err(WireError::Truncated {
            layer: "ipv4 payload",
            need: total_len as usize,
            have: buf.len(),
        });
    }
    let h = Ipv4Header {
        src: Ipv4Addr([buf[12], buf[13], buf[14], buf[15]]),
        dst: Ipv4Addr([buf[16], buf[17], buf[18], buf[19]]),
        protocol: buf[9],
        ttl: buf[8],
        total_len,
        ident: u16::from_be_bytes([buf[4], buf[5]]),
    };
    Ok((h, &buf[IPV4_HEADER_LEN..total_len as usize]))
}

/// Decodes and checksum-verifies a TCP header (given the IP addresses for the
/// pseudo header). Returns the header and the payload bytes.
pub fn decode_tcp(
    buf: &[u8],
    src: Ipv4Addr,
    dst: Ipv4Addr,
) -> Result<(TcpHeader, &[u8]), WireError> {
    if buf.len() < TCP_HEADER_LEN {
        return Err(WireError::Truncated {
            layer: "tcp",
            need: TCP_HEADER_LEN,
            have: buf.len(),
        });
    }
    let data_offset = (buf[12] >> 4) as usize * 4;
    if data_offset < TCP_HEADER_LEN || buf.len() < data_offset {
        return Err(WireError::Truncated {
            layer: "tcp options",
            need: data_offset,
            have: buf.len(),
        });
    }
    let pseudo = tcp_pseudo_header_sum(src, dst, buf.len());
    if internet_checksum(buf, pseudo) != 0 {
        return Err(WireError::BadChecksum("tcp"));
    }
    let h = TcpHeader {
        src_port: u16::from_be_bytes([buf[0], buf[1]]),
        dst_port: u16::from_be_bytes([buf[2], buf[3]]),
        seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
        ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
        flags: buf[13],
        window: u16::from_be_bytes([buf[14], buf[15]]),
    };
    Ok((h, &buf[data_offset..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> Vec<u8> {
        let mut buf = Vec::new();
        encode_eth(
            &mut buf,
            &EthHeader {
                dst: MacAddr::from_id(2),
                src: MacAddr::from_id(1),
                ethertype: ETHERTYPE_IPV4,
            },
        );
        let ip = Ipv4Header {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(203, 0, 113, 10),
            protocol: IPPROTO_TCP,
            ttl: 64,
            total_len: 0, // filled by encoder
            ident: 0x1234,
        };
        let payload = b"GET / HTTP/1.1\r\n\r\n";
        encode_ipv4(&mut buf, &ip, TCP_HEADER_LEN + payload.len());
        encode_tcp(
            &mut buf,
            &TcpHeader {
                src_port: 49152,
                dst_port: 80,
                seq: 1,
                ack: 0,
                flags: 0x18, // PSH|ACK
                window: 65535,
            },
            payload,
            ip.src,
            ip.dst,
        );
        buf
    }

    #[test]
    fn roundtrip_full_frame() {
        let buf = sample_frame();
        let (eth, rest) = decode_eth(&buf).unwrap();
        assert_eq!(eth.ethertype, ETHERTYPE_IPV4);
        assert_eq!(eth.src, MacAddr::from_id(1));
        let (ip, rest) = decode_ipv4(rest).unwrap();
        assert_eq!(ip.src, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(ip.protocol, IPPROTO_TCP);
        assert_eq!(ip.ttl, 64);
        let (tcp, payload) = decode_tcp(rest, ip.src, ip.dst).unwrap();
        assert_eq!(tcp.src_port, 49152);
        assert_eq!(tcp.dst_port, 80);
        assert_eq!(tcp.flags, 0x18);
        assert_eq!(payload, b"GET / HTTP/1.1\r\n\r\n");
    }

    #[test]
    fn checksum_rfc1071_example() {
        // Classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let sum = internet_checksum(&data, 0);
        assert_eq!(sum, !0xddf2u16);
    }

    #[test]
    fn checksum_odd_length() {
        let even = internet_checksum(&[0xab, 0x00], 0);
        let odd = internet_checksum(&[0xab], 0);
        assert_eq!(even, odd);
    }

    #[test]
    fn corrupting_ip_header_fails_checksum() {
        let mut buf = sample_frame();
        buf[ETH_HEADER_LEN + 8] ^= 0xff; // TTL byte
        let (_, rest) = decode_eth(&buf).unwrap();
        assert_eq!(decode_ipv4(rest), Err(WireError::BadChecksum("ipv4")));
    }

    #[test]
    fn corrupting_tcp_payload_fails_checksum() {
        let mut buf = sample_frame();
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let (_, rest) = decode_eth(&buf).unwrap();
        let (ip, rest) = decode_ipv4(rest).unwrap();
        assert_eq!(
            decode_tcp(rest, ip.src, ip.dst),
            Err(WireError::BadChecksum("tcp"))
        );
    }

    #[test]
    fn rewriting_addresses_requires_checksum_update() {
        // A naive dst rewrite without checksum recomputation must be caught.
        let mut buf = sample_frame();
        buf[ETH_HEADER_LEN + 16] = 10; // dst becomes 10.x.x.x
        let (_, rest) = decode_eth(&buf).unwrap();
        assert!(matches!(decode_ipv4(rest), Err(WireError::BadChecksum(_))));
    }

    #[test]
    fn truncated_buffers_error_cleanly() {
        let buf = sample_frame();
        assert!(matches!(decode_eth(&buf[..10]), Err(WireError::Truncated { .. })));
        let (_, rest) = decode_eth(&buf).unwrap();
        assert!(matches!(decode_ipv4(&rest[..10]), Err(WireError::Truncated { .. })));
        let (ip, rest) = decode_ipv4(rest).unwrap();
        assert!(matches!(
            decode_tcp(&rest[..10], ip.src, ip.dst),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn non_ipv4_ethertype_is_reported() {
        let mut buf = Vec::new();
        encode_eth(
            &mut buf,
            &EthHeader {
                dst: MacAddr::ZERO,
                src: MacAddr::ZERO,
                ethertype: 0x0806, // ARP
            },
        );
        let (eth, _) = decode_eth(&buf).unwrap();
        assert_eq!(eth.ethertype, 0x0806);
    }

    #[test]
    fn total_len_bounds_payload() {
        // A frame padded to Ethernet minimum must not leak padding into the
        // TCP payload: decode_ipv4 trims to total_len.
        let mut buf = sample_frame();
        buf.extend_from_slice(&[0u8; 12]); // padding
        let (_, rest) = decode_eth(&buf).unwrap();
        let (ip, rest) = decode_ipv4(rest).unwrap();
        let (_, payload) = decode_tcp(rest, ip.src, ip.dst).unwrap();
        assert_eq!(payload, b"GET / HTTP/1.1\r\n\r\n");
    }
}
